"""Plain-text rendering of experiment rows.

The paper presents its evaluation as grouped bar charts and line plots; in a
terminal the equivalent is a table whose rows are the same series.  These
renderers are deliberately dependency-free (no matplotlib) and are what the
example scripts and ``EXPERIMENTS.md`` generation use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "OOM/n.a."
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: str = "",
    precision: int = 4,
) -> str:
    """Format a list of row dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(r.get(c), precision) for c in columns] for r in rows]
    widths = [max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(header))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure_rows(
    rows: Sequence[Mapping[str, object]],
    value_key: str,
    *,
    title: str = "",
    scale: float = 1.0,
    unit: str = "",
) -> str:
    """Render figure rows grouped by problem size, one column per method.

    This produces the "series" view of a grouped bar chart: each output row
    is one ``(d, n)`` point, each column one method, each cell the value
    (scaled, e.g. seconds -> milliseconds).
    """
    sizes: List[tuple] = []
    methods: List[str] = []
    values: Dict[tuple, Dict[str, object]] = {}
    for row in rows:
        # Figure-8 style rows are keyed by the condition number; the size-grid
        # figures are keyed by (d, n).
        key = (row["cond"],) if "cond" in row else (row["d"], row["n"])
        if key not in values:
            sizes.append(key)
            values[key] = {}
        method = str(row["method"])
        if method not in methods:
            methods.append(method)
        val = row.get(value_key)
        if isinstance(val, (int, float)) and val == val:
            val = float(val) * scale
        values[key][method] = val

    table_rows = []
    for key in sizes:
        if len(key) == 2:
            base = {"d": key[0], "n": key[1]}
        else:
            base = {"cond": key[0]}
        base.update({m: values[key].get(m) for m in methods})
        table_rows.append(base)
    columns = (["d", "n"] if len(sizes[0]) == 2 else ["cond"]) + methods
    label = f"{title} [{value_key}{' , ' + unit if unit else ''}]" if title else value_key
    return format_table(table_rows, columns, title=label)


def render_breakdown_rows(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str = "",
    scale: float = 1.0e3,
    unit: str = "ms",
) -> str:
    """Render Figure-5 style rows (each row carries a ``phases`` dict)."""
    phase_names: List[str] = []
    for row in rows:
        for p in row.get("phases", {}):
            if p not in phase_names:
                phase_names.append(p)
    flat = []
    for row in rows:
        entry = {
            "d": row["d"],
            "n": row["n"],
            "method": row["method"],
            "total": (row["total_seconds"] * scale) if row["total_seconds"] == row["total_seconds"] else float("nan"),
        }
        for p in phase_names:
            val = row.get("phases", {}).get(p)
            entry[p] = val * scale if isinstance(val, (int, float)) else None
        flat.append(entry)
    columns = ["d", "n", "method", "total"] + phase_names
    label = f"{title} [{unit}]" if title else f"breakdown [{unit}]"
    return format_table(flat, columns, title=label)
