"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.metrics` -- percent-of-peak bandwidth / FLOP metrics
  (Figures 3-4).
* :mod:`repro.harness.runner` -- repetition/averaging utilities and the
  sweep configuration object.
* :mod:`repro.harness.experiments` -- one entry point per paper artefact
  (``table1``, ``figure2`` ... ``figure8``, ``headline_speedup``,
  ``section7_distributed``) plus the system-growth experiments:
  ``serving_throughput`` (batched vs naive), ``solver_policy`` (adaptive
  routing), ``streaming_drift`` (online engine), ``problem_classes``
  (ridge routing + low-rank accuracy, :mod:`repro.problems`) and
  ``concurrent_load`` (the async runtime: admission control, deadline
  shedding, elastic shard scaling vs the synchronous server) and
  ``perf_trajectory`` (the ``BENCH_<pr>.json`` payload recorded per PR,
  see :mod:`repro.obs.bench` and ``tools/record_bench.py``).
* :mod:`repro.harness.report` -- plain-text renderers that print the same
  rows / series the paper's figures show.
"""

from repro.harness.metrics import percent_of_peak_bandwidth, percent_of_peak_flops
from repro.harness.runner import SweepConfig, average_breakdowns, run_repeated
from repro.harness.experiments import (
    SKETCH_METHODS,
    SOLVER_METHODS,
    concurrent_load,
    table1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    headline_speedup,
    perf_trajectory,
    problem_classes,
    section7_distributed,
    serving_throughput,
    solver_policy,
    streaming_drift,
)
from repro.harness.report import format_table, render_figure_rows, render_breakdown_rows

__all__ = [
    "percent_of_peak_bandwidth",
    "percent_of_peak_flops",
    "SweepConfig",
    "average_breakdowns",
    "run_repeated",
    "SKETCH_METHODS",
    "SOLVER_METHODS",
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "headline_speedup",
    "perf_trajectory",
    "problem_classes",
    "section7_distributed",
    "concurrent_load",
    "serving_throughput",
    "solver_policy",
    "streaming_drift",
    "format_table",
    "render_figure_rows",
    "render_breakdown_rows",
]
