"""Performance metrics derived from simulated time breakdowns.

Figures 3 and 4 of the paper report, for every sketch method and problem
size, the percentage of the device's peak memory throughput and peak FLOP/s
that the computation achieved.  With the simulated executor those percentages
follow directly from the charged bytes / FLOPs and the simulated time; the
helpers here compute them so the harness and the tests share one definition.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.device import DeviceSpec
from repro.gpu.timing import TimeBreakdown


def percent_of_peak_bandwidth(
    breakdown: TimeBreakdown,
    device: DeviceSpec,
    *,
    bytes_moved: Optional[float] = None,
    seconds: Optional[float] = None,
) -> float:
    """Achieved memory throughput as a percentage of the device peak.

    By default both the byte count and the time come from the breakdown;
    either can be overridden (e.g. to measure only the "Apply" phase, or to
    use the algorithmic traffic rather than the charged traffic).
    """
    total_bytes = breakdown.total_bytes() if bytes_moved is None else float(bytes_moved)
    total_seconds = breakdown.total() if seconds is None else float(seconds)
    if total_seconds <= 0.0:
        return 0.0
    achieved = total_bytes / total_seconds
    return 100.0 * achieved / device.memory_bandwidth


def percent_of_peak_flops(
    breakdown: TimeBreakdown,
    device: DeviceSpec,
    *,
    dtype_size: int = 8,
    flops: Optional[float] = None,
    seconds: Optional[float] = None,
) -> float:
    """Achieved FLOP/s as a percentage of the device peak for the given precision."""
    total_flops = breakdown.total_flops() if flops is None else float(flops)
    total_seconds = breakdown.total() if seconds is None else float(seconds)
    if total_seconds <= 0.0:
        return 0.0
    achieved = total_flops / total_seconds
    return 100.0 * achieved / device.peak_flops(dtype_size)


def arithmetic_intensity(breakdown: TimeBreakdown) -> float:
    """FLOPs per byte of global-memory traffic (the roofline x-axis)."""
    total_bytes = breakdown.total_bytes()
    if total_bytes <= 0.0:
        return 0.0
    return breakdown.total_flops() / total_bytes


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Relative speedup of ``seconds`` versus ``baseline_seconds``.

    Follows the paper's convention for "X% faster": the returned value is
    ``baseline / time - 1``, so 0.77 means 77% faster.
    """
    if seconds <= 0.0:
        raise ValueError("seconds must be positive")
    return baseline_seconds / seconds - 1.0
