"""Sweep configuration and repetition utilities.

The paper averages every recorded metric over 100 randomly generated repeats
(Section 6.1).  ``run_repeated`` does the same for any experiment callable
that returns a :class:`~repro.gpu.timing.TimeBreakdown`; ``SweepConfig``
bundles the knobs every figure sweep shares (size grid, device, scale,
repetitions, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.timing import TimeBreakdown
from repro.workloads.matrices import (
    PAPER_D_VALUES,
    PAPER_N_VALUES,
    SCALED_D_VALUES,
    SCALED_N_VALUES,
)

#: Default row counts for quick numeric runs (used by the benchmark suite so a
#: full figure regeneration stays in CI-friendly time).
QUICK_D_VALUES: Tuple[int, ...] = (1 << 13, 1 << 14, 1 << 15)

#: Default column counts for quick numeric runs.
QUICK_N_VALUES: Tuple[int, ...] = (32, 64, 128)


@dataclass
class SweepConfig:
    """Configuration shared by the figure sweeps.

    Attributes
    ----------
    d_values / n_values:
        Size grid.  ``scale`` picks a preset grid when these are omitted.
    scale:
        ``"paper"`` (2^21..2^23, analytic by default), ``"scaled"``
        (2^15..2^17) or ``"quick"`` (2^13..2^15).
    numeric:
        Whether kernels carry real data.  Defaults to False for the paper
        grid (those matrices are tens of GB) and True otherwise.
    device:
        Simulated device.
    repetitions:
        Number of randomly seeded repeats to average (the paper uses 100).
    seed:
        Base seed; repeat ``r`` of experiment ``(d, n)`` derives its own seed.
    skip_largest_n:
        Mirror the paper's grid truncation (no ``n = 256`` at the largest d).
    """

    d_values: Optional[Sequence[int]] = None
    n_values: Optional[Sequence[int]] = None
    scale: str = "quick"
    numeric: Optional[bool] = None
    device: DeviceSpec = H100_SXM5
    repetitions: int = 3
    seed: int = 0
    skip_largest_n: bool = True

    def __post_init__(self) -> None:
        if self.scale not in ("paper", "scaled", "quick"):
            raise ValueError("scale must be 'paper', 'scaled' or 'quick'")
        if self.d_values is None:
            self.d_values = {
                "paper": PAPER_D_VALUES,
                "scaled": SCALED_D_VALUES,
                "quick": QUICK_D_VALUES,
            }[self.scale]
        if self.n_values is None:
            self.n_values = {
                "paper": PAPER_N_VALUES,
                "scaled": SCALED_N_VALUES,
                "quick": QUICK_N_VALUES,
            }[self.scale]
        if self.numeric is None:
            self.numeric = self.scale != "paper"
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")

    def grid(self) -> List[Tuple[int, int]]:
        """The ``(d, n)`` grid, with the paper's largest-d truncation applied."""
        largest = max(self.d_values)
        largest_n_cut = sorted(self.n_values)[-1]
        points = []
        for d in self.d_values:
            for n in self.n_values:
                if self.skip_largest_n and d == largest and n == largest_n_cut and len(self.n_values) > 1:
                    continue
                points.append((d, n))
        return points

    def seed_for(self, d: int, n: int, repeat: int) -> int:
        """Deterministic per-(d, n, repeat) seed."""
        return (self.seed * 1_000_003 + d * 31 + n * 17 + repeat) % (2**31 - 1)


def average_breakdowns(breakdowns: Iterable[TimeBreakdown]) -> TimeBreakdown:
    """Average several breakdowns into one (sum of records scaled by 1/count)."""
    breakdowns = list(breakdowns)
    if not breakdowns:
        return TimeBreakdown()
    merged = TimeBreakdown()
    for b in breakdowns:
        merged = merged.merged(b)
    return merged.scaled(1.0 / len(breakdowns))


def run_repeated(
    experiment: Callable[[int], TimeBreakdown],
    repetitions: int,
) -> TimeBreakdown:
    """Run ``experiment(repeat_index)`` several times and average the breakdowns.

    This mirrors the paper's "average over 100 repeated randomly generated
    experiments to eliminate noise".
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    return average_breakdowns(experiment(r) for r in range(repetitions))
