"""One entry point per paper artefact (Table 1, Figures 2-8, Section 7).

Every ``figureN`` function sweeps the same grid the paper uses (or a scaled
version of it, see :class:`~repro.harness.runner.SweepConfig`) and returns a
list of plain dictionaries -- one row per (problem size, method) -- that the
report module renders as text and the benchmark suite asserts shapes on.

Timing rows come from the simulated-GPU cost model; accuracy rows (Figures
6-8) come from actual floating-point computation, so they are real measured
residuals, not estimates.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import default_embedding_dim
from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.distributed.comm import SimComm
from repro.distributed.cost_model import communication_table
from repro.gpu.executor import GPUExecutor
from repro.gpu.memory import DeviceOutOfMemoryError
from repro.harness.metrics import percent_of_peak_bandwidth, percent_of_peak_flops, speedup
from repro.harness.runner import SweepConfig, average_breakdowns
from repro.linalg.lstsq import (
    normal_equations,
    qr_solve,
    relative_residual,
    sketch_and_solve,
)
from repro.linalg.rand_cholqr import rand_cholqr_lstsq
from repro.theory.complexity import complexity_table
from repro.workloads.least_squares import (
    condition_sweep_problem,
    easy_problem,
    hard_problem,
)

#: Sketch methods of Figures 2-4, in the paper's plotting order.
SKETCH_METHODS = ("Gram", "Gauss", "Count (Alg 2)", "Count (SPMM)", "Multi", "SRHT")

#: Least-squares methods of Figure 5, in the paper's plotting order.
SOLVER_METHODS = ("Normal Eq", "Gauss", "Count", "Multi", "SRHT", "rand_cholQR")

#: Generation/application phase labels summed into Figure 2's two bar segments.
_GEN_PHASES = ("Sketch gen",)
_APPLY_PHASES = ("Matrix sketch", "Apply", "Gram matrix")


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1(d: int = 1 << 22, n: int = 128, eps: float = 0.5) -> List[Dict[str, float]]:
    """Table 1: embedding dimension, arithmetic, read/writes, max distortion."""
    return [row.as_dict() for row in complexity_table(d, n, eps)]


# ---------------------------------------------------------------------------
# Figures 2-4: sketch application performance
# ---------------------------------------------------------------------------
def _build_sketch(method: str, d: int, n: int, executor: GPUExecutor, seed: int):
    """Instantiate the sketch operator a Figure-2 method refers to."""
    k_gauss = default_embedding_dim("gaussian", n)
    k_count = min(default_embedding_dim("countsketch", n), d)
    if method == "Gauss":
        return GaussianSketch(d, k_gauss, executor=executor, seed=seed)
    if method == "Count (Alg 2)":
        return CountSketch(d, k_count, variant="atomic", executor=executor, seed=seed)
    if method == "Count (SPMM)":
        return CountSketch(d, k_count, variant="spmm", executor=executor, seed=seed)
    if method == "Multi":
        return count_gauss(d, n, executor=executor, seed=seed)
    if method == "SRHT":
        return SRHT(d, k_gauss, executor=executor, seed=seed)
    raise ValueError(f"unknown sketch method '{method}'")


def _sketch_once(method: str, d: int, n: int, config: SweepConfig, seed: int) -> Dict[str, float]:
    """Run one sketch experiment and return its timing row."""
    executor = GPUExecutor(config.device, numeric=config.numeric, seed=seed, track_memory=True)
    try:
        if config.numeric:
            a = executor.rand.random_matrix((d, n), label="A", phase="Problem gen")
        else:
            a = executor.empty((d, n), label="A")
        mark = executor.mark()
        if method == "Gram":
            executor.blas.gram(a, phase="Apply")
        else:
            sketch = _build_sketch(method, d, n, executor, seed)
            sketch.generate()
            sketch.apply(a, phase="Matrix sketch")
        breakdown = executor.breakdown_since(mark)
    except DeviceOutOfMemoryError:
        return {
            "d": d,
            "n": n,
            "method": method,
            "oom": True,
            "gen_seconds": math.nan,
            "apply_seconds": math.nan,
            "total_seconds": math.nan,
            "bytes_moved": math.nan,
            "flops": math.nan,
        }
    phases = breakdown.by_phase()
    gen = sum(phases.get(p, 0.0) for p in _GEN_PHASES)
    apply_time = sum(phases.get(p, 0.0) for p in _APPLY_PHASES)
    return {
        "d": d,
        "n": n,
        "method": method,
        "oom": False,
        "gen_seconds": gen,
        "apply_seconds": apply_time,
        "total_seconds": breakdown.total(),
        "bytes_moved": breakdown.total_bytes(),
        "flops": breakdown.total_flops(),
    }


def figure2(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = SKETCH_METHODS,
) -> List[Dict[str, float]]:
    """Figure 2: sketch generation + application time per method and size."""
    if config is None:
        config = SweepConfig(scale="paper")
    rows: List[Dict[str, float]] = []
    for d, n in config.grid():
        for method in methods:
            repeats = [
                _sketch_once(method, d, n, config, config.seed_for(d, n, r))
                for r in range(config.repetitions)
            ]
            if any(r["oom"] for r in repeats):
                rows.append(repeats[0])
                continue
            avg = dict(repeats[0])
            for key in ("gen_seconds", "apply_seconds", "total_seconds", "bytes_moved", "flops"):
                avg[key] = float(np.mean([r[key] for r in repeats]))
            rows.append(avg)
    return rows


def figure3(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = SKETCH_METHODS,
    rows: Optional[List[Dict[str, float]]] = None,
) -> List[Dict[str, float]]:
    """Figure 3: percent of peak memory throughput per method and size."""
    if config is None:
        config = SweepConfig(scale="paper")
    if rows is None:
        rows = figure2(config, methods)
    out = []
    for row in rows:
        if row["oom"] or row["total_seconds"] <= 0:
            pct = math.nan
        else:
            pct = 100.0 * (row["bytes_moved"] / row["total_seconds"]) / config.device.memory_bandwidth
        out.append({**row, "percent_peak_bandwidth": pct})
    return out


def figure4(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = SKETCH_METHODS,
    rows: Optional[List[Dict[str, float]]] = None,
) -> List[Dict[str, float]]:
    """Figure 4: percent of peak FLOP/s per method and size."""
    if config is None:
        config = SweepConfig(scale="paper")
    if rows is None:
        rows = figure2(config, methods)
    out = []
    for row in rows:
        if row["oom"] or row["total_seconds"] <= 0:
            pct = math.nan
        else:
            pct = 100.0 * (row["flops"] / row["total_seconds"]) / config.device.peak_flops(8)
        out.append({**row, "percent_peak_flops": pct})
    return out


# ---------------------------------------------------------------------------
# Figure 5: least-squares solver timing
# ---------------------------------------------------------------------------
def _solve_once(method: str, d: int, n: int, config: SweepConfig, seed: int) -> Dict[str, float]:
    """Run one least-squares timing experiment and return its row."""
    executor = GPUExecutor(config.device, numeric=config.numeric, seed=seed, track_memory=True)
    try:
        if config.numeric:
            a = executor.rand.random_matrix((d, n), label="A", phase="Problem gen")
            b = executor.rand.random_matrix((d,), label="b", phase="Problem gen")
        else:
            a = executor.empty((d, n), label="A")
            b = executor.empty((d,), label="b")

        k_count = min(default_embedding_dim("countsketch", n), d)
        k_gauss = default_embedding_dim("gaussian", n)
        if method == "Normal Eq":
            result = normal_equations(a, b, executor=executor)
        elif method == "Gauss":
            sketch = GaussianSketch(d, k_gauss, executor=executor, seed=seed)
            result = sketch_and_solve(a, b, sketch, executor=executor)
        elif method == "Count":
            sketch = CountSketch(d, k_count, executor=executor, seed=seed)
            result = sketch_and_solve(a, b, sketch, executor=executor)
        elif method == "Multi":
            sketch = count_gauss(d, n, executor=executor, seed=seed)
            result = sketch_and_solve(a, b, sketch, executor=executor)
        elif method == "SRHT":
            sketch = SRHT(d, k_gauss, executor=executor, seed=seed)
            result = sketch_and_solve(a, b, sketch, executor=executor)
        elif method == "rand_cholQR":
            sketch = count_gauss(d, n, executor=executor, seed=seed)
            result = rand_cholqr_lstsq(a, b, sketch, executor=executor)
        else:
            raise ValueError(f"unknown solver method '{method}'")
    except DeviceOutOfMemoryError:
        return {
            "d": d,
            "n": n,
            "method": method,
            "oom": True,
            "total_seconds": math.nan,
            "phases": {},
        }
    return {
        "d": d,
        "n": n,
        "method": method,
        "oom": False,
        "total_seconds": result.total_seconds,
        "phases": result.breakdown.by_phase(),
    }


def figure5(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = SOLVER_METHODS,
) -> List[Dict[str, float]]:
    """Figure 5: runtime breakdown of the least-squares solvers."""
    if config is None:
        config = SweepConfig(scale="paper")
    rows: List[Dict[str, float]] = []
    for d, n in config.grid():
        for method in methods:
            repeats = [
                _solve_once(method, d, n, config, config.seed_for(d, n, r))
                for r in range(config.repetitions)
            ]
            if any(r["oom"] for r in repeats):
                rows.append(repeats[0])
                continue
            avg = dict(repeats[0])
            avg["total_seconds"] = float(np.mean([r["total_seconds"] for r in repeats]))
            phase_keys = set()
            for r in repeats:
                phase_keys.update(r["phases"])
            avg["phases"] = {
                key: float(np.mean([r["phases"].get(key, 0.0) for r in repeats]))
                for key in phase_keys
            }
            rows.append(avg)
    return rows


def headline_speedup(
    rows: Optional[List[Dict[str, float]]] = None,
    config: Optional[SweepConfig] = None,
) -> Dict[str, float]:
    """The Section 6.3 / conclusion headline: multisketch vs normal equations.

    Returns the best observed speedup of the multisketch sketch-and-solve
    solver over the normal equations across the sweep ("up to 77% faster" in
    the paper, at d = 2^22, n = 256).
    """
    if rows is None:
        rows = figure5(config)
    by_size: Dict[tuple, Dict[str, float]] = {}
    for row in rows:
        if row["oom"]:
            continue
        by_size.setdefault((row["d"], row["n"]), {})[row["method"]] = row["total_seconds"]
    best = {"speedup": -math.inf, "d": None, "n": None}
    for (d, n), times in by_size.items():
        if "Normal Eq" in times and "Multi" in times and times["Multi"] > 0:
            s = speedup(times["Normal Eq"], times["Multi"])
            if s > best["speedup"]:
                best = {"speedup": s, "d": d, "n": n,
                        "normal_eq_seconds": times["Normal Eq"], "multi_seconds": times["Multi"]}
    return best


# ---------------------------------------------------------------------------
# Figures 6-7: least-squares residuals on easy/hard problems
# ---------------------------------------------------------------------------
def _accuracy_methods(d: int, n: int, executor: GPUExecutor, seed: int) -> Dict[str, Callable]:
    """Solver closures used by the accuracy experiments (Figures 6-8)."""
    k_count = min(default_embedding_dim("countsketch", n), d)
    k_gauss = default_embedding_dim("gaussian", n)
    return {
        "Normal Eq": lambda a, b: normal_equations(a, b, executor=executor),
        "Gauss": lambda a, b: sketch_and_solve(
            a, b, GaussianSketch(d, k_gauss, executor=executor, seed=seed), executor=executor
        ),
        "Count": lambda a, b: sketch_and_solve(
            a, b, CountSketch(d, k_count, executor=executor, seed=seed + 1), executor=executor
        ),
        "Multi": lambda a, b: sketch_and_solve(
            a, b, count_gauss(d, n, executor=executor, seed=seed + 2), executor=executor
        ),
        "SRHT": lambda a, b: sketch_and_solve(
            a, b, SRHT(d, k_gauss, executor=executor, seed=seed + 3), executor=executor
        ),
        "rand_cholQR": lambda a, b: rand_cholqr_lstsq(
            a, b, count_gauss(d, n, executor=executor, seed=seed + 4), executor=executor
        ),
        "QR": lambda a, b: qr_solve(a, b, executor=executor),
    }


def _residual_sweep(
    problem_factory: Callable[[int, int, int], "object"],
    config: SweepConfig,
    methods: Sequence[str],
) -> List[Dict[str, float]]:
    rows: List[Dict[str, float]] = []
    for d, n in config.grid():
        per_method: Dict[str, List[float]] = {m: [] for m in methods}
        for r in range(config.repetitions):
            seed = config.seed_for(d, n, r)
            problem = problem_factory(d, n, seed)
            executor = GPUExecutor(config.device, numeric=True, seed=seed, track_memory=False)
            solvers = _accuracy_methods(d, n, executor, seed)
            for m in methods:
                result = solvers[m](problem.a, problem.b)
                per_method[m].append(result.relative_residual)
        for m in methods:
            vals = np.asarray(per_method[m], dtype=np.float64)
            rows.append(
                {
                    "d": d,
                    "n": n,
                    "method": m,
                    "relative_residual": float(np.mean(vals)),
                    "residual_std": float(np.std(vals)),
                }
            )
    return rows


_ACCURACY_METHODS = ("Normal Eq", "Gauss", "Count", "Multi", "SRHT", "rand_cholQR", "QR")


def figure6(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = _ACCURACY_METHODS,
) -> List[Dict[str, float]]:
    """Figure 6: relative residuals on the "easy" (low-noise) problem."""
    if config is None:
        config = SweepConfig(scale="quick", numeric=True, repetitions=1)
    return _residual_sweep(lambda d, n, s: easy_problem(d, n, seed=s), config, methods)


def figure7(
    config: Optional[SweepConfig] = None,
    methods: Sequence[str] = _ACCURACY_METHODS,
) -> List[Dict[str, float]]:
    """Figure 7: relative residuals on the "hard" (high-noise) problem."""
    if config is None:
        config = SweepConfig(scale="quick", numeric=True, repetitions=1)
    return _residual_sweep(lambda d, n, s: hard_problem(d, n, seed=s), config, methods)


# ---------------------------------------------------------------------------
# Figure 8: stability vs condition number
# ---------------------------------------------------------------------------
_FIGURE8_METHODS = ("Normal Eq", "Gauss", "Count", "Multi", "QR")


def figure8(
    cond_values: Optional[Sequence[float]] = None,
    *,
    d: int = 1 << 14,
    n: int = 16,
    seed: int = 0,
    methods: Sequence[str] = _FIGURE8_METHODS,
) -> List[Dict[str, float]]:
    """Figure 8: relative residual vs cond(A) for ``b = A e`` (exact solution exists).

    The paper uses ``d = 2^17``; the default here is ``2^14`` so the sweep
    stays quick, and the benchmark suite exposes the full-size option.
    """
    if cond_values is None:
        cond_values = np.logspace(0, 20, 11)
    rows: List[Dict[str, float]] = []
    for cond in cond_values:
        problem = condition_sweep_problem(float(cond), d=d, n=n, seed=seed)
        executor = GPUExecutor(numeric=True, seed=seed, track_memory=False)
        solvers = _accuracy_methods(d, n, executor, seed)
        for m in methods:
            result = solvers[m](problem.a, problem.b)
            rows.append(
                {
                    "cond": float(cond),
                    "d": d,
                    "n": n,
                    "method": m,
                    "relative_residual": result.relative_residual,
                    "failed": result.failed,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Serving: micro-batched sketch-and-solve under synthetic traffic
# ---------------------------------------------------------------------------
def serving_throughput(
    d: int = 1 << 14,
    n: int = 32,
    *,
    n_requests: int = 128,
    n_matrices: int = 2,
    kinds: Sequence[str] = ("multisketch", "countsketch", "gaussian"),
    shards: int = 2,
    max_batch: int = 8,
    noise: float = 0.01,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Serving-layer experiment: batched server vs naive per-request loop.

    Synthesises repeated-shape solve traffic (``n_requests`` right-hand sides
    spread over ``n_matrices`` shared ``d x n`` design matrices), serves it
    through a :class:`~repro.serving.server.SketchServer` per sketch kind,
    and solves the same traffic with the one-request-at-a-time reference
    loop.  One row per kind with throughput, speedup, latency percentiles
    and operator-cache hit rate -- the serving analogue of the Figure-5
    solver comparison.
    """
    from repro.serving import SketchServer, naive_solve_loop

    rng = np.random.default_rng(seed)
    matrices = [rng.standard_normal((d, n)) for _ in range(n_matrices)]
    x_true = np.linspace(-1.0, 1.0, n)
    traffic = []
    for i in range(n_requests):
        a = matrices[i % n_matrices]
        b = a @ x_true + noise * rng.standard_normal(d)
        traffic.append((a, b))

    rows: List[Dict[str, float]] = []
    for kind in kinds:
        server = SketchServer(kind=kind, shards=shards, max_batch=max_batch, seed=seed)
        for a, b in traffic:
            server.submit(a, b)
        responses = server.flush()
        stats = server.stats()
        naive = naive_solve_loop(traffic, kind=kind, seed=seed)
        naive_rps = naive["requests_per_second"]
        rows.append(
            {
                "kind": kind,
                "d": d,
                "n": n,
                "requests": n_requests,
                "batched_rps": stats["requests_per_second"],
                "naive_rps": naive_rps,
                "speedup": stats["requests_per_second"] / naive_rps if naive_rps > 0 else math.nan,
                "cache_hit_rate": stats["cache_hit_rate"],
                "mean_batch_size": stats["mean_batch_size"],
                "p50_us": stats["p50_seconds"] * 1e6,
                "p95_us": stats["p95_seconds"] * 1e6,
                "p99_us": stats["p99_seconds"] * 1e6,
                "comm_seconds": stats["comm_seconds"],
                "worst_relative_residual": max(r.relative_residual for r in responses),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Solver routing: fixed vs adaptive policies over a conditioning sweep
# ---------------------------------------------------------------------------
def solver_policy(
    d: int = 1 << 16,
    n: int = 64,
    *,
    easy_conds: Sequence[float] = (1e2, 1e3, 1e4),
    hard_conds: Sequence[float] = (1e10, 1e12),
    rhs_per_matrix: int = 8,
    policies: Sequence[str] = ("fixed", "cheapest_accurate", "adaptive"),
    fixed_solvers: Sequence[str] = ("normal_equations", "sketch_and_solve", "qr"),
    kind: str = "multisketch",
    accuracy_target: float = 1e-6,
    noise: float = 0.0,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Routing experiment: fixed-solver servers vs the adaptive planner.

    Synthesises the Figure-6/7-style conditioning sweep as serving traffic
    (``rhs_per_matrix`` right-hand sides against one design matrix per
    condition number, spanning the easy ``kappa ~ 1e2`` regime and the hard
    ``kappa >= 1e10`` regime where the normal equations fail), then serves
    the *same* traffic through one :class:`~repro.serving.server.SketchServer`
    per policy:

    * ``policy="fixed"`` with each solver in ``fixed_solvers`` -- the
      pre-registry behaviour (one row per solver);
    * the adaptive policies -- the planner probes each matrix's conditioning
      and routes per batch, with fallback chains.

    Returns one row per served configuration with the worst relative
    residual split by regime, failure counts, makespan and throughput --
    the input to ``benchmarks/test_solver_routing.py``'s acceptance checks.
    """
    from repro.linalg.conditioning import matrix_with_condition
    from repro.serving import SketchServer

    rng = np.random.default_rng(seed)
    scale = np.sqrt(float(d) * n)
    problems = []
    for cond in list(easy_conds) + list(hard_conds):
        a = matrix_with_condition(d, n, float(cond), seed=seed + int(math.log10(cond)))
        a = a * scale
        x_true = np.ones(n)
        bs = [
            a @ x_true + (noise * rng.standard_normal(d) if noise > 0 else 0.0)
            for _ in range(rhs_per_matrix)
        ]
        problems.append((float(cond), a, bs))

    def serve(policy: str, solver: str) -> Dict[str, float]:
        server = SketchServer(
            kind=kind,
            solver=solver,
            policy=policy,
            accuracy_target=accuracy_target,
            shards=1,
            max_batch=rhs_per_matrix,
            seed=seed,
        )
        responses = {}
        for cond, a, bs in problems:
            ids = [server.submit(a, b) for b in bs]
            for rid, resp in zip(ids, server.flush()):
                responses.setdefault(cond, []).append(resp)
        easy_set = set(float(c) for c in easy_conds)
        worst_easy = max(
            r.relative_residual for c, rs in responses.items() if c in easy_set for r in rs
        )
        hard_rs = [r for c, rs in responses.items() if c not in easy_set for r in rs]
        failed = sum(1 for rs in responses.values() for r in rs if r.extra["failed"])
        finite_hard = [r.relative_residual for r in hard_rs if math.isfinite(r.relative_residual)]
        stats = server.stats()
        return {
            "policy": policy,
            "solver": solver if policy == "fixed" else "(planned)",
            "d": d,
            "n": n,
            "requests": sum(len(rs) for rs in responses.values()),
            "worst_easy_residual": worst_easy,
            "worst_hard_residual": max(finite_hard) if finite_hard else math.inf,
            "failed_requests": failed,
            "fallback_batches": stats["fallback_batches"],
            "makespan_seconds": stats["makespan_seconds"],
            "requests_per_second": stats["requests_per_second"],
            "executed_solvers": ",".join(
                sorted({r.executed_solver for rs in responses.values() for r in rs})
            ),
        }

    rows: List[Dict[str, float]] = []
    for policy in policies:
        if policy == "fixed":
            for solver in fixed_solvers:
                rows.append(serve("fixed", solver))
        else:
            rows.append(serve(policy, "sketch_and_solve"))
    return rows


# ---------------------------------------------------------------------------
# Streaming: drift detection + re-solve vs an open-loop baseline
# ---------------------------------------------------------------------------
def streaming_drift(
    n: int = 16,
    *,
    rows_per_segment: int = 4096,
    batch_size: int = 256,
    noise_std: float = 0.05,
    shift_scale: float = 2.0,
    mode: str = "landmark",
    policy: str = "cheapest_accurate",
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Streaming experiment: does drift detection keep the model fresh?

    One piecewise-stationary stream (two segments, abrupt coefficient shift
    at the boundary) is ingested twice through
    :class:`~repro.streaming.solver.StreamingSolver`:

    * ``"detector"`` -- drift detection on: a residual-energy firing resets
      the window and eagerly re-solves, so the post-shift model reflects the
      new regime;
    * ``"baseline"`` -- detection off: the landmark window keeps
      accumulating both regimes and the solution degrades.

    Both engines are scored out-of-sample: every batch is first tested
    against the engine's *current* solution (refreshed by a lazy query each
    batch), then ingested.  Returns one row per configuration with mean
    pre-/post-shift batch residuals, re-solve and drift counts, and the
    simulated ingest rate -- the input to
    ``benchmarks/test_streaming.py``'s recovery assertions.
    """
    from repro.streaming import StreamingSolver
    from repro.workloads.streams import piecewise_stationary_stream

    stream = piecewise_stationary_stream(
        n,
        rows_per_segment=rows_per_segment,
        n_segments=2,
        batch_size=batch_size,
        noise_std=noise_std,
        shift_scale=shift_scale,
        seed=seed,
    )

    def run(detector: bool) -> Dict[str, float]:
        engine = StreamingSolver(
            n, mode=mode, policy=policy, seed=seed, detector=detector
        )
        pre_shift: List[float] = []
        post_shift: List[float] = []
        query_every = 4  # a consumer polling the model at a fixed cadence
        for i, batch in enumerate(stream):
            # ingest() scores each batch out-of-sample against the solution
            # being served *before* folding it in -- the freshness metric.
            report = engine.ingest(batch.rows, batch.targets)
            if np.isfinite(report.batch_residual):
                (post_shift if batch.segment > 0 else pre_shift).append(
                    float(report.batch_residual)
                )
            if (i + 1) % query_every == 0:
                engine.solution()
        final = engine.solution()
        stats = engine.stats()
        # Recovery: the final model scored on the last (post-shift) batch.
        last = stream.batches[-1]
        final_resid = relative_residual(last.rows, last.targets, final.x)
        return {
            "config": "detector" if detector else "baseline",
            "n": n,
            "batches": len(stream),
            "mean_pre_shift_residual": float(np.mean(pre_shift)) if pre_shift else math.nan,
            "mean_post_shift_residual": float(np.mean(post_shift)) if post_shift else math.nan,
            "final_residual": final_resid,
            "resolves": stats["resolve_count"],
            "drift_events": stats["drift_events"],
            "drift_resolves": stats["drift_resolves"],
            "ingest_rows_per_second": stats["ingest_rows_per_second"],
            "executed_solver": final.executed_solver,
            "attempted": "->".join(final.attempted),
        }

    return [run(True), run(False)]


# ---------------------------------------------------------------------------
# Section 7: distributed considerations
# ---------------------------------------------------------------------------
def section7_distributed(
    d: int = 1 << 22,
    n: int = 128,
    p_values: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> List[Dict[str, float]]:
    """Section 7: per-sketch communication volume / time across process counts."""
    rows = []
    for est in communication_table(d, n, p_values):
        rows.append(est.as_dict())
    # annotate with the process count (communication_table iterates p outer)
    idx = 0
    methods_per_p = 4
    for p in p_values:
        for _ in range(methods_per_p):
            rows[idx]["p"] = p
            idx += 1
    return rows


# ---------------------------------------------------------------------------
# Problem classes: ridge routing + low-rank accuracy (repro.problems)
# ---------------------------------------------------------------------------
def problem_classes(
    d: int = 4096,
    n: int = 32,
    *,
    ridge_cases: Sequence = ((1e2, 1e-4), (1e6, 1e-4), (1e10, 1e-6), (1e12, 1e-14)),
    rank: int = 8,
    decay: float = 0.5,
    power_iters: int = 1,
    accuracy_target: float = 1e-6,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """The multi-problem planner's accuracy/routing table (repro.problems).

    Ridge rows: one per ``(cond, lam_rel)`` case -- the planner solves the
    Tikhonov problem end-to-end (spectrum probe, lambda-aware admissibility,
    fallback chain) and the row records the executed solver, the attempted
    chain, and the ridge-objective residual relative to the dense direct
    solve (:func:`repro.problems.ridge.dense_ridge_reference`); the
    ``lam_rel = 1e-14`` case keeps the effective conditioning near
    ``kappa(A)`` so the routing visibly avoids (or falls back from) the
    regularized normal equations.

    Low-rank rows: one per method (range finder / Frequent Directions) on a
    decaying-spectrum matrix, with the Frobenius error relative to the
    truncated-SVD optimum (known in closed form from the generator's
    spectrum).  ``benchmarks/test_problems.py`` asserts both row families.
    """
    from repro.problems import (
        dense_ridge_reference,
        lowrank_approx,
        ridge_residuals,
        solve_ridge,
    )
    from repro.workloads.lowrank import decaying_spectrum_matrix
    from repro.workloads.ridge import make_ridge_problem

    rows: List[Dict[str, float]] = []
    for i, (cond, lam_rel) in enumerate(ridge_cases):
        problem = make_ridge_problem(
            d, n, cond=float(cond), lam_rel=float(lam_rel), seed=seed + i
        )
        result = solve_ridge(
            problem.a, problem.b, problem.lam, accuracy_target=accuracy_target
        )
        x_ref = dense_ridge_reference(problem.a, problem.b, problem.lam)
        _, ref_rel, _ = ridge_residuals(problem.a, problem.b, x_ref, problem.lam)
        rows.append(
            {
                "problem": "ridge",
                "method": result.attempted_solvers[-1],
                "attempted": result.extra.get("attempted", result.method),
                "cond": float(cond),
                "lam_rel": float(lam_rel),
                "effective_cond": problem.effective_condition(),
                "relative_residual": result.relative_residual,
                "reference_residual": ref_rel,
                "residual_ratio": (
                    result.relative_residual / ref_rel if ref_rel > 0 else float("inf")
                ),
                "fallbacks": float(result.extra.get("fallbacks", 0.0)),
                "failed": float(result.failed),
                "simulated_seconds": result.total_seconds,
            }
        )

    lowrank = decaying_spectrum_matrix(d, n, rank=rank, decay=decay, seed=seed)
    optimum = lowrank.optimal_error(rank)
    for method, kwargs in (
        ("rangefinder", {"power_iters": power_iters}),
        ("frequent_directions", {}),
    ):
        result = lowrank_approx(lowrank.a, rank, method=method, seed=seed, **kwargs)
        rows.append(
            {
                "problem": "lowrank",
                "method": result.method,
                "attempted": result.method,
                "rank": float(rank),
                "relative_error": result.relative_error,
                "optimal_error": optimum,
                "error_ratio": result.relative_error / optimum if optimum > 0 else 1.0,
                "simulated_seconds": result.total_seconds,
                **{f"extra_{k}": v for k, v in result.extra.items()},
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Concurrent runtime: mixed load through the admission queue vs synchronous
# ---------------------------------------------------------------------------
def concurrent_load(
    d: int = 4096,
    n: int = 16,
    *,
    n_matrices: int = 8,
    rhs_per_matrix: int = 32,
    ridge_requests: int = 8,
    stream_batches: int = 8,
    stream_batch_rows: int = 256,
    shards: int = 2,
    max_shards: int = 8,
    workers: int = 8,
    max_batch: int = 8,
    queue_depth: int = 512,
    shed_requests: int = 48,
    shed_budget_batches: float = 4.0,
    noise: float = 0.01,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Concurrent-runtime experiment: three rows for the three tentpole claims.

    * ``mode="synchronous"`` -- the mixed load (least-squares micro-batches
      over ``n_matrices`` design matrices, ridge requests, one streaming
      session's ingest) served by the plain :class:`SketchServer` at
      ``shards`` shards, one call at a time.
    * ``mode="concurrent"`` -- the *same* load admitted through an
      :class:`~repro.serving.runtime.AsyncSketchServer` whose
      :class:`~repro.serving.scheduler.ElasticShardPolicy` may grow the
      active set to ``max_shards`` under the spike and shrink it back as
      the queue drains.  ``speedup`` is its throughput over the
      synchronous row's at equal accuracy (both worst residuals reported).
    * ``mode="shedding"`` -- a single-shard runtime saturated with
      deadline-carrying traffic: requests whose projected completion
      exceeds ``shed_budget_batches`` typical batch times are shed with a
      typed error; completed ones are checked against their budget
      (``deadline_violations`` counts queue-inclusive latencies over it).

    ``benchmarks/test_concurrent_runtime.py`` asserts the acceptance
    criteria on these rows.
    """
    from repro.serving import (
        AsyncSketchServer,
        DeadlineExceededError,
        ElasticShardPolicy,
        QueueFullError,
        SketchServer,
    )

    rng = np.random.default_rng(seed)
    matrices = [rng.standard_normal((d, n)) for _ in range(n_matrices)]
    x_true = np.linspace(-1.0, 1.0, n)
    solve_traffic = []
    for i in range(n_matrices * rhs_per_matrix):
        a = matrices[i % n_matrices]
        solve_traffic.append((a, a @ x_true + noise * rng.standard_normal(d)))
    ridge_traffic = [
        (matrices[i % n_matrices], matrices[i % n_matrices] @ x_true, 1e-3)
        for i in range(ridge_requests)
    ]
    stream_rows = [
        (
            rng.standard_normal((stream_batch_rows, n)),
            rng.standard_normal(stream_batch_rows),
        )
        for _ in range(stream_batches)
    ]

    rows: List[Dict[str, float]] = []

    # -- synchronous baseline ----------------------------------------------
    server = SketchServer(shards=shards, max_batch=max_batch, seed=seed)
    for a, b in solve_traffic:
        server.submit(a, b)
    responses = server.flush()
    for a, b, lam in ridge_traffic:
        responses.append(server.solve_ridge(a, b, lam))
    sid = server.open_stream(n)
    for batch_rows, batch_targets in stream_rows:
        server.append_rows(sid, batch_rows, batch_targets)
    server.query_solution(sid)
    server.close_stream(sid)
    sync_stats = server.stats()
    sync_rps = sync_stats["requests_per_second"]
    rows.append(
        {
            "mode": "synchronous",
            "requests": float(len(responses)),
            "requests_per_second": sync_rps,
            "makespan_seconds": sync_stats["makespan_seconds"],
            "worst_relative_residual": max(r.relative_residual for r in responses),
            "shards": float(shards),
        }
    )

    # -- concurrent runtime over the same load ------------------------------
    elastic = ElasticShardPolicy(
        min_shards=shards, max_shards=max_shards, queue_high=2.0, queue_low=1.0,
        cooldown_batches=1,
    )
    # The throughput phase admits the whole spike while paused, so its queue
    # must hold it; the *bound* is what the shedding phase exercises.
    spike = len(solve_traffic) + len(ridge_traffic) + len(stream_rows) + 1
    runtime = AsyncSketchServer(
        shards=shards,
        max_batch=max_batch,
        seed=seed,
        workers=workers,
        queue_depth=max(queue_depth, spike),
        elastic=elastic,
    )
    active_seen = [runtime.active_shards]
    # Admit the whole spike before dispatching any of it: the queue-depth
    # spike (and therefore the scale-up) is deterministic, not a race
    # between the submitting thread and the workers.
    runtime.pause()
    futures = [runtime.submit(a, b) for a, b in solve_traffic]
    futures += [runtime.submit_ridge(a, b, lam) for a, b, lam in ridge_traffic]
    sid = runtime.open_stream(n)
    stream_futures = [runtime.append_rows(sid, r, t) for r, t in stream_rows]
    stream_futures.append(runtime.query_solution(sid))
    runtime.resume()
    concurrent_responses = [f.result(timeout=120.0) for f in futures]
    for f in stream_futures:
        f.result(timeout=120.0)
    active_seen.append(max(e.to_shards for e in runtime.scale_events()) if runtime.scale_events() else runtime.active_shards)
    runtime.drain()
    runtime.close_stream(sid)
    rt_stats = runtime.stats()
    events = runtime.scale_events()
    runtime.stop()
    rt_rps = rt_stats["requests_per_second"]
    rows.append(
        {
            "mode": "concurrent",
            "requests": float(len(concurrent_responses)),
            "requests_per_second": rt_rps,
            "makespan_seconds": rt_stats["makespan_seconds"],
            "worst_relative_residual": max(
                r.relative_residual for r in concurrent_responses
            ),
            "speedup": rt_rps / sync_rps if sync_rps > 0 else math.nan,
            "shards": float(shards),
            "max_shards": float(max_shards),
            "active_max": float(max(active_seen)),
            "active_final": float(rt_stats["active_shards"]),
            "scale_ups": rt_stats["scale_ups"],
            "scale_downs": rt_stats["scale_downs"],
            "queue_depth_max": rt_stats.get("queue_depth_max", 0.0),
            "requests_shed": rt_stats.get("requests_shed", 0.0),
            "fallback_batches": rt_stats.get("fallback_batches", 0.0),
            "lane_stream_requests": rt_stats.get("lane_stream_requests", 0.0),
            # Queue-inclusive per-lane latency percentiles: the bench
            # record's ``lanes`` section (see repro.obs.bench) reads these.
            **{
                f"lane_{lane}_{q}_seconds": rt_stats.get(f"lane_{lane}_{q}_seconds", 0.0)
                for lane in ("solve", "ridge", "stream")
                for q in ("p50", "p95", "p99")
            },
        }
    )

    # -- deadline shedding under saturation ---------------------------------
    shed_runtime = AsyncSketchServer(
        shards=1, max_batch=max_batch, seed=seed, workers=1,
        queue_depth=max(shed_requests // 2, 4),
    )
    # Distinct matrices (same shape, so the operator cache still amortises)
    # keep the requests unfusable: 48 separate batches queue behind one
    # shard and one worker, so queueing delay grows linearly and requests
    # past the budget must shed.  All inputs are prepared *before* the
    # submission loop so admission outpaces dispatch.
    shed_problems = [
        (m, m @ x_true + noise * rng.standard_normal(d))
        for m in (rng.standard_normal((d, n)) for _ in range(shed_requests))
    ]
    # Calibrate the budget from warm-up requests' service time.
    warmup = [shed_runtime.submit(a, b) for a, b in shed_problems[: max_batch // 2]]
    warm_responses = [f.result(timeout=120.0) for f in warmup]
    shed_runtime.drain()
    service_seconds = max(r.compute_seconds for r in warm_responses)
    budget = shed_budget_batches * service_seconds
    shed_futures = []
    queue_full = 0
    shed_runtime.pause()  # saturate the queue before the worker sees any of it
    for a, b in shed_problems[max_batch // 2 :]:
        try:
            shed_futures.append(shed_runtime.submit(a, b, latency_budget=budget))
        except QueueFullError:
            queue_full += 1
    shed_runtime.resume()
    completed, shed = [], 0
    for f in shed_futures:
        try:
            completed.append(f.result(timeout=120.0))
        except DeadlineExceededError:
            shed += 1
    shed_runtime.drain()
    shed_stats = shed_runtime.stats()
    shed_runtime.stop()
    violations = sum(1 for r in completed if r.simulated_seconds > budget)
    rows.append(
        {
            "mode": "shedding",
            "requests": float(shed_requests),
            "completed": float(len(completed)),
            "requests_shed": float(shed),
            "queue_full_rejects": float(queue_full),
            "deadline_violations": float(violations),
            "budget_seconds": budget,
            "queue_depth_max": shed_stats.get("queue_depth_max", 0.0),
            "shed_deadline": shed_stats.get("shed_deadline", 0.0),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Perf trajectory: the numbers this revision of the codebase ships with
# ---------------------------------------------------------------------------
def perf_trajectory(
    *,
    pr: int,
    d: int = 2048,
    n: int = 16,
    seed: int = 0,
) -> Dict[str, object]:
    """One ``BENCH_<pr>.json`` payload: the headline numbers of this revision.

    Composes the existing experiments at a reduced (CI-friendly) scale --
    batched-vs-naive serving throughput, the concurrent runtime over mixed
    traffic (per-lane queue-inclusive latency percentiles), deadline
    shedding under saturation, the planner's ridge residual ratio against
    the dense reference, and the drift-detecting streaming engine -- into
    the schema :func:`repro.obs.bench.validate_bench` checks.  Driven by
    ``tools/record_bench.py``; asserted by ``benchmarks/test_obs_overhead.py``.
    """
    from repro.obs.bench import BENCH_SCHEMA_VERSION

    serving = serving_throughput(
        d=d, n=n, n_requests=32, n_matrices=2, kinds=("multisketch",),
        shards=2, max_batch=8, seed=seed,
    )[0]
    conc_rows = concurrent_load(
        d=d, n=n, n_matrices=4, rhs_per_matrix=8, ridge_requests=4,
        stream_batches=4, stream_batch_rows=128, shed_requests=24, seed=seed,
    )
    sync_row = next(r for r in conc_rows if r["mode"] == "synchronous")
    conc_row = next(r for r in conc_rows if r["mode"] == "concurrent")
    shed_row = next(r for r in conc_rows if r["mode"] == "shedding")
    ridge_rows = problem_classes(
        d=max(d // 2, 512), n=n, ridge_cases=((1e4, 1e-4),), seed=seed
    )
    ridge_row = next(r for r in ridge_rows if r["problem"] == "ridge")
    drift_row = streaming_drift(
        n=n, rows_per_segment=1024, batch_size=128, seed=seed
    )[0]  # the detector-on configuration

    worst_sync = float(sync_row["worst_relative_residual"])
    worst_conc = float(conc_row["worst_relative_residual"])
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "pr": int(pr),
        "config": {"d": int(d), "n": int(n), "seed": int(seed)},
        "throughput": {
            "serving_requests_per_second": float(serving["batched_rps"]),
            "concurrent_requests_per_second": float(conc_row["requests_per_second"]),
            "speedup_vs_naive": float(serving["speedup"]),
            "concurrent_speedup_vs_sync": float(conc_row["speedup"]),
        },
        "lanes": {
            lane: {
                f"{q}_seconds": float(conc_row[f"lane_{lane}_{q}_seconds"])
                for q in ("p50", "p95", "p99")
            }
            for lane in ("solve", "ridge", "stream")
        },
        "residuals": {
            "worst_sync": worst_sync,
            "worst_concurrent": worst_conc,
            "concurrent_over_sync_ratio": (
                worst_conc / worst_sync if worst_sync > 0 else 1.0
            ),
            "ridge_residual_ratio": float(ridge_row["residual_ratio"]),
        },
        "counters": {
            "requests_shed": float(shed_row["requests_shed"]),
            "queue_full_rejects": float(shed_row["queue_full_rejects"]),
            "deadline_violations": float(shed_row["deadline_violations"]),
            "fallback_batches": float(conc_row["fallback_batches"]),
            "drift_events": float(drift_row["drift_events"]),
        },
        "streaming": {
            "ingest_rows_per_second": float(drift_row["ingest_rows_per_second"]),
            "resolves": float(drift_row["resolves"]),
            "final_residual": float(drift_row["final_residual"]),
        },
    }
