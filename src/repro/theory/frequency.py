"""Error bounds for the frequency-analytics vertical.

The CountSketch frequency estimator (Charikar et al. 2002) admits clean
closed-form guarantees that the planner uses to *size* a sketch from a
requested operating point, and that the property tests pin empirically:

Point queries
    One row's signed-bucket estimate of ``f_i`` is unbiased with variance at
    most ``||f||_2^2 / width`` (the other items land in the same bucket with
    probability ``1/width`` and enter with independent signs).  Chebyshev
    then gives ``P(|err| > eps ||f||_2) <= 1 / (eps^2 width)``; at the
    operating point ``eps = sqrt(3 / width)`` each row fails with
    probability at most ``1/3``, and the median over ``depth`` independent
    rows fails only when at least half the rows fail -- a Chernoff event of
    probability at most ``exp(-depth / 6)``.

Heavy hitters
    An item with ``f_i >= phi ||f||_2`` is recoverable by thresholding at
    ``phi ||f||_2 / 2`` whenever the point-query error is below
    ``phi / 2 * ||f||_2``: the heavy item's estimate stays above the
    threshold and any item lighter than ``(phi - 2 eps) ||f||_2`` stays
    below it.  Hence the *recoverability condition* ``eps <= phi / 2``,
    i.e. ``width >= 12 / phi^2``.

Hierarchical queries
    A dyadic stack over branching factor ``branch`` has
    ``ceil(log_branch(domain))`` levels above the leaves.  A range
    decomposes into at most ``2 (branch - 1)`` nodes per level, and
    threshold descent examines at most ``branch`` children per surviving
    candidate per level -- at most ``levels * branch / phi^2`` point
    queries total (there are at most ``1/phi^2`` items above ``phi
    ||f||_2``), versus the flat scan's ``domain``.

These are the bounds :mod:`repro.problems.frequency` inverts when planning
a sketch for a requested ``(phi, delta)`` and that
``tests/core/test_frequency_properties.py`` checks at the configured
failure rates.
"""

from __future__ import annotations

import math
from typing import Dict


def point_query_epsilon(width: int) -> float:
    """Relative-to-``||f||_2`` point-query error at the 1/3-per-row point.

    ``eps = sqrt(3 / width)``: the largest ``eps`` for which Chebyshev
    bounds each row's failure probability by ``1/3``, making the median
    across rows exponentially reliable.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    return math.sqrt(3.0 / width)


def point_query_failure(depth: int) -> float:
    """Per-query failure probability of the ``depth``-row median.

    Chernoff bound for at least half of ``depth`` independent 1/3-failure
    rows failing simultaneously: ``exp(-depth / 6)``.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    return math.exp(-depth / 6.0)


def width_for_epsilon(eps: float) -> int:
    """Smallest width achieving point-query error ``eps * ||f||_2``."""
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    return int(math.ceil(3.0 / (eps * eps)))


def depth_for_failure(delta: float) -> int:
    """Smallest depth achieving per-query failure probability ``delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return max(1, int(math.ceil(6.0 * math.log(1.0 / delta))))


def heavy_hitter_guarantee(phi: float, width: int, depth: int) -> Dict[str, float]:
    """The eps-phi guarantee a ``(width, depth)`` table offers at level ``phi``.

    Returns a dict with the achieved ``eps`` and ``delta``, whether the
    sketch satisfies the recoverability condition ``eps <= phi / 2`` (every
    true ``phi``-heavy hitter is found, no item lighter than
    ``(phi - 2 eps) ||f||_2`` is reported), and the separation margin.
    """
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must lie in (0, 1], got {phi}")
    eps = point_query_epsilon(width)
    return {
        "phi": float(phi),
        "eps": eps,
        "delta": point_query_failure(depth),
        "recoverable": eps <= phi / 2.0,
        "false_positive_level": max(0.0, phi - 2.0 * eps),
    }


def hierarchy_levels(domain: int, branch: int) -> int:
    """Number of sketch levels a dyadic stack needs (leaves included).

    Levels are added until a level's domain fits within ``branch`` nodes,
    so the top level is always enumerable without a scan.
    """
    if domain <= 0:
        raise ValueError("domain must be positive")
    if branch < 2:
        raise ValueError("branch must be at least 2")
    levels = 1
    while domain > branch:
        domain = (domain + branch - 1) // branch
        levels += 1
    return levels


def range_query_nodes(domain: int, branch: int) -> int:
    """Worst-case dyadic-cover size: ``2 (branch - 1)`` nodes per level."""
    return 2 * (branch - 1) * hierarchy_levels(domain, branch)


def hierarchical_topk_work(domain: int, branch: int, phi: float) -> Dict[str, float]:
    """Point queries performed by threshold descent vs. the flat scan.

    At most ``1 / phi^2`` items (and hence prefixes per level) can exceed
    ``phi ||f||_2``, so descent examines at most ``levels * branch / phi^2``
    nodes, versus ``domain`` for the flat ``findHH`` scan.  The returned
    ratio is what the acceptance benchmark asserts shrinks with ``domain``.
    """
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must lie in (0, 1], got {phi}")
    levels = hierarchy_levels(domain, branch)
    descent = levels * branch * (1.0 / (phi * phi))
    return {
        "levels": float(levels),
        "descent_queries": descent,
        "flat_queries": float(domain),
        "ratio": descent / float(domain),
    }
