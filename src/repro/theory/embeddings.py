"""Embedding-dimension requirements for each sketch family.

Section 1 of the paper summarises the theory:

* Gaussian: ``k = O(n / eps^2)`` -- specifically ``k = n / eps^2`` ensures an
  eps-subspace embedding with high probability.
* SRHT: ``k = O(n log n / eps^2)`` in theory, ``k = O(n)`` in practice.
* CountSketch: ``k = O(n^2 / (eps^2 delta))``.
* Multisketch(eps1, eps2): a CountSketch to ``O(n^2 / eps1^2)`` followed by a
  Gaussian to ``O(n / eps2^2)``; the composed distortion is
  ``(1 + eps1)(1 + eps2) - 1``.

The functions here return concrete integer dimensions given ``(n, eps,
delta)`` so the solvers and tests can reason about when the subspace
embedding property is expected to hold.
"""

from __future__ import annotations

import math
from typing import Tuple


def _validate(n: int, eps: float, delta: float) -> None:
    if n <= 0:
        raise ValueError("subspace dimension n must be positive")
    if not 0.0 < eps < 1.0:
        raise ValueError("distortion eps must lie in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ValueError("failure probability delta must lie in (0, 1)")


def gaussian_embedding_dim(n: int, eps: float = 0.5, delta: float = 0.01) -> int:
    """Embedding dimension for a Gaussian sketch.

    ``k = (n + log(1/delta)) / eps^2`` (the paper quotes
    ``k = O((n - log delta) / eps^2)`` and uses ``k = n / eps^2`` as the
    concrete choice ensuring the embedding with high probability).
    """
    _validate(n, eps, delta)
    return max(n, int(math.ceil((n + math.log(1.0 / delta)) / eps**2)))


def srht_embedding_dim(
    n: int, eps: float = 0.5, delta: float = 0.01, practical: bool = False
) -> int:
    """Embedding dimension for the SRHT.

    The theoretical bound is ``k = O(n log n / eps^2)``; in practice ``k =
    O(n / eps^2)`` suffices (Section 1), which ``practical=True`` returns.
    """
    _validate(n, eps, delta)
    if practical:
        return max(n, int(math.ceil(n / eps**2)))
    logn = max(math.log(max(n, 2)), 1.0)
    return max(n, int(math.ceil((n * logn + math.log(1.0 / delta)) / eps**2)))


def countsketch_embedding_dim(n: int, eps: float = 0.5, delta: float = 0.01) -> int:
    """Embedding dimension for the CountSketch: ``k = O(n^2 / (eps^2 delta))``.

    The constant follows [Meng & Mahoney 2013] / [Woodruff 2014]:
    ``k = (n^2 + n) / (eps^2 delta)`` suffices; the paper's experiments use
    the far smaller practical choice ``k = 2 n^2``.
    """
    _validate(n, eps, delta)
    return int(math.ceil((n * n + n) / (eps**2 * delta)))


def multisketch_embedding_dims(
    n: int,
    eps1: float = 0.5,
    eps2: float = 0.5,
    delta: float = 0.01,
) -> Tuple[int, int]:
    """Embedding dimensions ``(k1, k2)`` for a Count-Gauss multisketch.

    The CountSketch stage must embed the ``n``-dimensional subspace with
    distortion ``eps1`` and the Gaussian stage must embed the resulting
    ``n``-dimensional subspace of R^{k1} with distortion ``eps2``.
    """
    k1 = countsketch_embedding_dim(n, eps1, delta / 2.0)
    k2 = gaussian_embedding_dim(n, eps2, delta / 2.0)
    return k1, k2


_FAMILY_DISPATCH = {
    "gaussian": gaussian_embedding_dim,
    "gauss": gaussian_embedding_dim,
    "srht": srht_embedding_dim,
    "countsketch": countsketch_embedding_dim,
    "count": countsketch_embedding_dim,
}


def required_embedding_dim(family: str, n: int, eps: float = 0.5, delta: float = 0.01) -> int:
    """Dispatch on the sketch family name; see the per-family functions."""
    family = family.lower()
    if family in ("multisketch", "multi", "count_gauss"):
        return multisketch_embedding_dims(n, eps, eps, delta)[1]
    if family not in _FAMILY_DISPATCH:
        raise ValueError(f"unknown sketch family '{family}'")
    return _FAMILY_DISPATCH[family](n, eps, delta)


def subspace_embedding_holds(family: str, n: int, k: int, eps: float = 0.5, delta: float = 0.01) -> bool:
    """Whether embedding dimension ``k`` meets the theoretical requirement."""
    return k >= required_embedding_dim(family, n, eps, delta)


def multisketch_distortion(eps1: float, eps2: float) -> float:
    """Composed distortion of a two-stage multisketch: ``(1+eps1)(1+eps2) - 1``.

    This is the "Max Distortion" column of Table 1 for the multisketch row.
    """
    if eps1 < 0 or eps2 < 0:
        raise ValueError("distortions must be non-negative")
    return (1.0 + eps1) * (1.0 + eps2) - 1.0


def sketch_and_solve_residual_factor(eps: float) -> float:
    """Worst-case residual inflation of sketch-and-solve (Section 2).

    ``||b - A x_s|| <= sqrt((1+eps)/(1-eps)) ||b - A x_t||`` where ``x_t`` is
    the true least-squares solution.
    """
    if not 0.0 <= eps < 1.0:
        raise ValueError("eps must lie in [0, 1)")
    return math.sqrt((1.0 + eps) / (1.0 - eps))
