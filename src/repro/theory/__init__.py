"""Sketching theory: embedding dimensions, distortion, and complexity counts.

This package encodes the analytical content of the paper:

* :mod:`repro.theory.embeddings` -- the embedding dimension each sketch
  family needs to be an :math:`(\\epsilon, \\delta, n)` oblivious subspace
  embedding (Definitions 1.1-1.2).
* :mod:`repro.theory.distortion` -- empirical measurement of the distortion a
  concrete sketch realises on a given subspace.
* :mod:`repro.theory.complexity` -- the arithmetic / memory-traffic / maximum
  distortion table (Table 1).
* :mod:`repro.theory.frequency` -- eps-phi guarantees for the frequency
  vertical: point-query error/failure bounds, heavy-hitter recoverability,
  and hierarchical query work counts.
"""

from repro.theory.embeddings import (
    required_embedding_dim,
    gaussian_embedding_dim,
    srht_embedding_dim,
    countsketch_embedding_dim,
    multisketch_embedding_dims,
    subspace_embedding_holds,
)
from repro.theory.distortion import (
    measure_subspace_distortion,
    measure_pairwise_distortion,
    residual_distortion_bound,
)
from repro.theory.complexity import (
    SketchComplexity,
    complexity_table,
    sketch_complexity,
    solver_complexity,
    streaming_complexity,
)
from repro.theory.frequency import (
    depth_for_failure,
    heavy_hitter_guarantee,
    hierarchical_topk_work,
    hierarchy_levels,
    point_query_epsilon,
    point_query_failure,
    range_query_nodes,
    width_for_epsilon,
)

__all__ = [
    "required_embedding_dim",
    "gaussian_embedding_dim",
    "srht_embedding_dim",
    "countsketch_embedding_dim",
    "multisketch_embedding_dims",
    "subspace_embedding_holds",
    "measure_subspace_distortion",
    "measure_pairwise_distortion",
    "residual_distortion_bound",
    "SketchComplexity",
    "complexity_table",
    "sketch_complexity",
    "solver_complexity",
    "streaming_complexity",
    "point_query_epsilon",
    "point_query_failure",
    "width_for_epsilon",
    "depth_for_failure",
    "heavy_hitter_guarantee",
    "hierarchy_levels",
    "range_query_nodes",
    "hierarchical_topk_work",
]
