"""Table 1: asymptotic embedding dimension, arithmetic, and memory traffic.

The table gives, for a dense matrix ``A in R^{d x n}``, the asymptotically
optimal embedding dimension, the arithmetic, the global-memory read/writes,
and the maximum distortion for each sketching method:

==============  ==================  ==============  ==============  ==================
Method          Embed dim           Arithmetic      Read/Writes     Max distortion
==============  ==================  ==============  ==============  ==================
Gaussian        eps^-2 n            d n^2           d n             1 + eps
SRHT            eps^-2 n log n      d n log n       d n log n       1 + eps
CountSketch     eps^-2 n^2          d n             d n             1 + eps
MultiSketch     eps2^-2 n           d n + n^4       d n + n^4       (1+eps1)(1+eps2)
==============  ==================  ==============  ==============  ==================

The functions here return those quantities as concrete numbers for given
``(d, n, eps)`` so the benchmark harness can print the table and so the cost
model can be cross-checked against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class SketchComplexity:
    """One row of Table 1, evaluated at concrete ``(d, n, eps)``."""

    method: str
    embedding_dim: float
    arithmetic: float
    read_writes: float
    max_distortion: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form used by the report printer."""
        return {
            "method": self.method,
            "embedding_dim": self.embedding_dim,
            "arithmetic": self.arithmetic,
            "read_writes": self.read_writes,
            "max_distortion": self.max_distortion,
        }


def sketch_complexity(
    method: str,
    d: int,
    n: int,
    eps: float = 0.5,
    eps2: Optional[float] = None,
) -> SketchComplexity:
    """Evaluate one Table-1 row for a ``d x n`` matrix.

    Parameters
    ----------
    method:
        ``"gaussian"``, ``"srht"``, ``"countsketch"`` or ``"multisketch"``.
    d, n:
        Matrix dimensions.
    eps:
        Target distortion (``eps1`` for the multisketch).
    eps2:
        Second-stage distortion for the multisketch (defaults to ``eps``).
    """
    if d <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie in (0, 1)")
    method_l = method.lower()
    logn = max(math.log2(max(n, 2)), 1.0)

    if method_l in ("gaussian", "gauss"):
        return SketchComplexity("Gaussian", n / eps**2, float(d) * n * n, float(d) * n, 1.0 + eps)
    if method_l == "srht":
        return SketchComplexity(
            "SRHT", n * logn / eps**2, float(d) * n * logn, float(d) * n * logn, 1.0 + eps
        )
    if method_l in ("countsketch", "count"):
        return SketchComplexity(
            "CountSketch", n * n / eps**2, float(d) * n, float(d) * n, 1.0 + eps
        )
    if method_l in ("multisketch", "multi", "count_gauss"):
        e2 = eps if eps2 is None else eps2
        if not 0.0 < e2 < 1.0:
            raise ValueError("eps2 must lie in (0, 1)")
        work = float(d) * n + float(n) ** 4
        return SketchComplexity(
            f"MultiSketch({eps}, {e2})",
            n / e2**2,
            work,
            work,
            (1.0 + eps) * (1.0 + e2),
        )
    raise ValueError(f"unknown sketch method '{method}'")


def complexity_table(
    d: int,
    n: int,
    eps: float = 0.5,
    methods: Optional[Iterable[str]] = None,
) -> List[SketchComplexity]:
    """All rows of Table 1 evaluated at ``(d, n, eps)``."""
    if methods is None:
        methods = ("gaussian", "srht", "countsketch", "multisketch")
    return [sketch_complexity(m, d, n, eps) for m in methods]


# ---------------------------------------------------------------------------
# Solver-level cost estimates (used by the planner in repro.linalg.planner)
# ---------------------------------------------------------------------------
def solver_complexity(
    solver: str,
    d: int,
    n: int,
    *,
    nrhs: int = 1,
    embedding_dim: Optional[int] = None,
    sketch_kind: str = "multisketch",
    iterations: int = 30,
) -> Dict[str, float]:
    """Leading-order arithmetic and memory traffic of one least-squares solve.

    This is the planner's a-priori cost model: it combines the Table-1
    sketching costs with the standard LAPACK flop counts of the dense phases
    so :func:`repro.linalg.planner.plan` can rank solvers without running
    them.  Costs are returned as ``{"arithmetic", "read_writes"}`` in flops
    and scalar loads/stores; the registry converts them to simulated seconds
    with the device's roofline when an executor is available.

    Parameters
    ----------
    solver:
        One of ``"normal_equations"``, ``"sketch_and_solve"``, ``"qr"``,
        ``"rand_cholqr"``, ``"sketch_precond_lsqr"`` -- or a ridge-class
        solver ``"ridge_normal_equations"``, ``"ridge_precond_lsqr"``,
        ``"ridge_qr"`` (:mod:`repro.problems.ridge`), whose costs are the
        corresponding plain solver's evaluated on the lambda-augmented
        ``(d + n) x n`` system (plus the ``n`` diagonal adds of the
        regularized Gram matrix).
    d, n:
        Problem dimensions (``A`` is ``d x n``, tall).
    nrhs:
        Number of fused right-hand sides.
    embedding_dim:
        Sketch output dimension ``k`` (defaults to ``2 n``, the paper's
        Section-6.2 choice for the subspace-embedding families).
    sketch_kind:
        Sketch family used by the sketch-based solvers (affects the
        ``S A`` application cost via Table 1).
    iterations:
        Expected LSQR iteration count for ``sketch_precond_lsqr`` (a few
        tens, independent of ``kappa(A)``, by the embedding property).
    """
    if d <= 0 or n <= 0 or nrhs <= 0:
        raise ValueError("dimensions and nrhs must be positive")
    k = float(embedding_dim if embedding_dim is not None else 2 * n)
    solver_l = solver.lower()

    # Ridge solvers run the plain pipeline on the augmented [A; sqrt(lam) I]
    # system: d + n rows.  The regularized normal equations skip the
    # augmentation (Gram of the augmented matrix is A^T A + lam I) and only
    # add n diagonal updates.
    if solver_l in ("ridge_precond_lsqr", "ridge_qr"):
        base = "sketch_precond_lsqr" if solver_l == "ridge_precond_lsqr" else "qr"
        return solver_complexity(
            base,
            d + n,
            n,
            nrhs=nrhs,
            embedding_dim=embedding_dim,
            sketch_kind=sketch_kind,
            iterations=iterations,
        )
    if solver_l == "ridge_normal_equations":
        cost = solver_complexity(
            "normal_equations", d, n, nrhs=nrhs, embedding_dim=embedding_dim,
            sketch_kind=sketch_kind, iterations=iterations,
        )
        cost["arithmetic"] += float(n)  # the lam I diagonal shift
        cost["read_writes"] += 2.0 * n
        return cost

    dn = float(d) * n

    def sketch_apply_cost() -> float:
        kind = sketch_kind.lower()
        if kind in ("countsketch", "count"):
            return dn  # one pass over A
        if kind in ("multisketch", "multi", "count_gauss"):
            return dn + float(n) ** 4  # CountSketch pass + dense second stage
        if kind == "srht":
            return dn * max(math.log2(max(n, 2)), 1.0)
        return 2.0 * dn * k  # dense Gaussian GEMM: (k x d) @ (d x n)

    if solver_l == "normal_equations":
        arithmetic = 2.0 * dn * n + 2.0 * dn * nrhs + n**3 / 3.0 + 2.0 * float(n) * n * nrhs
        traffic = dn + float(n) * n + float(d) * nrhs
    elif solver_l in ("sketch_and_solve", "sketch-and-solve"):
        arithmetic = (
            sketch_apply_cost()  # Y = S A
            + float(d) * nrhs  # z = S b (stream of the RHS block)
            + 2.0 * k * n * n  # GEQRF on the k x n sketch
            + 2.0 * k * n * nrhs  # ORMQR on the sketched RHS
            + float(n) * n * nrhs  # TRSM
        )
        traffic = dn + k * n + float(d) * nrhs
    elif solver_l in ("qr", "qr_solve", "householder_qr"):
        arithmetic = 2.0 * dn * n + 4.0 * dn * nrhs + float(n) * n * nrhs
        # Householder QR streams the d x n matrix O(n) times at these shapes
        # (blocked panel updates), which is what makes it the slow reference.
        traffic = dn * max(n / 32.0, 1.0) + float(d) * nrhs
    elif solver_l in ("rand_cholqr", "rand_cholqr_lstsq"):
        arithmetic = (
            sketch_apply_cost()
            + 2.0 * k * n * n  # GEQRF on the sketch
            + dn * n  # TRSM: A0 = A R0^{-1}
            + 2.0 * dn * n  # Gram matrix of A0
            + n**3 / 3.0  # POTRF
            + 2.0 * dn * nrhs  # Z = A0^T B
            + 3.0 * float(n) * n * nrhs  # three triangular block solves
        )
        traffic = 3.0 * dn + k * n + float(d) * nrhs
    elif solver_l in ("sketch_precond_lsqr", "sketch_preconditioned_lsqr", "blendenpik", "lsqr"):
        arithmetic = (
            sketch_apply_cost()
            + 2.0 * k * n * n  # GEQRF on the sketch
            + 4.0 * dn * nrhs * iterations  # two passes over A per iteration
        )
        traffic = dn + k * n + 2.0 * dn * iterations
    else:
        raise ValueError(f"unknown solver '{solver}'")
    return {"arithmetic": float(arithmetic), "read_writes": float(traffic)}


# ---------------------------------------------------------------------------
# Streaming: single-pass space / cost accounting (used by repro.streaming)
# ---------------------------------------------------------------------------
def streaming_complexity(
    n: int,
    batch: int,
    *,
    embedding_dim: Optional[int] = None,
    mode: str = "landmark",
    window_buckets: int = 4,
    oversampling: float = 2.0,
) -> Dict[str, float]:
    """Per-batch cost and resident state of the online sketch-and-solve engine.

    The streaming engine (:mod:`repro.streaming`) maintains the joint hashed
    CountSketch ``S [A | b]`` of its window, so everything is a function of
    the batch size, the column count and the window geometry -- *never* of
    the total rows seen.  Returned keys:

    ``update_arithmetic`` / ``update_read_writes``
        One ingest: a single pass over the ``batch x (n+1)`` block (adds plus
        the splitmix64 hash arithmetic), matching the
        ``countsketch_stream_update`` kernel charge.  The ``"decay"`` mode
        adds one scale pass over the ``k x (n+1)`` accumulator.
    ``state_floats``
        Resident sketch state: ``k (n+1)`` floats per live accumulator
        (``window_buckets`` of them in ``"sliding"`` mode, one otherwise).
    ``merge_read_writes``
        Query-time window materialisation (``"sliding"`` merges its ring;
        the other modes just snapshot one accumulator).
    ``query_arithmetic``
        The lazy re-solve on the ``k x n`` window system (QR-order
        ``2 k n^2``), the dominant query cost.
    ``stream_length_exponent``
        Power of the total stream length ``N`` in the per-batch cost --
        identically 0, which is the single-pass claim the streaming
        benchmark asserts.
    """
    if n <= 0 or batch <= 0 or window_buckets <= 0:
        raise ValueError("n, batch and window_buckets must be positive")
    cols = float(n + 1)  # the joint [A | b] sketch
    k = float(
        embedding_dim
        if embedding_dim is not None
        else math.ceil(oversampling * (n + 1) ** 2)
    )
    mode_l = mode.lower()
    if mode_l not in ("landmark", "sliding", "decay"):
        raise ValueError(f"unknown streaming mode '{mode}'")
    update_arithmetic = float(batch) * cols + 8.0 * batch  # adds + hash
    update_read_writes = 2.0 * batch * cols + 8.0 * batch
    if mode_l == "decay":
        update_arithmetic += k * cols  # scale-then-accumulate
        update_read_writes += 2.0 * k * cols
    live_accumulators = float(window_buckets) if mode_l == "sliding" else 1.0
    merge_read_writes = (
        3.0 * live_accumulators * k * cols if mode_l == "sliding" else k * cols
    )
    return {
        "update_arithmetic": update_arithmetic,
        "update_read_writes": update_read_writes,
        "state_floats": live_accumulators * k * cols,
        "merge_read_writes": merge_read_writes,
        "query_arithmetic": 2.0 * k * n * n,
        "stream_length_exponent": 0.0,
    }


# ---------------------------------------------------------------------------
# Low-rank approximation: cost and error accounting (used by repro.problems)
# ---------------------------------------------------------------------------
def lowrank_complexity(
    d: int,
    n: int,
    rank: int,
    *,
    oversample: int = 8,
    power_iters: int = 0,
    ell: Optional[int] = None,
) -> Dict[str, float]:
    """Cost model of the two low-rank paths in :mod:`repro.problems.lowrank`.

    ``rangefinder_*``
        The randomized range finder: one ``d x n`` GEMM against the
        ``n x (rank + oversample)`` Gaussian test matrix, ``2 q`` further
        passes over ``A`` for ``q`` power iterations (each with an
        intermediate economy QR), and a final QR + small SVD truncation.
    ``fd_*``
        Streaming Frequent Directions at sketch size ``ell`` (default
        ``2 * rank``): every row is appended once (``O(n)``) and each
        buffer-full shrink pays one ``2 ell x n`` SVD, amortising to
        ``O(n * ell)`` arithmetic per row; resident state is the fixed
        ``2 ell x n`` buffer, independent of ``d``.
    """
    if d <= 0 or n <= 0 or rank <= 0:
        raise ValueError("dimensions and rank must be positive")
    if rank > n:
        raise ValueError("rank cannot exceed the column count")
    r = float(rank + max(oversample, 0))
    el = float(2 * rank if ell is None else ell)
    dn = float(d) * n
    qr_cost = 2.0 * d * r * r  # economy QR of the d x r range block
    rangefinder_arithmetic = (
        2.0 * dn * r  # Y = A @ Omega
        + power_iters * (4.0 * dn * r + qr_cost)  # A (A^T Q) passes + re-orth
        + qr_cost  # final orthonormalisation
        + 2.0 * dn * r  # B = Q^T A
        + 10.0 * r * r * n  # small SVD truncation of B
    )
    shrinks = max(float(d) / el, 1.0)  # one SVD per ell appended rows
    fd_shrink = 10.0 * (2.0 * el) * n * el  # SVD of the 2 ell x n buffer
    return {
        "rangefinder_arithmetic": rangefinder_arithmetic,
        "rangefinder_read_writes": dn * (1.0 + 2.0 * power_iters) + 2.0 * d * r + r * n,
        "rangefinder_passes_over_a": 2.0 + 2.0 * power_iters,
        "fd_update_arithmetic_per_row": float(n) + fd_shrink / el,
        "fd_total_arithmetic": dn + shrinks * fd_shrink,
        "fd_state_floats": 2.0 * el * n,
        "stream_length_exponent": 0.0,  # FD state never grows with d
    }


def fd_error_bound(singular_values, ell: int, rank: int) -> float:
    """Frequent Directions Frobenius error bound at sketch size ``ell``.

    For the FD sketch ``B`` of ``A`` (``ell`` rows) and ``k = rank``,
    [Ghashami et al. 2016] give

    ``||A - A pi_{B_k}||_F^2 <= (1 + k / (ell - k)) ||A - A_k||_F^2``

    i.e. the projection onto the sketch's top-``k`` right singular vectors
    is within ``sqrt(1 + k/(ell-k))`` of the truncated-SVD optimum.  This
    returns that multiplicative bound on the *Frobenius error ratio*, the
    quantity ``benchmarks/test_problems.py`` asserts (``ell = 2k`` gives
    ``sqrt(2) ~ 1.41``, inside the issue's ``1 + 0.5`` acceptance factor).
    ``singular_values`` is accepted for signature symmetry with future
    spectrum-dependent refinements; the classical bound does not use it.
    """
    if ell <= rank:
        raise ValueError("FD needs a sketch size ell strictly larger than the target rank")
    return math.sqrt(1.0 + float(rank) / (float(ell) - rank))


def gram_matrix_cost(d: int, n: int) -> Dict[str, float]:
    """Arithmetic and traffic of the Gram matrix ``A^T A`` (the paper's baseline)."""
    return {
        "arithmetic": 2.0 * d * n * n,
        "read_writes": float(d) * n + float(n) * n,
    }


def crossover_n(eps: float = 0.5) -> float:
    """Column count above which the multisketch does less work than the Gram matrix.

    Setting ``d n + n^4 < 2 d n^2`` and ignoring the ``n^4`` term (valid while
    ``n^3 << d``), the multisketch wins as soon as ``n > 1 / (2 - 1/n) ~ 1``;
    the practically relevant crossover is where the constant factors flip,
    which the paper locates empirically around ``n = 64`` on the H100.  This
    helper returns the theoretical work-ratio crossover for completeness.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie in (0, 1)")
    return 1.0
