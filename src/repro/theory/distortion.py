"""Empirical distortion measurement for sketch operators.

Definition 1.1 of the paper: ``S`` is an eps-subspace embedding for a
subspace ``V`` if ``|<x, y> - <Sx, Sy>| <= eps ||x|| ||y||`` for all
``x, y in V``.  For an ``n``-dimensional subspace spanned by the columns of
an orthonormal ``Q in R^{d x n}`` this is equivalent to

    ``|| Q^T S^T S Q - I ||_2 <= eps``,

so the sharpest realised distortion of a concrete sketch can be measured as
the extreme singular values of ``S Q``.  These helpers are used by the
property-based tests and by the EXPERIMENTS.md accuracy tables.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def measure_subspace_distortion(sketch, basis: np.ndarray) -> float:
    """Realised distortion of ``sketch`` on the subspace spanned by ``basis``.

    Parameters
    ----------
    sketch:
        Any :class:`~repro.core.base.SketchOperator`.
    basis:
        A ``d x n`` matrix whose columns span the subspace (it is
        orthonormalised internally).

    Returns
    -------
    float
        ``|| Q^T S^T S Q - I ||_2`` -- the smallest ``eps`` for which the
        subspace embedding inequality holds on this subspace.
    """
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2:
        raise ValueError("basis must be a 2-D array")
    q, _ = np.linalg.qr(basis)
    sq = sketch.sketch_host(q)
    gram = sq.T @ sq
    return float(np.linalg.norm(gram - np.eye(gram.shape[0]), ord=2))


def singular_value_distortion(sketch, basis: np.ndarray) -> Tuple[float, float]:
    """Extreme singular values of ``S Q`` for an orthonormalised basis ``Q``.

    A perfect embedding would give ``(1, 1)``; an eps-embedding guarantees
    they lie in ``[sqrt(1-eps), sqrt(1+eps)]``.
    """
    basis = np.asarray(basis, dtype=np.float64)
    q, _ = np.linalg.qr(basis)
    sq = sketch.sketch_host(q)
    svals = np.linalg.svd(sq, compute_uv=False)
    return float(svals.min()), float(svals.max())


def measure_pairwise_distortion(
    sketch, vectors: np.ndarray, rng: np.random.Generator | None = None, pairs: int = 64
) -> float:
    """Maximum inner-product distortion over sampled vector pairs.

    Directly checks Definition 1.1 on random pairs drawn from the column
    space of ``vectors``: returns the largest observed
    ``|<x,y> - <Sx,Sy>| / (||x|| ||y||)``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if rng is None:
        rng = np.random.default_rng(0)
    d, n = vectors.shape
    sketched = sketch.sketch_host(vectors)
    worst = 0.0
    for _ in range(int(pairs)):
        c1 = rng.standard_normal(n)
        c2 = rng.standard_normal(n)
        x, y = vectors @ c1, vectors @ c2
        sx, sy = sketched @ c1, sketched @ c2
        denom = np.linalg.norm(x) * np.linalg.norm(y)
        if denom == 0.0:
            continue
        worst = max(worst, abs(float(x @ y) - float(sx @ sy)) / denom)
    return worst


def residual_distortion_bound(eps: float) -> float:
    """Sketch-and-solve residual inflation bound ``sqrt((1+eps)/(1-eps))``.

    Mirrors :func:`repro.theory.embeddings.sketch_and_solve_residual_factor`;
    kept here as well because accuracy post-processing imports this module.
    """
    if not 0.0 <= eps < 1.0:
        raise ValueError("eps must lie in [0, 1)")
    return float(np.sqrt((1.0 + eps) / (1.0 - eps)))


def observed_residual_inflation(residual_sketched: float, residual_true: float) -> float:
    """Ratio of the sketch-and-solve residual to the true residual.

    This is the O(1) factor the paper discusses in Section 6.3; values close
    to 1 mean the distortion introduced by sketch-and-solve is negligible.
    """
    if residual_true < 0 or residual_sketched < 0:
        raise ValueError("residual norms must be non-negative")
    if residual_true == 0.0:
        return float("inf") if residual_sketched > 0 else 1.0
    return residual_sketched / residual_true
