"""`StreamingSolver`: the online sketch-and-solve engine.

The batch pipeline of PR 1/2 assumes ``A`` arrives whole; this engine
assumes it never does.  Rows stream in as ``(rows, targets)`` batches and
the engine maintains only the joint hashed-CountSketch state ``S [A | b]``
(:mod:`repro.streaming.state` -- landmark, sliding-window, or
exponential-decay variants), so per-batch ingest cost is ``O(batch * n)``
no matter how many rows the stream has seen.

Solutions are produced *lazily*: a query re-solves only when the window has
changed since the last solve, and the re-solve routes the small sketched
problem ``min_x ||S b - (S A) x||`` through the PR 2 registry/planner
(:func:`repro.linalg.planner.plan` / :func:`~repro.linalg.planner.execute_plan`),
so a stale or ill-conditioned window still lands on the cheapest admissible
solver and any breakdown walks the declared fallback chain -- with the
attempted chain recorded on the result exactly as in batch serving.

A :class:`~repro.streaming.drift.DriftDetector` (optional but on by
default) watches every arriving batch's out-of-sample residual and
periodically probes the window's conditioning; a firing triggers a window
reset (residual drift: the old rows are actively wrong) or a re-plan
(conditioning drift: the old routing is), followed by an eager re-solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.base import default_embedding_dim
from repro.gpu.executor import GPUExecutor
from repro.linalg.incremental import OperatorRefresher
from repro.linalg.lstsq import LeastSquaresResult, relative_residual
from repro.linalg.planner import SolvePlan, execute_plan, normalize_policy, plan
from repro.linalg.registry import SolveSpec
from repro.streaming.drift import DriftDetector, DriftDetectorConfig, DriftEvent
from repro.streaming.state import make_state, normalize_mode


@dataclass
class IngestReport:
    """What one :meth:`StreamingSolver.ingest` call did.

    ``batch_residual`` is the arriving batch's out-of-sample relative
    residual against the pre-ingest solution (NaN before the first solve);
    ``drift`` carries the detector event when one fired, and ``resolved``
    says whether the ingest triggered an eager re-solve.
    ``simulated_seconds`` covers the ingest itself (fold + any probe
    merge); an eager re-solve's cost is reported separately in
    ``resolve_seconds`` so serving-side accounting can attribute both.
    """

    rows: int
    batch_residual: float
    drift: Optional[DriftEvent] = None
    resolved: bool = False
    simulated_seconds: float = 0.0
    resolve_seconds: float = 0.0


@dataclass
class StreamingSolution:
    """One (possibly cached) answer to a solution query.

    ``relative_residual`` is measured on the sketched window system (the
    only data the engine has); ``staleness_rows`` counts rows ingested
    after the solve that produced ``x`` -- 0 means the solution reflects
    the whole window.
    """

    x: Optional[np.ndarray]
    relative_residual: float
    planned_solver: str
    executed_solver: str
    attempted: Tuple[str, ...]
    fallbacks: int
    cond_estimate: float
    policy: str
    trigger: str
    window_rows: int
    rows_at_solve: int
    solved_version: int
    simulated_seconds: float
    staleness_rows: int = 0
    failed: bool = False
    failure_reason: str = ""


class StreamingSolver:
    """Online least-squares over a row stream, solved through the planner.

    Parameters
    ----------
    n:
        Number of feature columns of the streamed rows.
    k:
        Embedding dimension of the window sketch; defaults to the paper's
        CountSketch rule ``ceil(oversampling * (n+1)^2)`` for the joint
        ``[A | b]`` sketch.
    mode:
        Window maintenance: ``"landmark"``, ``"sliding"``, ``"decay"``, or
        ``"fd"`` (a deterministic Frequent Directions spectral summary --
        see :mod:`repro.streaming.state`).
    bucket_rows / window_buckets:
        Sliding-window geometry (rows per sub-sketch, sub-sketches kept).
    decay:
        Per-row forgetting factor of the ``"decay"`` mode.
    policy:
        Planner policy used at every re-solve (``"fixed"`` is not meaningful
        here and is rejected -- streaming exists to re-route).
    solve_kind:
        Sketch family the *inner* solvers may use on the ``k x n`` window
        problem (forwarded into the :class:`~repro.linalg.registry.SolveSpec`).
    accuracy_target / latency_budget / oversampling / seed:
        Forwarded to the spec / sketch state (a latency budget makes the
        ``"adaptive"`` policy prefer the most robust solver that fits it).
    detector:
        A :class:`~repro.streaming.drift.DriftDetector`, ``True`` (default
        config), or ``False``/``None`` to run open-loop.
    reset_on_drift:
        Whether a residual-drift event resets the window before re-solving
        (conditioning events never reset; they only re-plan).
    executor:
        Simulated device the ingest/merge/solve kernels are charged to; a
        private numeric H100 executor is created when omitted.  The window
        state is fixed-size (retired accumulators are freed), but the
        library's one-shot solvers never free their per-solve temporaries,
        so a long-lived engine should run with ``track_memory=False`` (the
        private executor's default) like the serving pool does.
    """

    def __init__(
        self,
        n: int,
        *,
        k: Optional[int] = None,
        mode: str = "landmark",
        bucket_rows: int = 1024,
        window_buckets: int = 4,
        decay: float = 0.999,
        policy: str = "cheapest_accurate",
        solve_kind: str = "multisketch",
        accuracy_target: float = 1e-6,
        latency_budget: Optional[float] = None,
        oversampling: float = 2.0,
        seed: Optional[int] = 0,
        detector=True,
        reset_on_drift: bool = True,
        executor: Optional[GPUExecutor] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = int(n)
        self.mode = normalize_mode(mode)
        self.policy = normalize_policy(policy)
        if self.policy == "fixed":
            raise ValueError("streaming re-solves route through the planner; use an adaptive policy")
        if executor is None:
            executor = GPUExecutor(numeric=True, seed=seed, track_memory=False)
        self.executor = executor
        # None maps to 0, matching StreamingCountSketch's hash-seed
        # convention: streaming state is always reproducible from its seed.
        self.seed = 0 if seed is None else int(seed)
        self.solve_kind = solve_kind
        self.accuracy_target = float(accuracy_target)
        self.latency_budget = None if latency_budget is None else float(latency_budget)
        self.oversampling = float(oversampling)
        if k is None:
            if self.mode == "fd":
                # The FD buffer is k rows (ell = k/2): 2*ell = 4(n+1) keeps
                # ell comfortably above the joint column count, the minimum
                # for a faithful spectral summary of [A | b].
                k = 4 * (self.n + 1)
            else:
                k = default_embedding_dim("countsketch", self.n + 1, oversampling)
        if k <= self.n:
            raise ValueError("embedding dimension k must exceed n")
        self.k = int(k)
        self.state = make_state(
            self.mode,
            self.n + 1,
            self.k,
            executor=executor,
            seed=self.seed,
            bucket_rows=bucket_rows,
            window_buckets=window_buckets,
            decay=decay,
        )
        if detector is True:
            self.detector: Optional[DriftDetector] = DriftDetector()
        elif isinstance(detector, DriftDetectorConfig):
            self.detector = DriftDetector(detector)
        elif isinstance(detector, DriftDetector):
            self.detector = detector
        elif detector is False or detector is None:
            self.detector = None
        else:
            # Anything else silently disabling detection would be the
            # opposite of what the caller asked for.
            raise TypeError(
                "detector must be True/False/None, a DriftDetector or a "
                f"DriftDetectorConfig, got {type(detector).__name__}"
            )
        self.reset_on_drift = bool(reset_on_drift)

        # Sketch operators the inner (fallback-chain) solvers need persist
        # across re-solves: the window shape never changes, so their factors
        # are refreshed once and reused by every subsequent re-solve.
        self._refresher = OperatorRefresher(executor)
        self._solution: Optional[StreamingSolution] = None
        self._last_result: Optional[LeastSquaresResult] = None
        self._joint: Optional[np.ndarray] = None
        self._joint_version = -1
        self.batches_ingested = 0
        self.resolve_count = 0
        self.drift_resolves = 0
        self.ingest_seconds = 0.0

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, rows: np.ndarray, targets: np.ndarray) -> IngestReport:
        """Fold one arriving ``(batch, n)`` block of rows and its targets.

        Runs the drift checks, updates the window sketch (one
        ``O(batch * n)`` kernel), and eagerly re-solves when a drift event
        fires; otherwise solving is deferred to the next query.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if rows.shape[1] != self.n:
            raise ValueError(f"expected rows with {self.n} columns, got {rows.shape}")
        if targets.shape[0] != rows.shape[0]:
            raise ValueError("need one target per row")
        batch = rows.shape[0]
        if batch == 0:
            return IngestReport(rows=0, batch_residual=float("nan"))
        self.batches_ingested += 1

        # Out-of-sample check of the *old* solution on the *new* rows
        # (host-side, off the simulated clock, like every residual check).
        batch_resid = float("nan")
        event: Optional[DriftEvent] = None
        if self._solution is not None and self._solution.x is not None:
            batch_resid = relative_residual(rows, targets, self._solution.x)
            if self.detector is not None:
                event = self.detector.observe_residual(batch_resid)
        # Everything the stream's arrival costs -- a drift reset's fresh
        # accumulator, the fold kernel, and the window merge a condition
        # probe reads -- is charged inside one ingest accounting window;
        # re-solves are solve work and are attributed to the solution.
        mark = self.executor.mark()
        if event is not None and self.reset_on_drift and event.kind == "residual":
            # The old window is actively wrong: drop it before folding the
            # batch so the fresh solve reflects the new regime only.
            self.state.reset()
        block = np.concatenate([rows, targets[:, None]], axis=1)
        self.state.fold(block, batch)
        if (
            event is None
            and self._solution is not None
            and self.detector is not None
            and self.detector.should_probe()
            and self.executor.numeric
        ):
            joint = self._window_joint()
            if joint is not None:
                # The kappa estimate itself is host-side (off-clock, like
                # every residual check); only the merge above was charged.
                event = self.detector.observe_sketch(joint[:, : self.n])
        seconds = self.executor.elapsed_since(mark)
        self.ingest_seconds += seconds

        resolved = False
        if event is not None:
            if self.state.rows_in_window() > self.n:
                self._solve(
                    trigger=f"drift:{event.kind}",
                    fresh_window=event.kind == "residual" and self.reset_on_drift,
                )
                self.drift_resolves += 1
                resolved = True
            else:
                # A reset left the fresh window underdetermined: the old
                # model is known-wrong, so stop serving it and let the
                # warmup path re-solve once the window is overdetermined.
                self._solution = None
        elif (
            self.detector is not None
            and self._solution is None
            and self.executor.numeric
            and self.state.rows_in_window() > self.n
        ):
            # A detector needs a model to score arriving batches against;
            # solve once as soon as the window is overdetermined instead of
            # waiting for the first query.
            self._solve(trigger="warmup", fresh_window=True)
            resolved = True
        return IngestReport(
            rows=batch,
            batch_residual=batch_resid,
            drift=event,
            resolved=resolved,
            simulated_seconds=seconds,
            resolve_seconds=(
                self._solution.simulated_seconds if resolved and self._solution else 0.0
            ),
        )

    # ------------------------------------------------------------------
    # solve / query
    # ------------------------------------------------------------------
    def solution(self, *, force: bool = False) -> StreamingSolution:
        """Current window's solution, re-solving only if the window changed."""
        stale = (
            self._solution is None
            or self._solution.solved_version != self.state.version
        )
        if force or stale:
            self._solve(trigger="query")
        sol = self._solution
        assert sol is not None
        # A fresh copy per query: responses already handed out must keep the
        # staleness they were served at.
        return replace(sol, staleness_rows=self.state.rows_total - sol.rows_at_solve)

    @property
    def staleness_rows(self) -> int:
        """Rows ingested since the last solve (whole stream if never solved)."""
        if self._solution is None:
            return self.state.rows_total
        return self.state.rows_total - self._solution.rows_at_solve

    @property
    def last_result(self) -> Optional[LeastSquaresResult]:
        """Full :class:`~repro.linalg.lstsq.LeastSquaresResult` of the last re-solve."""
        return self._last_result

    def _window_joint(self) -> Optional[np.ndarray]:
        """The window's merged ``k x (n+1)`` sketch, cached per state version.

        A condition probe and the re-solve it triggers (or a probe and the
        next query) land on the same window version; caching the merged
        array means the ring is merged -- and charged -- once per version,
        not once per reader.
        """
        if self._joint_version == self.state.version and self._joint is not None:
            return self._joint
        self._joint = self.state.current()
        self._joint_version = self.state.version
        return self._joint

    def _solve(self, trigger: str, fresh_window: bool = False) -> None:
        """Re-solve the window; ``fresh_window`` marks solves whose window
        reflects a single regime by construction (warmup, post-reset), whose
        residual is therefore safe to adopt as the detector reference."""
        if not self.executor.numeric:
            raise RuntimeError("solution queries need a numeric executor")
        if self.state.rows_in_window() == 0:
            raise RuntimeError("cannot solve an empty window; ingest rows first")
        mark = self.executor.mark()
        joint = self._window_joint()
        merge_seconds = self.executor.elapsed_since(mark)  # 0 when probe pre-merged
        assert joint is not None
        sa, sb = joint[:, : self.n], joint[:, self.n]

        spec = SolveSpec(
            d=self.k,
            n=self.n,
            nrhs=1,
            accuracy_target=self.accuracy_target,
            latency_budget=self.latency_budget,
            kind=self.solve_kind,
            oversampling=self.oversampling,
            seed=self.seed,
        )
        plan_: SolvePlan = plan(sa, spec, policy=self.policy, device=self.executor.device)
        result = execute_plan(
            plan_,
            sa,
            sb,
            spec,
            executor=self.executor,
            operator_provider=self._refresher.provider(spec),
        )
        self.resolve_count += 1
        self._last_result = result
        if self.detector is not None and not result.failed:
            # Re-anchor the detector -- except on a re-solve of a window
            # that was *not* reset and whose own residual already looks
            # out-of-regime: adopting it as the reference would mask the
            # very drift it evidences (the window still mixes regimes until
            # the detector fires and resets it).
            ref = self.detector.reference_residual
            in_regime = (
                fresh_window
                or ref is None
                or result.relative_residual <= ref * self.detector.config.residual_threshold
            )
            if in_regime:
                self.detector.rebase(result.relative_residual, plan_.cond_estimate)
        self._solution = StreamingSolution(
            x=result.x,
            relative_residual=result.relative_residual,
            planned_solver=plan_.solver,
            executed_solver=result.attempted_solvers[-1],
            attempted=result.attempted_solvers,
            fallbacks=int(float(result.extra.get("fallbacks", 0.0))),
            cond_estimate=plan_.cond_estimate,
            policy=self.policy,
            trigger=trigger,
            window_rows=self.state.rows_in_window(),
            rows_at_solve=self.state.rows_total,
            solved_version=self.state.version,
            simulated_seconds=result.total_seconds + merge_seconds,
            failed=result.failed,
            failure_reason=result.failure_reason,
        )

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Everything a restore needs: config, window state, detector, solution.

        Returns ``(meta, arrays)`` in the durable record's split -- JSON-able
        metadata plus named numpy arrays.  The engine's construction
        parameters ride along so :meth:`from_state_dict` can rebuild an
        identically-configured solver without out-of-band knowledge.
        """
        state_meta, arrays = self.state.state_dict()
        meta = {
            "config": {
                "n": self.n,
                "k": self.k,
                "mode": self.mode,
                "policy": self.policy,
                "solve_kind": self.solve_kind,
                "accuracy_target": self.accuracy_target,
                "latency_budget": self.latency_budget,
                "oversampling": self.oversampling,
                "seed": self.seed,
                "reset_on_drift": self.reset_on_drift,
                "bucket_rows": int(getattr(self.state, "bucket_rows", 1024)),
                "window_buckets": int(getattr(self.state, "window_buckets", 4)),
                "decay": float(getattr(self.state, "decay", 0.999)),
            },
            "counters": {
                "batches_ingested": self.batches_ingested,
                "resolve_count": self.resolve_count,
                "drift_resolves": self.drift_resolves,
                "ingest_seconds": self.ingest_seconds,
            },
            "detector": None if self.detector is None else self.detector.state_dict(),
            "state": state_meta,
        }
        sol = self._solution
        if sol is None:
            meta["solution"] = None
        else:
            meta["solution"] = {
                "relative_residual": sol.relative_residual,
                "planned_solver": sol.planned_solver,
                "executed_solver": sol.executed_solver,
                "attempted": list(sol.attempted),
                "fallbacks": sol.fallbacks,
                "cond_estimate": sol.cond_estimate,
                "policy": sol.policy,
                "trigger": sol.trigger,
                "window_rows": sol.window_rows,
                "rows_at_solve": sol.rows_at_solve,
                "solved_version": sol.solved_version,
                "simulated_seconds": sol.simulated_seconds,
                "failed": sol.failed,
                "failure_reason": sol.failure_reason,
                "has_x": sol.x is not None,
            }
            if sol.x is not None:
                arrays = dict(arrays)
                arrays["solution_x"] = np.asarray(sol.x, dtype=np.float64)
        return meta, arrays

    @classmethod
    def from_state_dict(
        cls,
        meta: dict,
        arrays: Dict[str, np.ndarray],
        *,
        executor: Optional[GPUExecutor] = None,
    ) -> "StreamingSolver":
        """Rebuild a mid-stream engine from :meth:`state_dict` output.

        The restored engine is behaviourally identical to the snapshotted
        one: the window sketch, global row counter, detector references and
        cached solution all match, so replaying the same subsequent batches
        produces the same answers.
        """
        cfg = meta["config"]
        detector_state = meta.get("detector")
        solver = cls(
            int(cfg["n"]),
            k=int(cfg["k"]),
            mode=str(cfg["mode"]),
            bucket_rows=int(cfg["bucket_rows"]),
            window_buckets=int(cfg["window_buckets"]),
            decay=float(cfg["decay"]),
            policy=str(cfg["policy"]),
            solve_kind=str(cfg["solve_kind"]),
            accuracy_target=float(cfg["accuracy_target"]),
            latency_budget=None if cfg["latency_budget"] is None else float(cfg["latency_budget"]),
            oversampling=float(cfg["oversampling"]),
            seed=int(cfg["seed"]),
            detector=(
                DriftDetector.from_state_dict(detector_state)
                if detector_state is not None
                else False
            ),
            reset_on_drift=bool(cfg["reset_on_drift"]),
            executor=executor,
        )
        state_arrays = {name: arr for name, arr in arrays.items() if name != "solution_x"}
        solver.state.load_state(meta["state"], state_arrays)
        counters = meta["counters"]
        solver.batches_ingested = int(counters["batches_ingested"])
        solver.resolve_count = int(counters["resolve_count"])
        solver.drift_resolves = int(counters["drift_resolves"])
        solver.ingest_seconds = float(counters["ingest_seconds"])
        sol_meta = meta.get("solution")
        if sol_meta is not None:
            x = arrays.get("solution_x")
            if sol_meta["has_x"] and x is None:
                raise ValueError("solution snapshot is missing its x payload")
            solver._solution = StreamingSolution(
                x=None if x is None else np.asarray(x, dtype=np.float64),
                relative_residual=float(sol_meta["relative_residual"]),
                planned_solver=str(sol_meta["planned_solver"]),
                executed_solver=str(sol_meta["executed_solver"]),
                attempted=tuple(str(s) for s in sol_meta["attempted"]),
                fallbacks=int(sol_meta["fallbacks"]),
                cond_estimate=float(sol_meta["cond_estimate"]),
                policy=str(sol_meta["policy"]),
                trigger=str(sol_meta["trigger"]),
                window_rows=int(sol_meta["window_rows"]),
                rows_at_solve=int(sol_meta["rows_at_solve"]),
                solved_version=int(sol_meta["solved_version"]),
                simulated_seconds=float(sol_meta["simulated_seconds"]),
                failed=bool(sol_meta["failed"]),
                failure_reason=str(sol_meta["failure_reason"]),
            )
        return solver

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def drift_events(self) -> int:
        """Detector firings so far (0 when running open-loop)."""
        return self.detector.event_count if self.detector is not None else 0

    def stats(self) -> Dict[str, float]:
        """Headline counters as one flat dict (mirrors the serving style)."""
        out = {
            "batches_ingested": float(self.batches_ingested),
            "rows_ingested": float(self.state.rows_total),
            "window_rows": float(self.state.rows_in_window()),
            "resolve_count": float(self.resolve_count),
            "drift_resolves": float(self.drift_resolves),
            "drift_events": float(self.drift_events),
            "staleness_rows": float(self.staleness_rows),
            "ingest_seconds": self.ingest_seconds,
            "ingest_rows_per_second": (
                self.state.rows_total / self.ingest_seconds if self.ingest_seconds > 0 else 0.0
            ),
        }
        return out
