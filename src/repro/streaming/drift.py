"""Drift detection for the online sketch-and-solve engine.

Two complementary signals, both cheap enough to run on every batch:

* **Sketched residual energy.**  With a current estimate ``x_hat`` in hand,
  each arriving batch gives a free out-of-sample check: the relative
  residual ``||targets - rows @ x_hat|| / ||targets||`` of the *new* rows
  against the *old* solution.  On a stationary stream this hovers around
  the level observed right after the solve; after a distribution shift it
  jumps.  The detector keeps an exponentially weighted reference of the
  post-solve level and fires when consecutive batches exceed
  ``reference * threshold``.

* **Condition probe.**  Every ``probe_interval`` batches the engine hands
  the detector the window's sketched matrix ``S A`` (``k x n``, tiny) and
  :func:`repro.linalg.conditioning.estimate_condition` turns it into a
  ``kappa(A)`` estimate -- by the subspace-embedding property the sketch's
  spectrum tracks the window's.  A jump by more than ``cond_factor``
  relative to the conditioning the current :class:`~repro.linalg.planner.SolvePlan`
  was built for means the plan's solver ranking is stale even if the
  residuals still look fine, so the detector requests a re-plan.

The detector's own arithmetic (residual norms, the tiny SVD behind the
kappa estimate) runs host-side, off the simulated clock -- the same
convention as the planner's conditioning probe and the solvers' residual
verification.  The *window merge* a probe reads is real device work,
though, and the engine charges it to the ingest that triggered the probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.linalg.conditioning import estimate_condition


@dataclass(frozen=True)
class DriftEvent:
    """One detector firing.

    ``kind`` is ``"residual"`` (residual energy blew past the reference) or
    ``"conditioning"`` (the condition probe left the plan's regime);
    ``observed`` / ``reference`` carry the triggering statistic and the
    baseline it was compared against; ``batch_index`` is the ingest count at
    which the event fired.
    """

    kind: str
    observed: float
    reference: float
    batch_index: int

    def __str__(self) -> str:  # pragma: no cover - logging aid
        return (
            f"DriftEvent({self.kind} at batch {self.batch_index}: "
            f"{self.observed:.3e} vs reference {self.reference:.3e})"
        )


@dataclass
class DriftDetectorConfig:
    """Tuning knobs of :class:`DriftDetector`.

    Attributes
    ----------
    residual_threshold:
        A batch's relative residual must exceed ``reference * residual_threshold``
        to count as suspicious.
    patience:
        Consecutive suspicious batches required before a residual event
        fires (absorbs single noisy batches).
    ewma:
        Smoothing factor of the reference residual level (weight of the
        newest in-regime observation).
    min_reference:
        Floor on the reference level so near-exact streams (residual ~ 1e-15)
        do not fire on harmless numerical noise.
    cond_factor:
        Multiplicative change in the condition estimate (either direction)
        that triggers a re-plan event.
    probe_interval:
        Batches between condition probes (0 disables probing).
    """

    residual_threshold: float = 4.0
    patience: int = 2
    ewma: float = 0.3
    min_reference: float = 1e-10
    cond_factor: float = 100.0
    probe_interval: int = 8

    def __post_init__(self) -> None:
        if self.residual_threshold <= 1.0:
            raise ValueError("residual_threshold must exceed 1")
        if self.patience <= 0:
            raise ValueError("patience must be positive")
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError("ewma must lie in (0, 1]")
        if self.cond_factor <= 1.0:
            raise ValueError("cond_factor must exceed 1")


class DriftDetector:
    """Residual-energy + condition-probe drift detector.

    The engine drives it with :meth:`observe_residual` on every ingest (once
    a solution exists) and :meth:`observe_sketch` at probe intervals; either
    returns a :class:`DriftEvent` when the stream has left the regime the
    current solution/plan was built for.  :meth:`rebase` is called after
    every (re-)solve so the reference tracks the new regime.
    """

    def __init__(self, config: Optional[DriftDetectorConfig] = None) -> None:
        self.config = config or DriftDetectorConfig()
        self.reference_residual: Optional[float] = None
        self.reference_cond: Optional[float] = None
        self.events: List[DriftEvent] = []
        self._suspicious_run = 0
        self._batches_seen = 0

    # ------------------------------------------------------------------
    def rebase(self, residual: float, cond_estimate: Optional[float] = None) -> None:
        """Anchor the references to a fresh solve's residual / conditioning."""
        cfg = self.config
        self.reference_residual = max(float(residual), cfg.min_reference)
        if cond_estimate is not None and np.isfinite(cond_estimate):
            self.reference_cond = float(cond_estimate)
        self._suspicious_run = 0

    # ------------------------------------------------------------------
    def observe_residual(self, batch_residual: float) -> Optional[DriftEvent]:
        """Feed one arriving batch's out-of-sample relative residual."""
        self._batches_seen += 1
        cfg = self.config
        if self.reference_residual is None:
            # No solve yet: nothing to compare against, just warm the level
            # -- from finite observations only, so a garbage first residual
            # (failed solve, NaN) can never become the permanent reference.
            if np.isfinite(batch_residual):
                self.reference_residual = max(float(batch_residual), cfg.min_reference)
            return None
        if not np.isfinite(batch_residual):
            batch_residual = np.inf
        if batch_residual > self.reference_residual * cfg.residual_threshold:
            self._suspicious_run += 1
            if self._suspicious_run >= cfg.patience:
                event = DriftEvent(
                    kind="residual",
                    observed=float(batch_residual),
                    reference=self.reference_residual,
                    batch_index=self._batches_seen,
                )
                self.events.append(event)
                self._suspicious_run = 0
                return event
            return None
        self._suspicious_run = 0
        # Still in regime: let the reference track slow, benign movement.
        self.reference_residual = max(
            (1.0 - cfg.ewma) * self.reference_residual + cfg.ewma * float(batch_residual),
            cfg.min_reference,
        )
        return None

    # ------------------------------------------------------------------
    def should_probe(self) -> bool:
        """Whether this ingest is a condition-probe tick."""
        interval = self.config.probe_interval
        return interval > 0 and self._batches_seen > 0 and self._batches_seen % interval == 0

    def observe_sketch(self, sketched_a: np.ndarray) -> Optional[DriftEvent]:
        """Probe the window's conditioning from its sketched matrix ``S A``."""
        cond = estimate_condition(np.asarray(sketched_a), seed=0)
        if self.reference_cond is None:
            self.reference_cond = cond
            return None
        lo, hi = sorted((cond, self.reference_cond))
        if lo > 0 and hi / lo > self.config.cond_factor:
            event = DriftEvent(
                kind="conditioning",
                observed=cond,
                reference=self.reference_cond,
                batch_index=self._batches_seen,
            )
            self.events.append(event)
            self.reference_cond = cond
            return event
        return None

    # ------------------------------------------------------------------
    @property
    def event_count(self) -> int:
        """Detector firings so far (both kinds)."""
        return len(self.events)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Durable detector state: config, EWMA references, run counters.

        Everything is a plain JSON-able scalar (events become dicts), so the
        detector rides inside the durable record header for free.
        """
        cfg = self.config
        return {
            "config": {
                "residual_threshold": cfg.residual_threshold,
                "patience": cfg.patience,
                "ewma": cfg.ewma,
                "min_reference": cfg.min_reference,
                "cond_factor": cfg.cond_factor,
                "probe_interval": cfg.probe_interval,
            },
            "reference_residual": self.reference_residual,
            "reference_cond": self.reference_cond,
            "suspicious_run": self._suspicious_run,
            "batches_seen": self._batches_seen,
            "events": [
                {
                    "kind": e.kind,
                    "observed": e.observed,
                    "reference": e.reference,
                    "batch_index": e.batch_index,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "DriftDetector":
        """Rebuild a detector mid-stream from :meth:`state_dict` output."""
        detector = cls(DriftDetectorConfig(**state["config"]))
        ref = state.get("reference_residual")
        detector.reference_residual = None if ref is None else float(ref)
        cond = state.get("reference_cond")
        detector.reference_cond = None if cond is None else float(cond)
        detector._suspicious_run = int(state["suspicious_run"])
        detector._batches_seen = int(state["batches_seen"])
        detector.events = [
            DriftEvent(
                kind=str(e["kind"]),
                observed=float(e["observed"]),
                reference=float(e["reference"]),
                batch_index=int(e["batch_index"]),
            )
            for e in state.get("events", [])
        ]
        return detector
