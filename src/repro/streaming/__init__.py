"""Online sketch-and-solve: sliding windows, drift detection, lazy re-solves.

The batch layers (PR 1 serving, PR 2 registry/planner) assume the
coefficient matrix arrives whole; this package is the streaming vertical:
rows arrive over time, the engine keeps only a fixed-size hashed-CountSketch
summary of the current window, and solutions are re-derived lazily through
the planner so every re-solve still routes to the cheapest admissible
solver with fallback chains.

* :class:`~repro.streaming.solver.StreamingSolver` -- the engine: ingest
  ``(rows, targets)`` batches, query solutions lazily.
* :mod:`repro.streaming.state` -- window maintenance (landmark /
  sliding-window ring of sub-sketches / exponential decay), built on the
  :class:`~repro.core.countsketch.StreamingCountSketch` merge/scale hooks.
* :class:`~repro.streaming.drift.DriftDetector` -- sketched
  residual-energy tracking plus periodic condition probes; firings trigger
  window resets and eager re-solves.

Serving integration lives in :mod:`repro.serving.streaming`
(``SketchServer.open_stream`` / ``append_rows`` / ``query_solution`` /
``close_stream``); the matching workload generators are
:func:`repro.workloads.streams.piecewise_stationary_stream` and
:func:`repro.workloads.streams.drifting_stream`.

Quick start::

    from repro.streaming import StreamingSolver

    engine = StreamingSolver(n=16, mode="sliding", window_buckets=4)
    for rows, targets in stream:          # batches of (batch, 16) rows
        engine.ingest(rows, targets)
    sol = engine.solution()               # lazy re-solve through the planner
    print(sol.executed_solver, sol.relative_residual, sol.staleness_rows)
"""

from repro.streaming.drift import DriftDetector, DriftDetectorConfig, DriftEvent
from repro.streaming.solver import IngestReport, StreamingSolution, StreamingSolver
from repro.streaming.state import (
    DecayState,
    LandmarkState,
    MODES,
    SlidingWindowState,
    STREAM_CAPACITY,
    make_state,
    normalize_mode,
)

__all__ = [
    "DriftDetector",
    "DriftDetectorConfig",
    "DriftEvent",
    "IngestReport",
    "StreamingSolution",
    "StreamingSolver",
    "DecayState",
    "LandmarkState",
    "MODES",
    "SlidingWindowState",
    "STREAM_CAPACITY",
    "make_state",
    "normalize_mode",
]
