"""Incremental sketch state: landmark, sliding-window, and decay variants.

The streaming engine never stores the stream -- it maintains the joint
sketch ``S [A | b]`` (one hashed CountSketch over features and targets
together, so row alignment is automatic) and exposes it as a ``k x (n+1)``
array on demand.  Three maintenance policies are provided, all built on the
:class:`~repro.core.countsketch.StreamingCountSketch` merge/scale hooks:

* :class:`LandmarkState` -- one accumulator from the last reset onwards (the
  "landmark window" of the streaming literature).  Cheapest; the drift
  detector's window reset is what keeps it fresh.
* :class:`SlidingWindowState` -- a ring of sub-sketches, each covering
  ``bucket_rows`` stream rows; the window is the newest ``window_buckets``
  buckets, merged on demand (sketch linearity).  Per-batch update cost is
  ``O(batch * n)`` regardless of how many rows the stream has seen; the
  merge at query time is ``O(window_buckets * k * n)``.
* :class:`DecayState` -- exponential forgetting: the accumulator is scaled
  by ``decay ** batch_rows`` before each new batch is folded in, so history
  fades at a per-row rate without any ring bookkeeping.
* :class:`FrequentDirectionsState` -- a *spectral* window summary: rows run
  through a :class:`~repro.problems.lowrank.FrequentDirections` accumulator
  instead of a hashed CountSketch.  The summary is deterministic, ``k``
  rows tall (zero-padded), and near-optimal for low-rank structure; it
  costs an SVD per ``k/2`` ingested rows, so it trades ingest arithmetic
  for summary quality.  This is the low-rank problem class's window
  alternative (``mode="fd"``).

Rows are identified by their *global stream index* (a monotonically growing
counter), which is what makes merging sound: the hashed row map is a pure
function of that index, and distinct indices never collide as "the same
row", so the sum of two sub-sketch accumulators is exactly the sketch of the
union of their rows.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.countsketch import StreamingCountSketch
from repro.gpu.executor import GPUExecutor

#: Nominal input dimension of the streaming sketches: an upper bound on the
#: global row counter, far beyond any simulated stream (the hash-based sketch
#: stores nothing of size ``d``, so the bound is free).
STREAM_CAPACITY = 1 << 48

#: Window maintenance modes accepted by the engine.
MODES = ("landmark", "sliding", "decay", "fd")


def normalize_mode(mode: str) -> str:
    """Canonical window-mode name, or ``ValueError`` for unknown modes."""
    m = mode.lower()
    if m in ("frequent_directions", "frequent-directions"):
        m = "fd"
    if m in MODES:
        return m
    raise ValueError(f"mode must be one of {MODES}, got '{mode}'")


class _BaseState:
    """Shared plumbing: global row counter, version stamps, sketch factory."""

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
    ) -> None:
        if n_cols <= 0 or k <= 0:
            raise ValueError("n_cols and k must be positive")
        self.n_cols = int(n_cols)
        self.k = int(k)
        self.seed = int(seed)
        self.executor = executor
        #: Bumps on every fold and reset; the solver's lazy re-solve caches
        #: against it.
        self.version = 0
        self._next_index = 0
        self.rows_total = 0

    def _new_sketch(self) -> StreamingCountSketch:
        sketch = StreamingCountSketch(
            STREAM_CAPACITY, self.k, executor=self.executor, seed=self.seed
        )
        sketch.generate()
        sketch.begin(self.n_cols)
        return sketch

    def _take_indices(self, batch: int) -> np.ndarray:
        idx = np.arange(self._next_index, self._next_index + batch, dtype=np.int64)
        self._next_index += batch
        self.rows_total += batch
        self.version += 1
        return idx

    # -- interface -----------------------------------------------------
    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        """Consume one ``(batch, n_cols)`` block (``None`` in analytic mode)."""
        raise NotImplementedError

    def current(self) -> Optional[np.ndarray]:
        """Host copy of the window's merged ``k x n_cols`` sketch."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget the window (the drift detector's hard response)."""
        raise NotImplementedError

    def rows_in_window(self) -> int:
        """Stream rows the current window covers."""
        raise NotImplementedError

    @property
    def operator(self) -> Optional[StreamingCountSketch]:
        """A live window sketch (the serving layer pins it in its cache).

        All of a state's sub-sketches share one hashed identity
        (``cache_key()`` is a pure function of ``(d, k, seed, dtype)``), so
        any live one stands for the session's operator.  States with no
        sketch-operator state at all (:class:`FrequentDirectionsState` is
        deterministic) return ``None`` and the serving layer simply skips
        the cache pin.
        """
        raise NotImplementedError


class LandmarkState(_BaseState):
    """One accumulator from the last reset onwards."""

    mode = "landmark"

    def __init__(self, n_cols: int, k: int, *, executor: GPUExecutor, seed: int = 0) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        self._sketch = self._new_sketch()
        self._window_rows = 0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        self._sketch.update(idx, block)
        self._window_rows += batch

    def current(self) -> Optional[np.ndarray]:
        return self._sketch.snapshot()

    def reset(self) -> None:
        self._sketch.result().free()  # close the pass, release the accumulator
        self._sketch = self._new_sketch()
        self._window_rows = 0
        self.version += 1

    def rows_in_window(self) -> int:
        return self._window_rows

    @property
    def operator(self) -> StreamingCountSketch:
        return self._sketch


class SlidingWindowState(_BaseState):
    """Ring of sub-sketches covering the newest ``window_buckets * bucket_rows`` rows."""

    mode = "sliding"

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
        bucket_rows: int = 1024,
        window_buckets: int = 4,
    ) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if bucket_rows <= 0 or window_buckets <= 0:
            raise ValueError("bucket_rows and window_buckets must be positive")
        self.bucket_rows = int(bucket_rows)
        self.window_buckets = int(window_buckets)
        self._ring: List[StreamingCountSketch] = [self._new_sketch()]

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        offset = 0
        while offset < batch:
            head = self._ring[-1]
            room = self.bucket_rows - head.rows_seen
            if room == 0:
                self._ring.append(self._new_sketch())
                if len(self._ring) > self.window_buckets:
                    # The oldest bucket leaves the window: close its pass and
                    # release its accumulator (state stays fixed-size).
                    self._ring.pop(0).result().free()
                continue
            take = min(room, batch - offset)
            chunk = block[offset : offset + take] if block is not None else None
            head.update(idx[offset : offset + take], chunk)
            offset += take

    def current(self) -> Optional[np.ndarray]:
        # Merge the ring into a scratch pass (linearity); each bucket stays
        # open so the window keeps sliding afterwards.
        scratch = self._new_sketch()
        for bucket in self._ring:
            scratch.merge_from(bucket)
        out = scratch.result()
        host = out.to_host() if out.is_numeric else None
        out.free()
        return host

    def reset(self) -> None:
        for bucket in self._ring:
            bucket.result().free()
        self._ring = [self._new_sketch()]
        self.version += 1

    def rows_in_window(self) -> int:
        return sum(b.rows_seen for b in self._ring)

    @property
    def operator(self) -> StreamingCountSketch:
        return self._ring[-1]


class DecayState(_BaseState):
    """Exponentially decayed accumulator: scale by ``decay ** batch`` then fold."""

    mode = "decay"

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
        decay: float = 0.999,
    ) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self.decay = float(decay)
        self._sketch = self._new_sketch()
        self._effective_rows = 0.0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        if self.decay < 1.0:
            factor = self.decay**batch
            self._sketch.scale(factor)
            self._effective_rows *= factor
        self._sketch.update(idx, block)
        self._effective_rows += batch

    def current(self) -> Optional[np.ndarray]:
        return self._sketch.snapshot()

    def reset(self) -> None:
        self._sketch.result().free()
        self._sketch = self._new_sketch()
        self._effective_rows = 0.0
        self.version += 1

    def rows_in_window(self) -> int:
        # Effective sample size of the decayed history (rows at weight ~1).
        return int(round(self._effective_rows))

    @property
    def operator(self) -> StreamingCountSketch:
        return self._sketch


class FrequentDirectionsState(_BaseState):
    """Spectral window summary: Frequent Directions instead of a hashed sketch.

    The summary is the FD buffer of :class:`~repro.problems.lowrank.FrequentDirections`
    at ``ell = k // 2`` (so the buffer is exactly ``k`` rows tall),
    zero-padded to the engine's fixed ``k x n_cols`` window shape --
    padding rows are all-zero and change neither the singular values nor
    any least-squares solution computed from the summary.  Unlike the
    hashed CountSketch states this summary is *deterministic* and carries
    no operator state, so :attr:`operator` is ``None`` and the serving
    layer skips the session cache pin.

    Resets behave like :class:`LandmarkState` (the summary restarts
    empty); there is no sliding/decay variant because FD's shrink step is
    itself a principled forgetting mechanism for small directions.
    """

    mode = "fd"

    def __init__(self, n_cols: int, k: int, *, executor: GPUExecutor, seed: int = 0) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if k < 2:
            raise ValueError("fd mode needs k >= 2 (the buffer holds 2*ell = k rows)")
        from repro.problems.lowrank import FrequentDirections  # local: no import cycle

        self._fd_cls = FrequentDirections
        self._fd = FrequentDirections(n_cols, k // 2, executor=executor)
        self._window_rows = 0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        self._take_indices(batch)
        if block is not None:
            self._fd.update(block)
        self._window_rows += batch

    def current(self) -> Optional[np.ndarray]:
        if not self.executor.numeric:
            return None  # analytic traffic carries no numeric summary
        out = np.zeros((self.k, self.n_cols))
        sketch = self._fd.sketch()
        out[: sketch.shape[0]] = sketch
        return out

    def reset(self) -> None:
        self._fd = self._fd_cls(self.n_cols, self.k // 2, executor=self.executor)
        self._window_rows = 0
        self.version += 1

    def rows_in_window(self) -> int:
        return self._window_rows

    @property
    def operator(self) -> Optional[StreamingCountSketch]:
        return None  # deterministic summary: nothing to pin or replicate

    @property
    def frequent_directions(self):
        """The live :class:`~repro.problems.lowrank.FrequentDirections` accumulator."""
        return self._fd


def make_state(
    mode: str,
    n_cols: int,
    k: int,
    *,
    executor: GPUExecutor,
    seed: int = 0,
    bucket_rows: int = 1024,
    window_buckets: int = 4,
    decay: float = 0.999,
) -> _BaseState:
    """Build the window state a :class:`~repro.streaming.solver.StreamingSolver` asked for."""
    mode = normalize_mode(mode)
    if mode == "landmark":
        return LandmarkState(n_cols, k, executor=executor, seed=seed)
    if mode == "sliding":
        return SlidingWindowState(
            n_cols,
            k,
            executor=executor,
            seed=seed,
            bucket_rows=bucket_rows,
            window_buckets=window_buckets,
        )
    if mode == "fd":
        return FrequentDirectionsState(n_cols, k, executor=executor, seed=seed)
    return DecayState(n_cols, k, executor=executor, seed=seed, decay=decay)
