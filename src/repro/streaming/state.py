"""Incremental sketch state: landmark, sliding-window, and decay variants.

The streaming engine never stores the stream -- it maintains the joint
sketch ``S [A | b]`` (one hashed CountSketch over features and targets
together, so row alignment is automatic) and exposes it as a ``k x (n+1)``
array on demand.  Three maintenance policies are provided, all built on the
:class:`~repro.core.countsketch.StreamingCountSketch` merge/scale hooks:

* :class:`LandmarkState` -- one accumulator from the last reset onwards (the
  "landmark window" of the streaming literature).  Cheapest; the drift
  detector's window reset is what keeps it fresh.
* :class:`SlidingWindowState` -- a ring of sub-sketches, each covering
  ``bucket_rows`` stream rows; the window is the newest ``window_buckets``
  buckets, merged on demand (sketch linearity).  Per-batch update cost is
  ``O(batch * n)`` regardless of how many rows the stream has seen; the
  merge at query time is ``O(window_buckets * k * n)``.
* :class:`DecayState` -- exponential forgetting: the accumulator is scaled
  by ``decay ** batch_rows`` before each new batch is folded in, so history
  fades at a per-row rate without any ring bookkeeping.
* :class:`FrequentDirectionsState` -- a *spectral* window summary: rows run
  through a :class:`~repro.problems.lowrank.FrequentDirections` accumulator
  instead of a hashed CountSketch.  The summary is deterministic, ``k``
  rows tall (zero-padded), and near-optimal for low-rank structure; it
  costs an SVD per ``k/2`` ingested rows, so it trades ingest arithmetic
  for summary quality.  This is the low-rank problem class's window
  alternative (``mode="fd"``).

Rows are identified by their *global stream index* (a monotonically growing
counter), which is what makes merging sound: the hashed row map is a pure
function of that index, and distinct indices never collide as "the same
row", so the sum of two sub-sketch accumulators is exactly the sketch of the
union of their rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.countsketch import StreamingCountSketch
from repro.gpu.executor import GPUExecutor

#: Nominal input dimension of the streaming sketches: an upper bound on the
#: global row counter, far beyond any simulated stream (the hash-based sketch
#: stores nothing of size ``d``, so the bound is free).
STREAM_CAPACITY = 1 << 48

#: Window maintenance modes accepted by the engine.
MODES = ("landmark", "sliding", "decay", "fd")


def normalize_mode(mode: str) -> str:
    """Canonical window-mode name, or ``ValueError`` for unknown modes."""
    m = mode.lower()
    if m in ("frequent_directions", "frequent-directions"):
        m = "fd"
    if m in MODES:
        return m
    raise ValueError(f"mode must be one of {MODES}, got '{mode}'")


class _BaseState:
    """Shared plumbing: global row counter, version stamps, sketch factory."""

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
    ) -> None:
        if n_cols <= 0 or k <= 0:
            raise ValueError("n_cols and k must be positive")
        self.n_cols = int(n_cols)
        self.k = int(k)
        self.seed = int(seed)
        self.executor = executor
        #: Bumps on every fold and reset; the solver's lazy re-solve caches
        #: against it.
        self.version = 0
        self._next_index = 0
        self.rows_total = 0

    def _new_sketch(self) -> StreamingCountSketch:
        sketch = StreamingCountSketch(
            STREAM_CAPACITY, self.k, executor=self.executor, seed=self.seed
        )
        sketch.generate()
        sketch.begin(self.n_cols)
        return sketch

    def _take_indices(self, batch: int) -> np.ndarray:
        idx = np.arange(self._next_index, self._next_index + batch, dtype=np.int64)
        self._next_index += batch
        self.rows_total += batch
        self.version += 1
        return idx

    # -- interface -----------------------------------------------------
    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        """Consume one ``(batch, n_cols)`` block (``None`` in analytic mode)."""
        raise NotImplementedError

    def current(self) -> Optional[np.ndarray]:
        """Host copy of the window's merged ``k x n_cols`` sketch."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget the window (the drift detector's hard response)."""
        raise NotImplementedError

    def rows_in_window(self) -> int:
        """Stream rows the current window covers."""
        raise NotImplementedError

    @property
    def operator(self) -> Optional[StreamingCountSketch]:
        """A live window sketch (the serving layer pins it in its cache).

        All of a state's sub-sketches share one hashed identity
        (``cache_key()`` is a pure function of ``(d, k, seed, dtype)``), so
        any live one stands for the session's operator.  States with no
        sketch-operator state at all (:class:`FrequentDirectionsState` is
        deterministic) return ``None`` and the serving layer simply skips
        the cache pin.
        """
        raise NotImplementedError

    # -- durable state --------------------------------------------------
    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """JSON-able metadata plus named arrays capturing the whole window.

        The split mirrors the durable record format
        (:func:`repro.durability.codec.encode_record`): scalars and
        structure in ``meta``, bulk accumulators as named arrays.
        """
        raise NotImplementedError

    def load_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        """Restore a freshly-constructed state from :meth:`state_dict` output."""
        raise NotImplementedError

    def _base_meta(self) -> dict:
        return {
            "mode": self.mode,
            "n_cols": self.n_cols,
            "k": self.k,
            "seed": self.seed,
            "version": self.version,
            "next_index": self._next_index,
            "rows_total": self.rows_total,
        }

    def _load_base(self, meta: dict) -> None:
        for name, have in (("mode", self.mode), ("n_cols", self.n_cols), ("k", self.k), ("seed", self.seed)):
            if meta.get(name) != have:
                raise ValueError(
                    f"window-state {name} mismatch: snapshot has {meta.get(name)!r}, "
                    f"this state was built with {have!r}"
                )
        # Restoring the global row counter exactly is what makes recovery
        # deterministic: replayed rows hash to the same identities they had
        # in the crashed process.
        self.version = int(meta["version"])
        self._next_index = int(meta["next_index"])
        self.rows_total = int(meta["rows_total"])

    def _sketch_state(self, sketch: StreamingCountSketch) -> Tuple[dict, Optional[np.ndarray]]:
        state = sketch.state_dict()
        return (
            {"rows_seen": state["rows_seen"], "n_cols": state["n_cols"], "numeric": state["numeric"]},
            state["accumulator"],
        )

    def _restore_sketch(self, meta: dict, acc: Optional[np.ndarray]) -> StreamingCountSketch:
        sketch = StreamingCountSketch(
            STREAM_CAPACITY, self.k, executor=self.executor, seed=self.seed
        )
        sketch.load_state({**meta, "accumulator": acc})
        return sketch


class LandmarkState(_BaseState):
    """One accumulator from the last reset onwards."""

    mode = "landmark"

    def __init__(self, n_cols: int, k: int, *, executor: GPUExecutor, seed: int = 0) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        self._sketch = self._new_sketch()
        self._window_rows = 0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        self._sketch.update(idx, block)
        self._window_rows += batch

    def current(self) -> Optional[np.ndarray]:
        return self._sketch.snapshot()

    def reset(self) -> None:
        self._sketch.result().free()  # close the pass, release the accumulator
        self._sketch = self._new_sketch()
        self._window_rows = 0
        self.version += 1

    def rows_in_window(self) -> int:
        return self._window_rows

    @property
    def operator(self) -> StreamingCountSketch:
        return self._sketch

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        sketch_meta, acc = self._sketch_state(self._sketch)
        meta = self._base_meta()
        meta["window_rows"] = self._window_rows
        meta["sketch"] = sketch_meta
        arrays = {} if acc is None else {"acc": acc}
        return meta, arrays

    def load_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        self._load_base(meta)
        self._sketch.result().free()
        self._sketch = self._restore_sketch(meta["sketch"], arrays.get("acc"))
        self._window_rows = int(meta["window_rows"])


class SlidingWindowState(_BaseState):
    """Ring of sub-sketches covering the newest ``window_buckets * bucket_rows`` rows."""

    mode = "sliding"

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
        bucket_rows: int = 1024,
        window_buckets: int = 4,
    ) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if bucket_rows <= 0 or window_buckets <= 0:
            raise ValueError("bucket_rows and window_buckets must be positive")
        self.bucket_rows = int(bucket_rows)
        self.window_buckets = int(window_buckets)
        self._ring: List[StreamingCountSketch] = [self._new_sketch()]

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        offset = 0
        while offset < batch:
            head = self._ring[-1]
            room = self.bucket_rows - head.rows_seen
            if room == 0:
                self._ring.append(self._new_sketch())
                if len(self._ring) > self.window_buckets:
                    # The oldest bucket leaves the window: close its pass and
                    # release its accumulator (state stays fixed-size).
                    self._ring.pop(0).result().free()
                continue
            take = min(room, batch - offset)
            chunk = block[offset : offset + take] if block is not None else None
            head.update(idx[offset : offset + take], chunk)
            offset += take

    def current(self) -> Optional[np.ndarray]:
        # Merge the ring into a scratch pass (linearity); each bucket stays
        # open so the window keeps sliding afterwards.
        scratch = self._new_sketch()
        for bucket in self._ring:
            scratch.merge_from(bucket)
        out = scratch.result()
        host = out.to_host() if out.is_numeric else None
        out.free()
        return host

    def reset(self) -> None:
        for bucket in self._ring:
            bucket.result().free()
        self._ring = [self._new_sketch()]
        self.version += 1

    def rows_in_window(self) -> int:
        return sum(b.rows_seen for b in self._ring)

    @property
    def operator(self) -> StreamingCountSketch:
        return self._ring[-1]

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        meta = self._base_meta()
        meta["bucket_rows"] = self.bucket_rows
        meta["window_buckets"] = self.window_buckets
        buckets = []
        arrays: Dict[str, np.ndarray] = {}
        for i, bucket in enumerate(self._ring):
            bucket_meta, acc = self._sketch_state(bucket)
            buckets.append(bucket_meta)
            if acc is not None:
                arrays[f"bucket_{i}"] = acc
        meta["buckets"] = buckets
        return meta, arrays

    def load_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        self._load_base(meta)
        for name, have in (("bucket_rows", self.bucket_rows), ("window_buckets", self.window_buckets)):
            if int(meta[name]) != have:
                raise ValueError(
                    f"sliding-window {name} mismatch: snapshot has {meta[name]}, "
                    f"this state was built with {have}"
                )
        for bucket in self._ring:
            bucket.result().free()
        self._ring = [
            self._restore_sketch(bucket_meta, arrays.get(f"bucket_{i}"))
            for i, bucket_meta in enumerate(meta["buckets"])
        ]
        if not self._ring:
            self._ring = [self._new_sketch()]


class DecayState(_BaseState):
    """Exponentially decayed accumulator: scale by ``decay ** batch`` then fold."""

    mode = "decay"

    def __init__(
        self,
        n_cols: int,
        k: int,
        *,
        executor: GPUExecutor,
        seed: int = 0,
        decay: float = 0.999,
    ) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self.decay = float(decay)
        self._sketch = self._new_sketch()
        self._effective_rows = 0.0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        idx = self._take_indices(batch)
        if self.decay < 1.0:
            factor = self.decay**batch
            self._sketch.scale(factor)
            self._effective_rows *= factor
        self._sketch.update(idx, block)
        self._effective_rows += batch

    def current(self) -> Optional[np.ndarray]:
        return self._sketch.snapshot()

    def reset(self) -> None:
        self._sketch.result().free()
        self._sketch = self._new_sketch()
        self._effective_rows = 0.0
        self.version += 1

    def rows_in_window(self) -> int:
        # Effective sample size of the decayed history (rows at weight ~1).
        return int(round(self._effective_rows))

    @property
    def operator(self) -> StreamingCountSketch:
        return self._sketch

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        sketch_meta, acc = self._sketch_state(self._sketch)
        meta = self._base_meta()
        meta["decay"] = self.decay
        meta["effective_rows"] = self._effective_rows
        meta["sketch"] = sketch_meta
        arrays = {} if acc is None else {"acc": acc}
        return meta, arrays

    def load_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        self._load_base(meta)
        if float(meta["decay"]) != self.decay:
            raise ValueError(
                f"decay mismatch: snapshot has {meta['decay']}, "
                f"this state was built with {self.decay}"
            )
        self._sketch.result().free()
        self._sketch = self._restore_sketch(meta["sketch"], arrays.get("acc"))
        self._effective_rows = float(meta["effective_rows"])


class FrequentDirectionsState(_BaseState):
    """Spectral window summary: Frequent Directions instead of a hashed sketch.

    The summary is the FD buffer of :class:`~repro.problems.lowrank.FrequentDirections`
    at ``ell = k // 2`` (so the buffer is exactly ``k`` rows tall),
    zero-padded to the engine's fixed ``k x n_cols`` window shape --
    padding rows are all-zero and change neither the singular values nor
    any least-squares solution computed from the summary.  Unlike the
    hashed CountSketch states this summary is *deterministic* and carries
    no operator state, so :attr:`operator` is ``None`` and the serving
    layer skips the session cache pin.

    Resets behave like :class:`LandmarkState` (the summary restarts
    empty); there is no sliding/decay variant because FD's shrink step is
    itself a principled forgetting mechanism for small directions.
    """

    mode = "fd"

    def __init__(self, n_cols: int, k: int, *, executor: GPUExecutor, seed: int = 0) -> None:
        super().__init__(n_cols, k, executor=executor, seed=seed)
        if k < 2:
            raise ValueError("fd mode needs k >= 2 (the buffer holds 2*ell = k rows)")
        from repro.problems.lowrank import FrequentDirections  # local: no import cycle

        self._fd_cls = FrequentDirections
        self._fd = FrequentDirections(n_cols, k // 2, executor=executor)
        self._window_rows = 0

    def fold(self, block: Optional[np.ndarray], batch: int) -> None:
        self._take_indices(batch)
        if block is not None:
            self._fd.update(block)
        self._window_rows += batch

    def current(self) -> Optional[np.ndarray]:
        if not self.executor.numeric:
            return None  # analytic traffic carries no numeric summary
        out = np.zeros((self.k, self.n_cols))
        sketch = self._fd.sketch()
        out[: sketch.shape[0]] = sketch
        return out

    def reset(self) -> None:
        self._fd = self._fd_cls(self.n_cols, self.k // 2, executor=self.executor)
        self._window_rows = 0
        self.version += 1

    def rows_in_window(self) -> int:
        return self._window_rows

    @property
    def operator(self) -> Optional[StreamingCountSketch]:
        return None  # deterministic summary: nothing to pin or replicate

    @property
    def frequent_directions(self):
        """The live :class:`~repro.problems.lowrank.FrequentDirections` accumulator."""
        return self._fd

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        fd_state = self._fd.state_dict()
        buffer = fd_state.pop("buffer")
        meta = self._base_meta()
        meta["window_rows"] = self._window_rows
        meta["fd"] = fd_state
        return meta, {"fd_buffer": buffer}

    def load_state(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        self._load_base(meta)
        self._fd = self._fd_cls(self.n_cols, self.k // 2, executor=self.executor)
        self._fd.load_state({**meta["fd"], "buffer": arrays["fd_buffer"]})
        self._window_rows = int(meta["window_rows"])


def make_state(
    mode: str,
    n_cols: int,
    k: int,
    *,
    executor: GPUExecutor,
    seed: int = 0,
    bucket_rows: int = 1024,
    window_buckets: int = 4,
    decay: float = 0.999,
) -> _BaseState:
    """Build the window state a :class:`~repro.streaming.solver.StreamingSolver` asked for."""
    mode = normalize_mode(mode)
    if mode == "landmark":
        return LandmarkState(n_cols, k, executor=executor, seed=seed)
    if mode == "sliding":
        return SlidingWindowState(
            n_cols,
            k,
            executor=executor,
            seed=seed,
            bucket_rows=bucket_rows,
            window_buckets=window_buckets,
        )
    if mode == "fd":
        return FrequentDirectionsState(n_cols, k, executor=executor, seed=seed)
    return DecayState(n_cols, k, executor=executor, seed=seed, decay=decay)
