"""Declarative SLOs with rolling compliance and multi-window burn-rate alerts.

The serving stack already emits everything an SLO needs -- request/failure
counters, per-lane latency histograms, shed counters, streaming staleness --
into the bounded :class:`~repro.obs.metrics.MetricsRegistry`.  This module
adds the judgement layer on top:

* :class:`SLOConfig` declares one objective ("99.5% of requests succeed",
  "95% of interactive-lane requests finish under 2 ms of simulated time")
  together with the windows and burn threshold used to alert on it.
* :class:`SLOEngine` is *polled*: each :meth:`SLOEngine.evaluate` call reads
  the registry, computes the bad-event fraction of every SLO over a fast and
  a slow rolling window, converts them to **burn rates** (bad fraction
  divided by the error budget ``1 - objective``), and applies the classic
  Google-SRE multi-window rule -- an alert fires only when *both* windows
  burn above the threshold (the fast window gives reaction speed, the slow
  window keeps one bad blip from paging), and it clears as soon as the fast
  window recovers.

Counter-backed SLOs (availability, shed-rate) are windowed over *evaluation
intervals*: the engine snapshots the cumulative counters at every call and
keeps a bounded ring of per-interval deltas, so the windows are "last N
evaluations" regardless of absolute counter magnitude.  Histogram-backed
SLOs (latency, staleness) are windowed over the most recent samples of the
backing ring buffer.  Everything the engine decides is also exported back
into the registry as ``slo_*`` gauges, and every state transition is
returned (and retained) as a structured alert event dict.

All quantities are simulated-clock; the engine never reads a wall clock.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["SLOConfig", "SLOEngine", "SLOStatus", "default_serving_slos"]

#: Supported objective kinds and the registry series each one reads.
SLO_KINDS = ("availability", "latency", "shed_rate", "staleness")


@dataclass(frozen=True)
class SLOConfig:
    """One service-level objective plus its alerting policy.

    Parameters
    ----------
    name:
        Unique handle, used in alert events and ``slo_*`` gauge labels.
    kind:
        One of :data:`SLO_KINDS`:

        * ``availability`` -- good = completed request, bad = failed request
          (``serving_failed_requests_total`` over ``serving_requests_total``).
        * ``latency`` -- good = sample of ``runtime_lane_latency_seconds``
          for ``lane`` at or under ``threshold`` simulated seconds.
        * ``shed_rate`` -- good = admitted request, bad = shed request
          (``runtime_requests_shed_total`` over admitted + shed).
        * ``staleness`` -- good = ``stream_staleness_rows`` sample at or
          under ``threshold`` rows.
    objective:
        Target good fraction in ``(0, 1)``; the error budget is
        ``1 - objective``.
    threshold:
        Sample cutoff for ``latency`` (seconds) / ``staleness`` (rows);
        ignored by the counter-backed kinds.
    lane:
        Lane label for ``latency`` SLOs.
    fast_window / slow_window:
        Rolling window sizes -- evaluation intervals for counter-backed
        kinds, histogram samples for sample-backed kinds.  The slow window
        must be at least as long as the fast one.
    burn_threshold:
        Burn rate (multiple of the error budget) both windows must exceed
        for the alert to fire; 1.0 means "burning budget exactly at the
        sustainable rate".
    """

    name: str
    kind: str
    objective: float
    threshold: float = 0.0
    lane: Optional[str] = None
    fast_window: int = 4
    slow_window: int = 16
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == "latency" and self.lane is None:
            raise ValueError("latency SLOs need a lane")
        if self.kind in ("latency", "staleness") and self.threshold <= 0.0:
            raise ValueError(f"{self.kind} SLOs need a positive threshold")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ValueError("need 1 <= fast_window <= slow_window")
        if self.burn_threshold <= 0.0:
            raise ValueError("burn_threshold must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass
class SLOStatus:
    """Point-in-time evaluation of one SLO (one row of a report)."""

    name: str
    kind: str
    objective: float
    compliance: float
    fast_burn: float
    slow_burn: float
    alerting: bool
    samples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "compliance": self.compliance,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "alerting": self.alerting,
            "samples": self.samples,
        }


def default_serving_slos(
    *,
    latency_budget_seconds: float = 2e-3,
    staleness_rows: float = 2048.0,
    lanes: Tuple[str, ...] = ("solve", "ridge"),
) -> List[SLOConfig]:
    """The stock SLO set the demo/health CLI paths install."""
    slos = [
        SLOConfig(name="availability", kind="availability", objective=0.995),
        SLOConfig(name="shed_rate", kind="shed_rate", objective=0.99),
        SLOConfig(
            name="stream_staleness",
            kind="staleness",
            objective=0.95,
            threshold=staleness_rows,
        ),
    ]
    for lane in lanes:
        slos.append(
            SLOConfig(
                name=f"latency_p95_{lane}",
                kind="latency",
                objective=0.95,
                threshold=latency_budget_seconds,
                lane=lane,
            )
        )
    return slos


class _CounterWindow:
    """Bounded ring of per-evaluation-interval (bad, total) deltas."""

    def __init__(self, capacity: int) -> None:
        self.deltas: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self._last_bad = 0.0
        self._last_total = 0.0
        self._primed = False

    def push_cumulative(self, bad: float, total: float) -> None:
        if self._primed:
            # Counters are monotone except across registry.reset(); clamp so
            # a reset shows up as an empty interval, not a negative one.
            self.deltas.append(
                (max(0.0, bad - self._last_bad), max(0.0, total - self._last_total))
            )
        self._primed = True
        self._last_bad = bad
        self._last_total = total

    def bad_fraction(self, window: int) -> Tuple[float, int]:
        recent = list(self.deltas)[-window:]
        bad = sum(b for b, _ in recent)
        total = sum(t for _, t in recent)
        if total <= 0.0:
            return 0.0, 0
        return bad / total, int(total)


class SLOEngine:
    """Rolling SLO compliance + multi-window burn-rate alerting.

    Poll :meth:`evaluate` at whatever cadence suits the caller (the serving
    demo evaluates once per drained phase; a real deployment would tick on
    a timer).  Each call returns the alert events that *transitioned* on
    that call -- ``{"slo", "state": "firing"|"resolved", "at", "fast_burn",
    "slow_burn", "compliance"}`` -- and the full event history is retained
    in :attr:`alerts` (bounded).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: List[SLOConfig],
        *,
        history: int = 256,
    ) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self.registry = registry
        self.slos = list(slos)
        self.alerts: Deque[Dict[str, object]] = deque(maxlen=history)
        self._lock = threading.Lock()
        self._active: Dict[str, bool] = {s.name: False for s in self.slos}
        self._windows: Dict[str, _CounterWindow] = {
            s.name: _CounterWindow(max(s.slow_window, 1))
            for s in self.slos
            if s.kind in ("availability", "shed_rate")
        }
        self._evaluations = 0

    # ------------------------------------------------------------------
    # signal extraction
    # ------------------------------------------------------------------
    def _counter_value(self, name: str, **labels: str) -> float:
        metric = self.registry.get(name, **labels)
        return float(metric.value) if metric is not None else 0.0

    def _sample_bad_fraction(
        self, slo: SLOConfig, window: int
    ) -> Tuple[float, int]:
        if slo.kind == "latency":
            hist = self.registry.get("runtime_lane_latency_seconds", lane=str(slo.lane))
        else:
            hist = self.registry.get("stream_staleness_rows")
        if hist is None or hist.count == 0:
            return 0.0, 0
        tail = hist.values()[-window:]
        if len(tail) == 0:
            return 0.0, 0
        bad = float((tail > slo.threshold).sum())
        return bad / len(tail), int(len(tail))

    def _bad_fractions(self, slo: SLOConfig) -> Tuple[float, float, int]:
        """(fast bad fraction, slow bad fraction, slow-window sample count)."""
        if slo.kind in ("availability", "shed_rate"):
            window = self._windows[slo.name]
            if slo.kind == "availability":
                bad = self._counter_value("serving_failed_requests_total")
                total = self._counter_value("serving_requests_total")
            else:
                bad = self._counter_value("runtime_requests_shed_total")
                total = bad + self._counter_value("runtime_requests_admitted_total")
            window.push_cumulative(bad, total)
            fast, _ = window.bad_fraction(slo.fast_window)
            slow, samples = window.bad_fraction(slo.slow_window)
            return fast, slow, samples
        fast, _ = self._sample_bad_fraction(slo, slo.fast_window)
        slow, samples = self._sample_bad_fraction(slo, slo.slow_window)
        return fast, slow, samples

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, at: Optional[float] = None) -> List[Dict[str, object]]:
        """Advance every SLO one evaluation interval; return new transitions.

        ``at`` is an optional simulated timestamp stamped onto alert
        events (defaults to the evaluation ordinal so events are still
        ordered when the caller has no clock to offer).
        """
        events: List[Dict[str, object]] = []
        with self._lock:
            self._evaluations += 1
            when = float(at) if at is not None else float(self._evaluations)
            for slo in self.slos:
                fast_frac, slow_frac, samples = self._bad_fractions(slo)
                budget = slo.error_budget
                fast_burn = fast_frac / budget
                slow_burn = slow_frac / budget
                compliance = 1.0 - slow_frac
                was_active = self._active[slo.name]
                if not was_active:
                    # SRE multi-window rule: both windows must burn hot.
                    active = (
                        fast_burn > slo.burn_threshold and slow_burn > slo.burn_threshold
                    )
                else:
                    # Clear as soon as the fast window recovers.
                    active = fast_burn > slo.burn_threshold
                labels = {"slo": slo.name}
                self.registry.gauge("slo_burn_rate_fast", **labels).set(fast_burn)
                self.registry.gauge("slo_burn_rate_slow", **labels).set(slow_burn)
                self.registry.gauge("slo_compliance", **labels).set(compliance)
                self.registry.gauge("slo_alert_active", **labels).set(1.0 if active else 0.0)
                if active != was_active:
                    event = {
                        "slo": slo.name,
                        "kind": slo.kind,
                        "state": "firing" if active else "resolved",
                        "at": when,
                        "fast_burn": fast_burn,
                        "slow_burn": slow_burn,
                        "compliance": compliance,
                    }
                    events.append(event)
                    self.alerts.append(event)
                    self.registry.counter(
                        "slo_alert_transitions_total",
                        slo=slo.name,
                        state=str(event["state"]),
                    ).inc()
                self._active[slo.name] = active
        return events

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def status(self) -> List[SLOStatus]:
        """Current per-SLO standing from the exported gauges (no advance)."""
        out: List[SLOStatus] = []
        with self._lock:
            for slo in self.slos:
                labels = {"slo": slo.name}
                fast = self.registry.gauge("slo_burn_rate_fast", **labels).value
                slow = self.registry.gauge("slo_burn_rate_slow", **labels).value
                compliance = self.registry.gauge("slo_compliance", **labels).value
                if slo.kind in ("availability", "shed_rate"):
                    _, samples = self._windows[slo.name].bad_fraction(slo.slow_window)
                else:
                    _, samples = self._sample_bad_fraction(slo, slo.slow_window)
                out.append(
                    SLOStatus(
                        name=slo.name,
                        kind=slo.kind,
                        objective=slo.objective,
                        compliance=compliance,
                        fast_burn=fast,
                        slow_burn=slow,
                        alerting=self._active[slo.name],
                        samples=samples,
                    )
                )
        return out

    def firing(self) -> List[str]:
        """Names of SLOs currently in the alerting state."""
        with self._lock:
            return [name for name, active in self._active.items() if active]

    def report(self) -> Dict[str, object]:
        """Structured report for ``repro-serve --slo-report``."""
        return {
            "slos": [s.as_dict() for s in self.status()],
            "firing": self.firing(),
            "alert_events": list(self.alerts),
            "evaluations": self._evaluations,
        }
