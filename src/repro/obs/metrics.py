"""Bounded metrics primitives: counters, gauges, histograms, and a registry.

The serving layer used to keep every latency sample in an unbounded Python
list, which is both a memory leak on a long-lived server and useless for
export (nobody scrapes a million floats).  This module replaces those lists
with three fixed-footprint primitives:

* :class:`Counter` -- a monotonically increasing float with a label set.
* :class:`Gauge` -- a point-in-time value (queue depth, active shards).
* :class:`Histogram` -- a **bounded** sample store: a ring buffer of the
  most recent ``capacity`` observations plus one P² (piecewise-parabolic,
  Jain & Chlamtac 1985) streaming estimator per tracked quantile, together
  with exact running count/sum/min/max.  While the total observation count
  is at most ``capacity`` the ring holds *every* sample and percentiles are
  exact; beyond that the tracked quantiles come from the P² sketches (which
  never forget) and untracked ones fall back to the retained window.

:class:`MetricsRegistry` names and stores the metrics.  A metric identity is
``(name, sorted label items)``; asking for the same identity twice returns
the same object, so recorders can call ``registry.counter(...)`` on the hot
path without bookkeeping.  ``ServingTelemetry`` sits on top of this registry
(see :mod:`repro.serving.telemetry`), and the exporters in
:mod:`repro.obs.export` render it for scraping.

All values here are *simulated* seconds/counts from the GPU cost model --
the registry never reads a wall clock.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonical (sorted, stringified) identity of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Keeps five markers (min, two intermediates, the target quantile, max)
    and adjusts them with a piecewise-parabolic update per observation --
    O(1) memory and time, no sample retention.  Exact until five samples
    have arrived.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be strictly between 0 and 1")
        self.p = float(p)
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def observe(self, x: float) -> None:
        x = float(x)
        self._count += 1
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        # Locate the marker cell containing x, adjusting the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        pos = self._positions
        for i in range(k + 1, 5):
            pos[i] += 1.0
        des = self._desired
        for i in range(5):
            des[i] += self._increments[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = des[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> Optional[float]:
        """Current estimate (exact below five samples, None when empty)."""
        if self._count == 0:
            return None
        h = self._heights
        if self._count <= len(h) or len(h) < 5:
            arr = np.asarray(h[: self._count], dtype=np.float64)
            return float(np.percentile(arr, self.p * 100.0))
        return float(h[2])


class Counter:
    """A monotonically increasing value (floats allowed: seconds counters)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Bounded sample store: recent-sample ring + P² quantile sketches.

    Parameters
    ----------
    capacity:
        Ring-buffer size.  Percentiles are exact while the total observation
        count is at most ``capacity``; ``recent_percentile(window=w)`` stays
        exact forever for any ``w <= capacity``.
    quantiles:
        Percentile ranks (0-100) tracked by P² sketches across the *whole*
        stream, so headline quantiles never silently narrow to the retained
        window once the ring wraps.
    """

    #: Per-call cap on samples fed to the P² sketches by ``observe_many``.
    #: Bulk loads are strided down to this many updates so a million-sample
    #: ingest costs thousands -- not millions -- of Python-level iterations,
    #: while per-sample ``observe`` still feeds every point.
    P2_BULK_FEED = 4096

    __slots__ = ("name", "labels", "capacity", "_lock", "_ring", "_count", "_sum", "_min", "_max", "_p2")

    def __init__(
        self,
        name: str = "",
        labels: Optional[Dict[str, str]] = None,
        capacity: int = 4096,
        quantiles: Iterable[float] = (50.0, 95.0, 99.0),
    ) -> None:
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.name = name
        self.labels = dict(labels or {})
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring = np.zeros(self.capacity, dtype=np.float64)
        self._count = 0
        self._sum = 0.0
        self._min = np.inf
        self._max = -np.inf
        self._p2 = {float(q): P2Quantile(float(q) / 100.0) for q in quantiles}

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring[self._count % self.capacity] = value
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            for sketch in self._p2.values():
                sketch.observe(value)

    def observe_many(self, values: np.ndarray) -> None:
        """Vectorised bulk ingest (ring + aggregates exact, P² strided)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        with self._lock:
            cap = self.capacity
            if arr.size >= cap:
                # Only the last ``cap`` samples survive; lay them down in order.
                tail = arr[-cap:]
                start = (self._count + arr.size - cap) % cap
                split = cap - start
                self._ring[start:] = tail[:split]
                self._ring[:start] = tail[split:]
            else:
                start = self._count % cap
                split = min(cap - start, arr.size)
                self._ring[start : start + split] = arr[:split]
                self._ring[: arr.size - split] = arr[split:]
            self._count += int(arr.size)
            self._sum += float(arr.sum())
            self._min = min(self._min, float(arr.min()))
            self._max = max(self._max, float(arr.max()))
            feed = arr
            if arr.size > self.P2_BULK_FEED:
                stride = arr.size // self.P2_BULK_FEED
                feed = arr[::stride]
            for sketch in self._p2.values():
                for value in feed:
                    sketch.observe(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Samples retained in the ring (bounded by ``capacity``)."""
        return min(self._count, self.capacity)

    @property
    def count(self) -> int:
        """Total observations ever (exact, unbounded counter)."""
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean over the whole stream (0 when empty)."""
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    @property
    def min(self) -> float:
        return float(self._min) if self._count else 0.0

    @property
    def max(self) -> float:
        return float(self._max) if self._count else 0.0

    def values(self) -> np.ndarray:
        """Retained samples, oldest first (a copy)."""
        with self._lock:
            return self._values_locked()

    def _values_locked(self) -> np.ndarray:
        if self._count <= self.capacity:
            return self._ring[: self._count].copy()
        cursor = self._count % self.capacity
        return np.concatenate([self._ring[cursor:], self._ring[:cursor]])

    def percentile(self, q: float) -> Optional[float]:
        """Percentile at rank ``q`` (0-100); None when empty.

        Exact while ``count <= capacity``.  Beyond that, tracked quantiles
        come from their P² sketch (whole-stream) and untracked ranks from
        the retained window.
        """
        with self._lock:
            if self._count == 0:
                return None
            if self._count <= self.capacity:
                return float(np.percentile(self._ring[: self._count], q))
            sketch = self._p2.get(float(q))
            if sketch is not None:
                return sketch.value
            return float(np.percentile(self._values_locked(), q))

    def recent_percentile(self, q: float, window: int) -> Optional[float]:
        """Exact percentile over the last ``window`` samples (None when empty)."""
        with self._lock:
            if self._count == 0:
                return None
            tail = self._values_locked()[-int(window) :]
        return float(np.percentile(tail, q))

    def tracked_quantiles(self) -> Tuple[float, ...]:
        return tuple(self._p2)

    def reset(self) -> None:
        """Restart the histogram as if freshly constructed (whole stream).

        Everything restarts together: the exact aggregates (``count``,
        ``sum``, ``min``, ``max``), the P² whole-stream sketches, *and* the
        sample ring.  The ring must be zeroed, not just logically emptied
        via ``_count = 0``: ``observe_many``'s wrap-around layout and the
        ``_values_locked`` views index the ring relative to ``_count``, and
        leaving pre-reset samples in the buffer would let a later code path
        that trusts ``capacity``-bounded reads resurface data from before
        the reset.  A reset histogram is indistinguishable from a new one.
        """
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = np.inf
            self._max = -np.inf
            self._ring.fill(0.0)
            self._p2 = {q: P2Quantile(q / 100.0) for q in self._p2}


class MetricsRegistry:
    """Named metric families with label sets.

    ``counter``/``gauge``/``histogram`` get-or-create: the first call fixes
    the metric type for that name, and every later call with the same name
    and labels returns the same object.  ``families()`` yields the data the
    exporters render; ``reset()`` zeroes every value but keeps the
    registrations (a scrape endpoint should not forget its series on
    telemetry reset).
    """

    def __init__(self, histogram_capacity: int = 4096) -> None:
        self.histogram_capacity = int(histogram_capacity)
        self._lock = threading.Lock()
        self._types: Dict[str, str] = {}
        self._metrics: "Dict[str, Dict[LabelKey, object]]" = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: Dict[str, str], factory):
        with self._lock:
            existing = self._types.get(name)
            if existing is None:
                self._types[name] = kind
                self._metrics[name] = {}
            elif existing != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {existing}, not a {kind}"
                )
            series = self._metrics[name]
            key = _label_key(labels)
            metric = series.get(key)
            if metric is None:
                metric = factory()
                series[key] = metric
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self,
        name: str,
        capacity: Optional[int] = None,
        quantiles: Iterable[float] = (50.0, 95.0, 99.0),
        **labels: str,
    ) -> Histogram:
        cap = self.histogram_capacity if capacity is None else int(capacity)
        return self._get_or_create(
            "histogram",
            name,
            labels,
            lambda: Histogram(name, labels, capacity=cap, quantiles=quantiles),
        )

    # ------------------------------------------------------------------
    def get(self, name: str, **labels: str):
        """Existing metric for (name, labels), or None."""
        with self._lock:
            series = self._metrics.get(name)
            if series is None:
                return None
            return series.get(_label_key(labels))

    def series(self, name: str) -> List[object]:
        """Every labelled child of one family, in first-seen order."""
        with self._lock:
            return list(self._metrics.get(name, {}).values())

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label has taken in a family (first-seen order)."""
        out: List[str] = []
        with self._lock:
            for key in self._metrics.get(name, {}):
                for k, v in key:
                    if k == label and v not in out:
                        out.append(v)
        return out

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family's values across label sets."""
        with self._lock:
            series = self._metrics.get(name)
            if not series:
                return 0.0
            return float(sum(m.value for m in series.values()))

    def labelled_values(self, name: str, label: str) -> Dict[str, float]:
        """``{label value: value}`` breakdown of a counter/gauge family.

        Children carrying the same label value (with further labels) are
        summed; children missing the label are skipped.  This is the read
        side of per-reason / per-lane counter families, so callers need no
        shadow dict of the children they created.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for key, metric in self._metrics.get(name, {}).items():
                for k, v in key:
                    if k == label:
                        out[v] = out.get(v, 0.0) + float(metric.value)
        return out

    def families(self) -> List[Tuple[str, str, List[object]]]:
        """``(name, type, metrics)`` triples sorted by name (for exporters)."""
        with self._lock:
            return [
                (name, self._types[name], list(self._metrics[name].values()))
                for name in sorted(self._metrics)
            ]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric value; registrations and label sets survive."""
        with self._lock:
            for series in self._metrics.values():
                for metric in series.values():
                    metric.reset()
