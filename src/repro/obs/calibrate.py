"""Online cost-model calibration: learn measured/analytic ratios per bucket.

The planner ranks solvers by :meth:`RegisteredSolver.estimate_seconds` -- an
analytic dry-run of each adapter on the roofline device model.  That estimate
is exact for the kernels it charges, but it is still *a-priori*: it cannot
know data-dependent behaviour.  The canonical example in this repository is
``sketch_precond_lsqr``, whose analytic dry-run charges a fixed
representative iteration count while the numeric solve stops at convergence
-- so the analytic cost is systematically wrong by a shape-dependent factor.
Deadline shedding and elastic scaling inherit that error verbatim.

:class:`CalibratedEstimator` closes the loop.  It consumes *measured*
per-solver durations -- either directly from the serving layer's per-attempt
execution log or from completed ``solver:<name>`` spans
(:meth:`CalibratedEstimator.ingest`) -- and maintains one robust online
correction factor per ``(solver family, problem class, shape bucket)``:

* the correction is an EWMA of the measured/analytic ratio,
* each incoming ratio is clipped into ``[1/clip, clip]`` so one outlier
  (a fallback-polluted or truncated measurement) cannot poison the factor,
* a minimum-sample gate keeps predictions on the analytic estimate until the
  bucket has seen enough evidence to be trusted.

``predict_seconds(spec, solver=...)`` returns ``analytic * factor`` once the
gate opens and the plain analytic estimate before that, so callers can always
ask for the best currently-available number.  The estimator also scores
itself: every observation lands one predicted-vs-measured relative error in
the registry under ``calibration_relative_error{model="calibrated"}`` and
the corresponding analytic error under ``model="analytic"`` -- the pair the
calibration acceptance benchmark compares.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = ["CalibratedEstimator", "CalibrationKey", "shape_bucket"]


def shape_bucket(d: int, n: int, nrhs: int = 1) -> Tuple[int, int, int]:
    """Logarithmic shape bucket ``(log2 d, log2 n, log2 nrhs)`` (floored).

    Costs scale polynomially in the dimensions, so a measured/analytic
    *ratio* is stable across nearby shapes; bucketing by octave keeps the
    state bounded while separating regimes (a 512 x 16 solve and a
    65536 x 256 solve calibrate independently).
    """
    return (
        int(math.log2(max(int(d), 1))),
        int(math.log2(max(int(n), 1))),
        int(math.log2(max(int(nrhs), 1))),
    )


@dataclass(frozen=True)
class CalibrationKey:
    """Identity of one correction factor: solver x problem class x shape bucket."""

    solver: str
    problem: str
    bucket: Tuple[int, int, int]

    def labels(self) -> Dict[str, str]:
        """Label set used for this key's registry gauges."""
        return {
            "solver": self.solver,
            "problem": self.problem,
            "bucket": "x".join(str(b) for b in self.bucket),
        }


@dataclass
class _BucketState:
    """Online state of one correction factor."""

    ewma: float = 1.0
    samples: int = 0
    clipped: int = 0

    def update(self, ratio: float, alpha: float) -> None:
        if self.samples == 0:
            self.ewma = ratio
        else:
            self.ewma = (1.0 - alpha) * self.ewma + alpha * ratio
        self.samples += 1


class CalibratedEstimator:
    """Measured-over-analytic correction factors for solver cost estimates.

    Parameters
    ----------
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` the estimator scores
        itself into (a private one is created when omitted).  Series:
        ``calibration_relative_error{model=calibrated|analytic}`` (histogram),
        ``calibration_factor{solver,problem,bucket}`` (gauge),
        ``calibration_samples_total{solver}`` and
        ``calibration_clipped_total{solver}`` (counters).
    alpha:
        EWMA step for the ratio update (higher adapts faster, forgets
        faster).
    min_samples:
        Observations a bucket needs before :meth:`predict_seconds` trusts
        its factor; below the gate predictions fall back to the analytic
        :meth:`~repro.linalg.registry.RegisteredSolver.estimate_seconds`.
    clip:
        Outlier bound: each incoming measured/analytic ratio is clipped
        into ``[1/clip, clip]`` before entering the EWMA.
    device:
        Default device model for analytic estimates (callers can override
        per call).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        alpha: float = 0.25,
        min_samples: int = 4,
        clip: float = 16.0,
        device: DeviceSpec = H100_SXM5,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if clip <= 1.0:
            raise ValueError("clip must exceed 1 (it bounds the ratio both ways)")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alpha = float(alpha)
        self.min_samples = int(min_samples)
        self.clip = float(clip)
        self.device = device
        self._lock = threading.Lock()
        self._state: Dict[CalibrationKey, _BucketState] = {}
        self._ingest_cursor = 0
        self._err_calibrated = self.registry.histogram(
            "calibration_relative_error", model="calibrated"
        )
        self._err_analytic = self.registry.histogram(
            "calibration_relative_error", model="analytic"
        )

    # ------------------------------------------------------------------
    # observation side
    # ------------------------------------------------------------------
    def _analytic_seconds(self, solver: str, spec, device: Optional[DeviceSpec]) -> float:
        from repro.linalg.registry import get_solver  # local: avoid import cycle

        return float(
            get_solver(solver).estimate_seconds(spec, device if device is not None else self.device)
        )

    def key_for(self, solver: str, spec) -> CalibrationKey:
        """The calibration key a spec falls into for one solver family."""
        return CalibrationKey(
            solver=str(solver),
            problem=spec.problem,
            bucket=shape_bucket(spec.d, spec.n, spec.nrhs),
        )

    def observe(
        self,
        solver: str,
        spec,
        measured_seconds: float,
        *,
        analytic_seconds: Optional[float] = None,
        device: Optional[DeviceSpec] = None,
    ) -> Optional[float]:
        """Fold one measured solver duration into its bucket's factor.

        Returns the (clipped) measured/analytic ratio that entered the
        EWMA, or ``None`` when the sample was unusable (non-positive
        measurement or analytic estimate).  The prediction error of the
        *pre-update* factor is recorded first, so the error histograms
        score the estimator exactly as callers would have experienced it.
        """
        measured = float(measured_seconds)
        if not math.isfinite(measured) or measured <= 0.0:
            return None
        analytic = (
            float(analytic_seconds)
            if analytic_seconds is not None
            else self._analytic_seconds(solver, spec, device)
        )
        if not math.isfinite(analytic) or analytic <= 0.0:
            return None
        key = self.key_for(solver, spec)
        with self._lock:
            state = self._state.get(key)
            if state is None:
                state = self._state[key] = _BucketState()
            predicted = analytic * (state.ewma if state.samples >= self.min_samples else 1.0)
            self._err_calibrated.observe(abs(predicted - measured) / measured)
            self._err_analytic.observe(abs(analytic - measured) / measured)
            ratio = measured / analytic
            clipped = min(max(ratio, 1.0 / self.clip), self.clip)
            if clipped != ratio:
                state.clipped += 1
                self.registry.counter("calibration_clipped_total", solver=key.solver).inc()
            state.update(clipped, self.alpha)
            self.registry.counter("calibration_samples_total", solver=key.solver).inc()
            self.registry.gauge("calibration_factor", **key.labels()).set(state.ewma)
        return clipped

    def ingest(self, root: Span) -> int:
        """Consume one completed trace's ``solver:<name>`` spans.

        Only successful attempts whose spans carry the shape attributes the
        serving layer stamps (``d``, ``n``, ``nrhs``, ``problem``,
        ``kind``, and optionally ``analytic_seconds``) are usable; failed
        attempts measure a truncated run and are skipped.  Returns the
        number of samples folded in.
        """
        from repro.linalg.registry import SolveSpec  # local: avoid import cycle

        count = 0
        for span in root.walk():
            if not span.name.startswith("solver:") or span.end is None:
                continue
            if span.status != "ok":
                continue
            attrs = span.attributes
            if "d" not in attrs or "n" not in attrs:
                continue
            spec = SolveSpec(
                d=int(attrs["d"]),
                n=int(attrs["n"]),
                nrhs=int(attrs.get("nrhs", 1)),
                regularization=float(attrs.get("regularization", 0.0)),
                kind=str(attrs.get("kind", "multisketch")),
            )
            analytic = attrs.get("analytic_seconds")
            ratio = self.observe(
                str(attrs.get("solver", span.name.split(":", 1)[1])),
                spec,
                span.duration,
                analytic_seconds=float(analytic) if analytic is not None else None,
            )
            if ratio is not None:
                count += 1
        return count

    def ingest_tracer(self, tracer) -> int:
        """Consume every completed trace not yet ingested from a tracer.

        Tracks a cursor against ``tracer.traces_retained`` so repeated
        calls only read newly retained traces (head sampling already
        excluded the rest); traces evicted from the bounded deque before a
        call are simply missed (the cursor still advances).
        """
        with self._lock:
            cursor = self._ingest_cursor
            retained = tracer.traces_retained
            self._ingest_cursor = retained
        new = retained - cursor
        if new <= 0:
            return 0
        count = 0
        for root in tracer.traces()[-new:]:
            count += self.ingest(root)
        return count

    # ------------------------------------------------------------------
    # prediction side
    # ------------------------------------------------------------------
    def factor(self, solver: str, spec) -> Optional[float]:
        """Current correction factor, or None while the bucket is gated."""
        with self._lock:
            state = self._state.get(self.key_for(solver, spec))
            if state is None or state.samples < self.min_samples:
                return None
            return state.ewma

    def samples(self, solver: str, spec) -> int:
        """Observations the spec's bucket has accumulated."""
        with self._lock:
            state = self._state.get(self.key_for(solver, spec))
            return 0 if state is None else state.samples

    def predict_seconds(
        self, spec, *, solver: str, device: Optional[DeviceSpec] = None
    ) -> float:
        """Best current estimate of one solve: analytic x learned factor.

        Falls back to the plain analytic estimate while the bucket is
        below its minimum-sample gate, so the prediction is never worse
        informed than the planner's a-priori ranking.
        """
        analytic = self._analytic_seconds(solver, spec, device)
        factor = self.factor(solver, spec)
        return analytic * factor if factor is not None else analytic

    def as_cost_source(self):
        """Adapter for :func:`repro.linalg.planner.plan`'s ``cost_source`` hook.

        Returns ``(name, spec, device, analytic) -> seconds`` -- the
        analytic estimate the planner already computed is corrected in
        place, so a warmed estimator re-ranks candidates by measured
        reality at zero extra dry-run cost.
        """

        def source(name: str, spec, device: DeviceSpec, analytic: float) -> float:
            factor = self.factor(name, spec)
            return analytic * factor if factor is not None else analytic

        return source

    # ------------------------------------------------------------------
    # self-assessment
    # ------------------------------------------------------------------
    def error_summary(self, window: Optional[int] = None) -> Dict[str, float]:
        """Median relative prediction error, calibrated vs analytic.

        ``window`` restricts the comparison to the most recent samples
        (e.g. post-warm-up), using the histograms' exact retained rings.
        """
        out: Dict[str, float] = {}
        for label, hist in (
            ("calibrated", self._err_calibrated),
            ("analytic", self._err_analytic),
        ):
            if hist.count == 0:
                out[f"{label}_median_rel_error"] = float("nan")
            elif window is not None:
                out[f"{label}_median_rel_error"] = float(
                    hist.recent_percentile(50.0, int(window))
                )
            else:
                out[f"{label}_median_rel_error"] = float(hist.percentile(50.0))
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-bucket state keyed ``solver|problem|bucket`` (for reports)."""
        with self._lock:
            return {
                f"{k.solver}|{k.problem}|{'x'.join(map(str, k.bucket))}": {
                    "factor": s.ewma,
                    "samples": float(s.samples),
                    "clipped": float(s.clipped),
                }
                for k, s in self._state.items()
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            buckets = len(self._state)
            total = sum(s.samples for s in self._state.values())
        return f"CalibratedEstimator(buckets={buckets}, samples={total})"
