"""repro.obs: the observability layer -- tracing, bounded metrics, exporters.

Three pieces, layered under the serving stack:

* :mod:`repro.obs.trace` -- :class:`~repro.obs.trace.Tracer` /
  :class:`~repro.obs.trace.Span`: per-request span trees on the simulated
  clock, threaded through admission, queueing, planning, placement, fused
  batch execution, the planner's fallback chain and streaming sessions.
* :mod:`repro.obs.metrics` -- :class:`~repro.obs.metrics.MetricsRegistry`
  with counters, gauges and bounded ring+P² histograms;
  :class:`~repro.serving.telemetry.ServingTelemetry` sits on top of it.
* :mod:`repro.obs.export` -- Prometheus text exposition, JSON snapshots,
  and per-trace waterfall / critical-path reports
  (``repro-serve --metrics`` / ``--dump-trace``).

Two closed-loop pieces consume what the three above produce:

* :mod:`repro.obs.calibrate` --
  :class:`~repro.obs.calibrate.CalibratedEstimator`: online
  measured/analytic cost-correction factors learned from completed
  ``solver:<name>`` spans, feeding planner ranking, deadline shedding and
  proactive scaling.
* :mod:`repro.obs.slo` -- :class:`~repro.obs.slo.SLOConfig` /
  :class:`~repro.obs.slo.SLOEngine`: declarative objectives over the
  registry with Google-SRE-style multi-window burn-rate alerts.

:mod:`repro.obs.bench` defines the ``BENCH_<pr>.json`` perf-trajectory
schema recorded by ``tools/record_bench.py``, compared against the previous
record by ``tools/compare_bench.py``, and enforced in CI.
"""

from repro.obs.bench import BENCH_SCHEMA_VERSION, load_bench, validate_bench, write_bench
from repro.obs.calibrate import CalibratedEstimator, CalibrationKey, shape_bucket
from repro.obs.export import (
    critical_path,
    registry_to_dict,
    render_critical_path,
    render_waterfall,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile
from repro.obs.slo import SLOConfig, SLOEngine, SLOStatus, default_serving_slos
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "CalibratedEstimator",
    "CalibrationKey",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "P2Quantile",
    "SLOConfig",
    "SLOEngine",
    "SLOStatus",
    "Span",
    "Tracer",
    "critical_path",
    "default_serving_slos",
    "load_bench",
    "registry_to_dict",
    "render_critical_path",
    "render_waterfall",
    "shape_bucket",
    "to_json",
    "to_prometheus",
    "validate_bench",
    "write_bench",
]
