"""Exporters: Prometheus text exposition, JSON snapshots, trace waterfalls.

Three consumers, three formats:

* :func:`to_prometheus` -- the text exposition format a Prometheus scrape
  expects.  Counters and gauges export their value per label set;
  histograms export as Prometheus *summaries* (tracked quantiles plus
  ``_sum``/``_count``), which is the honest rendering of a
  ring-buffer+P² store -- there are no fixed buckets to expose.
* :func:`to_json` / :func:`registry_to_dict` -- a structured snapshot for
  dashboards and the perf-trajectory recorder.
* :func:`render_waterfall` / :func:`critical_path` -- per-trace reports:
  where did *this* request's simulated time go, and which chain of spans
  bounded its latency (``repro-serve --dump-trace``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "to_prometheus",
    "to_json",
    "registry_to_dict",
    "render_waterfall",
    "critical_path",
    "render_critical_path",
]


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels_text(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, metrics in registry.families():
        full = prefix + name
        if kind == "counter":
            lines.append(f"# TYPE {full} counter")
            for m in metrics:
                lines.append(f"{full}{_labels_text(m.labels)} {_format_value(m.value)}")
        elif kind == "gauge":
            lines.append(f"# TYPE {full} gauge")
            for m in metrics:
                lines.append(f"{full}{_labels_text(m.labels)} {_format_value(m.value)}")
        else:  # histogram -> summary exposition
            lines.append(f"# TYPE {full} summary")
            for m in metrics:
                for q in m.tracked_quantiles():
                    value = m.percentile(q)
                    if value is None:
                        continue
                    quantile = (("quantile", repr(q / 100.0)),)
                    lines.append(f"{full}{_labels_text(m.labels, quantile)} {_format_value(value)}")
                lines.append(f"{full}_sum{_labels_text(m.labels)} {_format_value(m.sum)}")
                lines.append(f"{full}_count{_labels_text(m.labels)} {_format_value(m.count)}")
    return "\n".join(lines) + "\n"


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, object]:
    """Structured snapshot: one entry per family, one row per label set."""
    out: Dict[str, object] = {}
    for name, kind, metrics in registry.families():
        rows = []
        for m in metrics:
            row: Dict[str, object] = {"labels": dict(m.labels)}
            if kind == "histogram":
                row.update(
                    count=m.count,
                    sum=m.sum,
                    mean=m.mean,
                    min=m.min,
                    max=m.max,
                    quantiles={
                        repr(q / 100.0): m.percentile(q) for q in m.tracked_quantiles()
                    },
                )
            else:
                row["value"] = m.value
            rows.append(row)
        out[name] = {"type": kind, "series": rows}
    return out


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """JSON form of :func:`registry_to_dict`."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# trace reports
# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _attr_text(span: Span, keys: Tuple[str, ...] = ("solver", "shard", "lane", "cache_hit", "reason")) -> str:
    picked = [f"{k}={span.attributes[k]}" for k in keys if k in span.attributes]
    return (" " + " ".join(picked)) if picked else ""


def render_waterfall(root: Span, width: int = 48) -> str:
    """ASCII waterfall of one trace: bars on the simulated-clock timeline."""
    t0 = root.start
    t1 = root.end if root.end is not None else max(
        (s.end for s in root.walk() if s.end is not None), default=t0
    )
    total = max(t1 - t0, 0.0)
    lines = [
        f"trace {root.trace_id} {root.name} status={root.status} "
        f"total={_fmt_seconds(total)}{_attr_text(root)}"
    ]

    def emit(span: Span, depth: int) -> None:
        end = span.end if span.end is not None else t1
        if total > 0.0:
            lo = int(round((span.start - t0) / total * width))
            hi = int(round((end - t0) / total * width))
        else:
            lo, hi = 0, width
        lo = min(max(lo, 0), width)
        hi = min(max(hi, lo), width)
        bar = "." * lo + ("#" * max(hi - lo, 1))[: width - lo]
        bar = bar + "." * (width - len(bar))
        status = "" if span.status == "ok" else f" !{span.status}"
        lines.append(
            f"  {'  ' * depth}{span.name:<24.24} |{bar}| "
            f"{_fmt_seconds(end - span.start)}{status}{_attr_text(span)}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for child in root.children:
        emit(child, 0)
    return "\n".join(lines)


def critical_path(root: Span) -> List[Span]:
    """The chain of spans bounding this trace's latency.

    Walk from the root, at each level descending into the child whose end
    is latest (ties: the longer one) -- the span that kept the request
    alive.  Returns the chain root-first.
    """
    path = [root]
    node = root
    while node.children:
        node = max(
            node.children,
            key=lambda s: ((s.end if s.end is not None else s.start), s.duration),
        )
        path.append(node)
    return path


def render_critical_path(root: Span) -> str:
    """One line per critical-path span with its share of the trace."""
    total = root.duration
    lines = [f"critical path ({_fmt_seconds(total)} total):"]
    for span in critical_path(root):
        share = (span.duration / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"  {span.name:<24.24} {_fmt_seconds(span.duration):>10} "
            f"{share:5.1f}%{_attr_text(span)}"
        )
    return "\n".join(lines)
