"""Per-request tracing on the simulated clock: spans, trees, and a tracer.

A :class:`Span` is one named interval of a request's life -- ``queue``,
``plan``, ``batch``, ``solver:rand_cholqr`` -- with a start/end in
*simulated* seconds (shard executor clocks and the alpha-beta comm model,
never a wall clock), a bag of attributes (solver family, shard id, cache
hit, fallback hop) and child spans.  A trace is the span tree hanging off
one root; every admitted request gets exactly one.

The :class:`Tracer` hands out spans and retains a bounded number of
completed traces (a long-lived server must not grow per-request state
without limit).  Timestamps are always passed in explicitly by the caller
-- the tracer never reads a clock -- which is what keeps the tracing
overhead zero *on the simulated clock*: instrumentation only reads clocks
the cost model already advanced.

Two invariants the instrumentation (and the test-suite) relies on:

* child spans nest inside their parent on the simulated clock --
  ``start_span`` clamps a child's start up to its parent's, and finishing
  a span extends its end over its children;
* a disabled tracer costs one attribute lookup per call: every method
  returns the shared :data:`NULL_SPAN`, which swallows all mutation.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]

#: Span status values: ``ok``, ``error`` (chain exhausted / ingest failed),
#: ``shed`` (dropped by admission control or the deadline dispatcher).
STATUSES = ("ok", "error", "shed")


class Span:
    """One named interval in a trace, with attributes and children."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end", "status", "attributes", "children")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = float(start)
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    def set(self, **attributes: object) -> "Span":
        """Attach attributes (chainable)."""
        self.attributes.update(attributes)
        return self

    def finish(self, end: float, status: str = "ok", **attributes: object) -> "Span":
        """Close the span at ``end`` (clamped over its start and children)."""
        if attributes:
            self.attributes.update(attributes)
        end = float(end)
        for child in self.children:
            if child.end is not None and child.end > end:
                end = child.end
        if end < self.start:
            end = self.start
        self.end = end
        self.status = status
        return self

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Simulated seconds covered (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, pre-order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    def is_complete(self) -> bool:
        """Every span in the tree closed, children nested inside parents."""
        if self.end is None:
            return False
        for child in self.children:
            if not child.is_complete():
                return False
            if child.start < self.start or child.end > self.end:
                return False
        return True

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form of the whole subtree."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self.start,
            "end_seconds": self.end,
            "duration_seconds": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"[{self.start:.3e}, {self.end if self.end is None else format(self.end, '.3e')}], "
            f"status={self.status}, children={len(self.children)})"
        )


class _NullSpan(Span):
    """Inert span returned by a disabled tracer; swallows all mutation."""

    def __init__(self) -> None:
        super().__init__("null", "", "", None, 0.0)
        self.end = 0.0

    def set(self, **attributes: object) -> "Span":
        return self

    def finish(self, end: float, status: str = "ok", **attributes: object) -> "Span":
        return self

    def is_complete(self) -> bool:
        return False


#: Shared inert span: identity-comparable (``span is NULL_SPAN``) and safe
#: to call anything on.  All tracer methods return it when tracing is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and retains a bounded deque of completed traces.

    Parameters
    ----------
    enabled:
        When False every method is a no-op returning :data:`NULL_SPAN`, so
        instrumented code needs no branches.
    max_traces:
        Completed-trace retention bound (oldest evicted first).  Eviction
        only drops the tree, not the counters: ``traces_started`` /
        ``traces_completed`` keep counting, so span-tree completeness is
        checkable even past the bound.
    sample_every:
        Head sampling: retain every Nth root trace (the first of each run
        of N), so tracing stays affordable at high QPS.  Sampling only
        affects *retention* in the completed deque -- every trace is still
        built, counted in ``traces_started``/``traces_completed``, and
        closed normally -- and traces ending in ``shed`` or ``error``
        status are ALWAYS retained regardless of the sampling decision
        (the interesting traces are exactly the ones something dropped).
        ``traces_retained`` counts what actually landed in the deque.
    """

    def __init__(
        self, enabled: bool = True, max_traces: int = 512, sample_every: int = 1
    ) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive (1 keeps everything)")
        self.enabled = bool(enabled)
        self.max_traces = int(max_traces)
        self.sample_every = int(sample_every)
        self._lock = threading.Lock()
        self._seq = 0
        self._roots_seen = 0
        self._sampled_out: set = set()
        self._active: Dict[str, Span] = {}
        self._completed: Deque[Span] = deque(maxlen=self.max_traces)
        self.traces_started = 0
        self.traces_completed = 0
        self.traces_retained = 0

    # ------------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        with self._lock:
            self._seq += 1
            return f"{prefix}{self._seq:08x}"

    def start_trace(self, name: str, start: float, **attributes: object) -> Span:
        """Open a new trace; returns its root span."""
        if not self.enabled:
            return NULL_SPAN
        trace_id = self._next_id("t")
        root = Span(name, trace_id, self._next_id("s"), None, start, attributes)
        with self._lock:
            self._active[trace_id] = root
            self.traces_started += 1
            # Head-sampling decision, made at the root: keep the first of
            # every run of ``sample_every`` roots.  Recorded in a private
            # set (Span has __slots__ and the attribute bag belongs to the
            # instrumentation) and reconsidered at end_trace for shed/error.
            self._roots_seen += 1
            if (self._roots_seen - 1) % self.sample_every != 0:
                self._sampled_out.add(trace_id)
        return root

    def start_span(self, name: str, parent: Span, start: float, **attributes: object) -> Span:
        """Open a child span under ``parent`` (start clamped to nest)."""
        if not self.enabled or parent is NULL_SPAN:
            return NULL_SPAN
        start = float(start)
        if start < parent.start:
            start = parent.start
        span = Span(name, parent.trace_id, self._next_id("s"), parent.span_id, start, attributes)
        parent.children.append(span)
        return span

    def event(self, name: str, parent: Span, at: float, status: str = "ok", **attributes: object) -> Span:
        """Zero-duration child span (plan decisions, cache hits, drift)."""
        span = self.start_span(name, parent, at, **attributes)
        span.finish(at, status=status)
        return span

    def end_trace(self, root: Span, end: float, status: str = "ok", **attributes: object) -> Span:
        """Close the root and move the trace to the completed deque.

        ``traces_completed`` counts every trace that ends -- sampled out or
        not -- so the started == completed invariant is independent of the
        sampling rate; only *retention* in the deque is subject to it, and
        shed/error traces override the sampling decision.
        """
        if not self.enabled or root is NULL_SPAN:
            return root
        root.finish(end, status=status, **attributes)
        with self._lock:
            if self._active.pop(root.trace_id, None) is not None:
                self.traces_completed += 1
                sampled_out = root.trace_id in self._sampled_out
                self._sampled_out.discard(root.trace_id)
                if not sampled_out or root.status != "ok":
                    self._completed.append(root)
                    self.traces_retained += 1
        return root

    # ------------------------------------------------------------------
    def traces(self) -> List[Span]:
        """Completed traces, oldest first (bounded by ``max_traces``)."""
        with self._lock:
            return list(self._completed)

    def find_trace(self, trace_id: str) -> Optional[Span]:
        """A completed or still-active trace by id."""
        with self._lock:
            root = self._active.get(trace_id)
            if root is not None:
                return root
            for candidate in self._completed:
                if candidate.trace_id == trace_id:
                    return candidate
        return None

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def clear(self) -> None:
        """Drop all retained traces (counters survive, like a metrics reset)."""
        with self._lock:
            self._active.clear()
            self._completed.clear()
            self._sampled_out.clear()
