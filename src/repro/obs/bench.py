"""The perf-trajectory record: schema and validation for ``BENCH_<pr>.json``.

Every PR from now on records the serving/runtime/streaming numbers it ships
with, so a regression between PR N and PR N+1 is one ``diff`` away instead
of an archaeology project.  The payload is produced by the harness entry
:func:`repro.harness.experiments.perf_trajectory` (driven by
``tools/record_bench.py``) and validated here -- CI fails the build when the
file is missing or schema-invalid.

Schema (version 1) -- all numbers are simulated-clock quantities:

* ``schema_version`` (int, == 1), ``pr`` (int), ``config`` (dict)
* ``throughput``: serving and concurrent-runtime requests/second plus the
  speedups vs the naive loop and the synchronous server
* ``lanes``: per-lane ``p50_seconds``/``p95_seconds``/``p99_seconds``
  (queue-inclusive, from the concurrent runtime)
* ``residuals``: worst relative residuals (sync and concurrent), their
  ratio, and the ridge-vs-dense residual ratio
* ``counters``: shed / reject / deadline / fallback / drift totals
* ``streaming``: ingest rate, re-solve count, final residual
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

__all__ = ["BENCH_SCHEMA_VERSION", "validate_bench", "write_bench", "load_bench"]

BENCH_SCHEMA_VERSION = 1

#: Required numeric fields per section (section -> field names).
_REQUIRED_NUMBERS: Dict[str, tuple] = {
    "throughput": (
        "serving_requests_per_second",
        "concurrent_requests_per_second",
        "speedup_vs_naive",
        "concurrent_speedup_vs_sync",
    ),
    "residuals": (
        "worst_sync",
        "worst_concurrent",
        "concurrent_over_sync_ratio",
        "ridge_residual_ratio",
    ),
    "counters": (
        "requests_shed",
        "queue_full_rejects",
        "deadline_violations",
        "fallback_batches",
        "drift_events",
    ),
    "streaming": (
        "ingest_rows_per_second",
        "resolves",
        "final_residual",
    ),
}

_LANE_FIELDS = ("p50_seconds", "p95_seconds", "p99_seconds")


def _is_finite_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def validate_bench(payload: object) -> List[str]:
    """Schema-check a perf-trajectory payload; returns error strings ([] = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {payload.get('schema_version')!r}"
        )
    if not isinstance(payload.get("pr"), int) or isinstance(payload.get("pr"), bool):
        errors.append(f"pr must be an int, got {payload.get('pr')!r}")
    if not isinstance(payload.get("config"), dict):
        errors.append("config must be an object")
    for section, fields in _REQUIRED_NUMBERS.items():
        body = payload.get(section)
        if not isinstance(body, dict):
            errors.append(f"missing section {section!r}")
            continue
        for field in fields:
            if field not in body:
                errors.append(f"{section}.{field} missing")
            elif not _is_finite_number(body[field]):
                errors.append(f"{section}.{field} must be a finite number, got {body[field]!r}")
    lanes = payload.get("lanes")
    if not isinstance(lanes, dict) or not lanes:
        errors.append("lanes must be a non-empty object")
    else:
        for lane, stats in lanes.items():
            if not isinstance(stats, dict):
                errors.append(f"lanes.{lane} must be an object")
                continue
            for field in _LANE_FIELDS:
                if field not in stats:
                    errors.append(f"lanes.{lane}.{field} missing")
                elif not _is_finite_number(stats[field]) or stats[field] < 0:
                    errors.append(
                        f"lanes.{lane}.{field} must be a finite non-negative number, "
                        f"got {stats[field]!r}"
                    )
    return errors


def write_bench(payload: Dict[str, object], path: str) -> None:
    """Validate then write the payload (raises ValueError when invalid)."""
    errors = validate_bench(payload)
    if errors:
        raise ValueError("invalid bench payload: " + "; ".join(errors))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
