"""Distributed block-row sketching (Section 7 of the paper).

The paper's distributed analysis assumes ``A`` is partitioned across ``p``
processes in block-row format; each process sketches its own block with a
locally generated sketch and the partial results are summed with a single
reduction.  This package provides:

* :class:`~repro.distributed.comm.SimComm` -- an in-process communicator with
  an alpha-beta (latency + bandwidth) cost model for reduce / allreduce /
  broadcast.
* :class:`~repro.distributed.block_row.BlockRowMatrix` -- the block-row
  distributed matrix.
* :mod:`repro.distributed.dist_sketch` -- distributed Gaussian, CountSketch,
  multisketch, and block-SRHT application, each returning the numerical
  result together with per-process compute time and communication volume.
* :mod:`repro.distributed.cost_model` -- the closed-form communication-cost
  comparison the paper walks through (CountSketch communicates more than the
  Gaussian because its embedding dimension is larger; the multisketch matches
  the Gaussian's communication volume with far less per-process work).

The communicator is simulated in-process (no MPI dependency), but the data
layout and reduction pattern are exactly what an mpi4py implementation would
use; ``dist_sketch`` documents the correspondence.
"""

from repro.distributed.comm import SimComm, CommCostModel, CommRecord
from repro.distributed.block_row import BlockRowMatrix
from repro.distributed.dist_sketch import (
    DistributedSketchResult,
    distributed_gaussian_sketch,
    distributed_countsketch,
    distributed_multisketch,
    distributed_block_srht,
)
from repro.distributed.cost_model import (
    sketch_communication_volume,
    communication_table,
)

__all__ = [
    "SimComm",
    "CommCostModel",
    "CommRecord",
    "BlockRowMatrix",
    "DistributedSketchResult",
    "distributed_gaussian_sketch",
    "distributed_countsketch",
    "distributed_multisketch",
    "distributed_block_srht",
    "sketch_communication_volume",
    "communication_table",
]
