"""Simulated communicator with an alpha-beta communication cost model.

The paper's Section 7 is an analysis, not a measurement: it argues about
which sketch wins in a distributed setting purely from per-process compute
cost and communication volume.  To make that analysis executable we provide
a communicator that performs the collective operations *in process* (every
"rank" is just an index into a list of NumPy arrays) while charging a
standard alpha-beta model:

    ``T(collective) = alpha * ceil(log2 p) + beta * message_bytes * factor``

where ``alpha`` is the per-message latency, ``beta`` the inverse link
bandwidth, and ``factor`` depends on the collective (tree reduction moves the
full message ``log2 p`` times in the naive model, or ``2 (p-1)/p`` times for
ring/rabenseifner allreduce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class CommRecord:
    """One collective operation charged to the communication cost model."""

    name: str
    bytes_moved: float
    seconds: float


class CommCostModel:
    """Alpha-beta model for collective communication.

    Parameters
    ----------
    latency:
        Per-message latency ``alpha`` in seconds (default 10 microseconds,
        typical for an HPC interconnect).
    bandwidth:
        Link bandwidth in bytes/second (default 25 GB/s, i.e. a 200 Gb/s NIC).
    algorithm:
        ``"ring"`` (bandwidth-optimal, factor ``2 (p-1)/p``) or ``"tree"``
        (factor ``log2 p``) for reductions.
    """

    def __init__(
        self,
        latency: float = 10.0e-6,
        bandwidth: float = 25.0e9,
        algorithm: str = "ring",
    ) -> None:
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if algorithm not in ("ring", "tree"):
            raise ValueError("algorithm must be 'ring' or 'tree'")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.algorithm = algorithm

    def _steps(self, p: int) -> float:
        return max(math.ceil(math.log2(max(p, 2))), 1)

    def reduce_time(self, message_bytes: float, p: int) -> float:
        """Time to reduce a ``message_bytes`` buffer across ``p`` processes."""
        if p <= 1:
            return 0.0
        steps = self._steps(p)
        if self.algorithm == "ring":
            volume = message_bytes * (p - 1) / p
            return steps * self.latency + volume / self.bandwidth
        return steps * (self.latency + message_bytes / self.bandwidth)

    def allreduce_time(self, message_bytes: float, p: int) -> float:
        """Time for an allreduce (reduce-scatter + allgather in the ring model)."""
        if p <= 1:
            return 0.0
        steps = self._steps(p)
        if self.algorithm == "ring":
            volume = 2.0 * message_bytes * (p - 1) / p
            return 2 * steps * self.latency + volume / self.bandwidth
        return 2 * steps * (self.latency + message_bytes / self.bandwidth)

    def broadcast_time(self, message_bytes: float, p: int) -> float:
        """Time to broadcast a buffer from one rank to all others."""
        if p <= 1:
            return 0.0
        steps = self._steps(p)
        return steps * self.latency + message_bytes / self.bandwidth


class SimComm:
    """In-process simulated communicator over ``p`` ranks.

    Collectives operate on Python lists with one entry per rank (``None`` is
    accepted in analytic mode) and record their simulated cost.
    """

    def __init__(self, size: int, cost_model: Optional[CommCostModel] = None) -> None:
        if size <= 0:
            raise ValueError("communicator size must be positive")
        self.size = int(size)
        self.cost_model = cost_model if cost_model is not None else CommCostModel()
        self.records: List[CommRecord] = []

    # ------------------------------------------------------------------
    def _record(self, name: str, nbytes: float, seconds: float) -> None:
        self.records.append(CommRecord(name=name, bytes_moved=nbytes, seconds=seconds))

    def total_time(self) -> float:
        """Total simulated communication time so far."""
        return float(sum(r.seconds for r in self.records))

    def total_bytes(self) -> float:
        """Total bytes moved by collectives so far."""
        return float(sum(r.bytes_moved for r in self.records))

    def by_collective(self) -> Dict[str, float]:
        """Seconds per collective name."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.seconds
        return out

    # ------------------------------------------------------------------
    def reduce_sum(self, contributions: Sequence[Optional[np.ndarray]]) -> Optional[np.ndarray]:
        """Sum one array per rank down to the root (rank 0's copy is returned)."""
        if len(contributions) != self.size:
            raise ValueError(f"expected {self.size} contributions, got {len(contributions)}")
        numeric = [c for c in contributions if c is not None]
        result = None
        nbytes = 0.0
        if numeric:
            result = np.zeros_like(numeric[0])
            for c in numeric:
                if c.shape != result.shape:
                    raise ValueError("all contributions must share a shape")
                result += c
            nbytes = float(result.nbytes)
        self._record("reduce", nbytes, self.cost_model.reduce_time(nbytes, self.size))
        return result

    def allreduce_sum(self, contributions: Sequence[Optional[np.ndarray]]) -> Optional[np.ndarray]:
        """Sum one array per rank; every rank ends with the result."""
        if len(contributions) != self.size:
            raise ValueError(f"expected {self.size} contributions, got {len(contributions)}")
        numeric = [c for c in contributions if c is not None]
        result = None
        nbytes = 0.0
        if numeric:
            result = np.zeros_like(numeric[0])
            for c in numeric:
                result += c
            nbytes = float(result.nbytes)
        self._record("allreduce", nbytes, self.cost_model.allreduce_time(nbytes, self.size))
        return result

    def broadcast(self, value: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Broadcast an array from the root; returns (a copy of) the array."""
        nbytes = float(value.nbytes) if value is not None else 0.0
        self._record("broadcast", nbytes, self.cost_model.broadcast_time(nbytes, self.size))
        return None if value is None else np.array(value, copy=True)
