"""Distributed sketch application over block-row matrices (Section 7).

Every routine follows the same pattern the paper describes:

1. each rank generates its *own* sketch for its row block ``A^(i)``,
2. each rank applies that sketch locally (this is where the single-GPU
   performance results of Section 6 carry over verbatim), and
3. the ``k x n`` partial results are summed with one reduction, since
   ``S A = sum_i S^(i) A^(i)`` for every sketch family considered.

The per-rank compute time is taken from the simulated-GPU cost model (each
rank gets its own :class:`~repro.gpu.executor.GPUExecutor`); the reduction is
charged by the communicator's alpha-beta model.  The multisketch additionally
broadcasts the small second-stage Gaussian so every rank applies the *same*
``G_ms``, exactly as in the paper's derivation
``G_ms C A = sum_i G_ms C^(i) A^(i)``.

An mpi4py implementation maps one-to-one onto this code: ``SimComm.reduce_sum``
becomes ``comm.Reduce(partial, total, op=MPI.SUM)`` on contiguous NumPy
buffers and the per-rank sections run unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.distributed.block_row import BlockRowMatrix
from repro.distributed.comm import SimComm
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor


@dataclass
class DistributedSketchResult:
    """Outcome of a distributed sketch application.

    Attributes
    ----------
    method:
        Sketch family name.
    sketch:
        The reduced ``k x n`` sketch (None in analytic mode).
    per_rank_compute:
        Simulated per-rank GPU seconds (one entry per rank).
    comm_seconds / comm_bytes:
        Cost of the final reduction (and the broadcast, for the multisketch).
    k:
        Embedding dimension of the result, which is also the size of the
        reduced message per column.
    """

    method: str
    sketch: Optional[np.ndarray]
    per_rank_compute: List[float]
    comm_seconds: float
    comm_bytes: float
    k: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def max_rank_compute(self) -> float:
        """Critical-path compute time (the slowest rank)."""
        return max(self.per_rank_compute) if self.per_rank_compute else 0.0

    @property
    def total_seconds(self) -> float:
        """Critical-path time: slowest rank's compute plus communication."""
        return self.max_rank_compute + self.comm_seconds


def _rank_executor(device: DeviceSpec, numeric: bool, seed: int) -> GPUExecutor:
    return GPUExecutor(device, numeric=numeric, seed=seed, track_memory=False)


def distributed_gaussian_sketch(
    a: BlockRowMatrix,
    k: int,
    comm: SimComm,
    *,
    device: DeviceSpec = H100_SXM5,
    seed: int = 0,
) -> DistributedSketchResult:
    """Apply a Gaussian sketch to a block-row matrix: ``G A = sum_i G^(i) A^(i)``."""
    if comm.size != a.n_blocks:
        raise ValueError("communicator size must match the number of row blocks")
    numeric = a.is_numeric
    partials: List[Optional[np.ndarray]] = []
    compute: List[float] = []
    for rank in range(a.n_blocks):
        ex = _rank_executor(device, numeric, seed * 1000 + rank)
        rows, _ = a.block_shape(rank)
        sketch = GaussianSketch(rows, k, executor=ex, seed=seed * 1000 + rank)
        block = a.block(rank)
        if numeric:
            partials.append(sketch.sketch_host(block))
        else:
            dev = ex.empty(a.block_shape(rank), label="A_block")
            sketch.apply(dev)
            partials.append(None)
        compute.append(ex.elapsed)
    before = comm.total_time()
    bytes_before = comm.total_bytes()
    result = comm.reduce_sum(partials)
    return DistributedSketchResult(
        method="gaussian",
        sketch=result,
        per_rank_compute=compute,
        comm_seconds=comm.total_time() - before,
        comm_bytes=comm.total_bytes() - bytes_before,
        k=k,
    )


def distributed_countsketch(
    a: BlockRowMatrix,
    k: int,
    comm: SimComm,
    *,
    device: DeviceSpec = H100_SXM5,
    variant: str = "atomic",
    seed: int = 0,
) -> DistributedSketchResult:
    """Apply a CountSketch to a block-row matrix: ``C A = sum_i C^(i) A^(i)``.

    Note the communication volume is ``k x n`` with ``k = 2 n^2``, i.e. much
    larger than the Gaussian's ``2n x n`` message -- the trade-off Section 7
    points out.
    """
    if comm.size != a.n_blocks:
        raise ValueError("communicator size must match the number of row blocks")
    numeric = a.is_numeric
    partials: List[Optional[np.ndarray]] = []
    compute: List[float] = []
    for rank in range(a.n_blocks):
        ex = _rank_executor(device, numeric, seed * 1000 + rank)
        rows, _ = a.block_shape(rank)
        sketch = CountSketch(rows, k, variant=variant, executor=ex, seed=seed * 1000 + rank)
        block = a.block(rank)
        if numeric:
            partials.append(sketch.sketch_host(block))
        else:
            dev = ex.empty(a.block_shape(rank), label="A_block")
            sketch.apply(dev)
            partials.append(None)
        compute.append(ex.elapsed)
    before = comm.total_time()
    bytes_before = comm.total_bytes()
    result = comm.reduce_sum(partials)
    return DistributedSketchResult(
        method="countsketch",
        sketch=result,
        per_rank_compute=compute,
        comm_seconds=comm.total_time() - before,
        comm_bytes=comm.total_bytes() - bytes_before,
        k=k,
    )


def distributed_multisketch(
    a: BlockRowMatrix,
    k1: int,
    k2: int,
    comm: SimComm,
    *,
    device: DeviceSpec = H100_SXM5,
    seed: int = 0,
) -> DistributedSketchResult:
    """Apply a Count-Gauss multisketch to a block-row matrix.

    ``G_ms C A = sum_i G_ms C^(i) A^(i)``: the small ``k2 x k1`` Gaussian is
    broadcast so every rank uses the same second stage, each rank multisketches
    its own block, and only ``k2 x n`` partial results are reduced -- the same
    communication volume as the Gaussian sketch, with far cheaper per-rank
    compute.  This is why the paper expects the multisketch to win in
    distributed settings as well.
    """
    if comm.size != a.n_blocks:
        raise ValueError("communicator size must match the number of row blocks")
    numeric = a.is_numeric
    _, n = a.shape

    # Broadcast the shared second-stage Gaussian (k2 x k1 doubles).
    gms_bytes = float(k2) * k1 * 8
    shared_gaussian = None
    if numeric:
        shared_gaussian = np.random.default_rng(seed).standard_normal((k2, k1)) / np.sqrt(k2)
    comm.broadcast(shared_gaussian if shared_gaussian is not None else np.zeros(1))
    # Correct the recorded broadcast size in analytic mode (zeros(1) is a stand-in).
    if shared_gaussian is None and comm.records:
        last = comm.records[-1]
        comm.records[-1] = type(last)(
            name=last.name,
            bytes_moved=gms_bytes,
            seconds=comm.cost_model.broadcast_time(gms_bytes, comm.size),
        )

    partials: List[Optional[np.ndarray]] = []
    compute: List[float] = []
    for rank in range(a.n_blocks):
        ex = _rank_executor(device, numeric, seed * 1000 + rank)
        rows, _ = a.block_shape(rank)
        local_k1 = min(k1, rows)
        count = CountSketch(rows, local_k1, executor=ex, seed=seed * 1000 + rank)
        block = a.block(rank)
        if numeric:
            y1 = count.sketch_host(block)
            # Apply the shared Gaussian (restricted to the local k1 columns).
            g_local = shared_gaussian[:, :local_k1]
            partials.append(g_local @ y1)
            # Charge the GEMM the local rank would have run.
            y1_dev = ex.to_device(y1, label="Y1")
            g_dev = ex.to_device(g_local, label="G_ms")
            ex.blas.gemm(g_dev, y1_dev, phase="Matrix sketch")
        else:
            dev = ex.empty(a.block_shape(rank), label="A_block")
            y1 = count.apply(dev)
            g_dev = ex.empty((k2, local_k1), label="G_ms")
            ex.blas.gemm(g_dev, y1, phase="Matrix sketch")
            partials.append(None)
        compute.append(ex.elapsed)

    before = comm.total_time()
    bytes_before = comm.total_bytes()
    result = comm.reduce_sum(partials)
    return DistributedSketchResult(
        method="multisketch",
        sketch=result,
        per_rank_compute=compute,
        comm_seconds=comm.total_time() - before,
        comm_bytes=comm.total_bytes() - bytes_before,
        k=k2,
        extra={"k1": float(k1), "broadcast_bytes": gms_bytes},
    )


def distributed_block_srht(
    a: BlockRowMatrix,
    k: int,
    comm: SimComm,
    *,
    device: DeviceSpec = H100_SXM5,
    seed: int = 0,
) -> DistributedSketchResult:
    """Apply a block SRHT: an independent SRHT per row block, then reduce.

    This is the [Balabanov et al. 2023] construction referenced in Section 7:
    per-block FWHTs avoid the global memory-access pattern that makes a
    monolithic distributed SRHT impractical, at the cost of the SRHT's larger
    embedding dimension (``k = O(n log n)``) relative to the multisketch.
    """
    if comm.size != a.n_blocks:
        raise ValueError("communicator size must match the number of row blocks")
    numeric = a.is_numeric
    partials: List[Optional[np.ndarray]] = []
    compute: List[float] = []
    # Each per-rank SRHT preserves its block's norm and the independent sign
    # flips make the cross terms vanish in expectation, so the partial
    # results are summed without additional scaling (see BlockSRHT).
    scale = 1.0
    for rank in range(a.n_blocks):
        ex = _rank_executor(device, numeric, seed * 1000 + rank)
        rows, _ = a.block_shape(rank)
        if rows < k:
            raise ValueError(f"rank {rank} owns {rows} rows < k={k}; use fewer blocks or smaller k")
        sketch = SRHT(rows, k, executor=ex, seed=seed * 1000 + rank)
        block = a.block(rank)
        if numeric:
            partials.append(scale * sketch.sketch_host(block))
        else:
            dev = ex.empty(a.block_shape(rank), label="A_block")
            sketch.apply(dev)
            partials.append(None)
        compute.append(ex.elapsed)
    before = comm.total_time()
    bytes_before = comm.total_bytes()
    result = comm.reduce_sum(partials)
    return DistributedSketchResult(
        method="block_srht",
        sketch=result,
        per_rank_compute=compute,
        comm_seconds=comm.total_time() - before,
        comm_bytes=comm.total_bytes() - bytes_before,
        k=k,
    )
