"""Block-row distributed matrices.

Section 7 assumes ``A in R^{d x n}`` is distributed across ``p`` processes in
block-row format: process ``i`` owns the contiguous row block ``A^(i)``.
:class:`BlockRowMatrix` captures that layout; it stores the blocks in one
process (this is a simulation) but only ever exposes per-rank views, so the
sketching code in :mod:`repro.distributed.dist_sketch` is forced to follow
the same communication pattern a real MPI implementation would.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class BlockRowMatrix:
    """A dense matrix partitioned row-wise across ``p`` ranks.

    Parameters
    ----------
    blocks:
        One 2-D array per rank (all with the same number of columns), or
        ``None`` entries in analytic mode (then ``block_shapes`` is required).
    block_shapes:
        Shapes of the per-rank blocks when running analytically.
    """

    def __init__(
        self,
        blocks: Sequence[Optional[np.ndarray]],
        block_shapes: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        if not blocks:
            raise ValueError("at least one block is required")
        self._blocks: List[Optional[np.ndarray]] = [
            None if b is None else np.asarray(b) for b in blocks
        ]
        if block_shapes is None:
            if any(b is None for b in self._blocks):
                raise ValueError("block_shapes is required when blocks are analytic (None)")
            block_shapes = [b.shape for b in self._blocks]
        self._shapes = [tuple(int(x) for x in s) for s in block_shapes]
        ncols = {s[1] for s in self._shapes}
        if len(ncols) != 1:
            raise ValueError("all blocks must have the same number of columns")
        for b, s in zip(self._blocks, self._shapes):
            if b is not None and b.shape != s:
                raise ValueError(f"block shape {b.shape} does not match declared {s}")

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, a: np.ndarray, n_blocks: int) -> "BlockRowMatrix":
        """Partition a host matrix into ``n_blocks`` near-equal row blocks."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        if n_blocks <= 0 or n_blocks > a.shape[0]:
            raise ValueError("invalid number of blocks")
        splits = np.array_split(np.arange(a.shape[0]), n_blocks)
        return cls([a[idx, :] for idx in splits])

    @classmethod
    def analytic(cls, d: int, n: int, n_blocks: int) -> "BlockRowMatrix":
        """Shape-only block-row matrix for analytic cost sweeps."""
        bounds = np.linspace(0, d, n_blocks + 1, dtype=int)
        shapes = [(int(bounds[i + 1] - bounds[i]), n) for i in range(n_blocks)]
        return cls([None] * n_blocks, block_shapes=shapes)

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Number of ranks / row blocks."""
        return len(self._shapes)

    @property
    def shape(self) -> Tuple[int, int]:
        """Global shape ``(d, n)``."""
        d = sum(s[0] for s in self._shapes)
        return d, self._shapes[0][1]

    @property
    def is_numeric(self) -> bool:
        """Whether every block carries data."""
        return all(b is not None for b in self._blocks)

    def block(self, rank: int) -> Optional[np.ndarray]:
        """The row block owned by ``rank`` (or None in analytic mode)."""
        return self._blocks[rank]

    def block_shape(self, rank: int) -> Tuple[int, int]:
        """Shape of the row block owned by ``rank``."""
        return self._shapes[rank]

    def block_rows(self, rank: int) -> int:
        """Number of rows owned by ``rank``."""
        return self._shapes[rank][0]

    def gather(self) -> np.ndarray:
        """Reassemble the global matrix (numeric mode only; testing helper)."""
        if not self.is_numeric:
            raise RuntimeError("cannot gather an analytic BlockRowMatrix")
        return np.vstack([b for b in self._blocks])
