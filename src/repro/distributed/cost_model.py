"""Closed-form communication-cost comparison for distributed sketching.

Section 7's argument, made executable: for a block-row distributed
``A in R^{d x n}`` on ``p`` processes, every sketch reduces one ``k x n``
partial result per process, so the communication volume is proportional to
its embedding dimension ``k``:

* Gaussian:      ``k = 2 n``       -> message ``2 n^2`` values
* CountSketch:   ``k = 2 n^2``     -> message ``2 n^3`` values (largest)
* Multisketch:   ``k = 2 n``       -> message ``2 n^2`` values, plus a
  broadcast of the small ``2n x 2n^2`` second-stage Gaussian
* Block SRHT:    ``k = O(n log n)`` -> message ``~ 2 n^2 log n`` values

Combined with the per-process apply cost from the single-GPU model, this
reproduces the paper's conclusion that the multisketch "will almost certainly
outperform the Gaussian in a distributed setting as well".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.distributed.comm import CommCostModel


@dataclass(frozen=True)
class DistributedCostEstimate:
    """Analytic cost estimate for one sketch family on ``p`` processes.

    ``per_process_flops`` is the closed-form arithmetic each rank performs to
    apply its local sketch (Table 1's per-sketch counts at ``d/p`` rows).
    Unlike simulated wall-clock measurements -- which are launch-overhead
    dominated and therefore noisy at small problem sizes -- this quantity is
    deterministic, so Section 7's "the multisketch beats the Gaussian per
    rank" conclusion can be asserted on it directly.
    """

    method: str
    embedding_dim: int
    message_bytes: float
    broadcast_bytes: float
    comm_seconds: float
    per_process_read_write_bytes: float
    per_process_flops: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "embedding_dim": self.embedding_dim,
            "message_bytes": self.message_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "comm_seconds": self.comm_seconds,
            "per_process_read_write_bytes": self.per_process_read_write_bytes,
            "per_process_flops": self.per_process_flops,
        }


def sketch_communication_volume(
    method: str,
    d: int,
    n: int,
    p: int,
    *,
    itemsize: int = 8,
    cost_model: Optional[CommCostModel] = None,
) -> DistributedCostEstimate:
    """Communication volume and time for one sketch family (Section 7).

    ``per_process_read_write_bytes`` is the dominant local memory traffic
    (each process streams its own ``(d/p) x n`` block at least once), which
    is the quantity the single-GPU results of Section 6.2 rank.
    """
    if d <= 0 or n <= 0 or p <= 0:
        raise ValueError("d, n, p must be positive")
    if cost_model is None:
        cost_model = CommCostModel()
    method_l = method.lower()
    rows_per_proc = d / p
    local_stream = rows_per_proc * n * itemsize

    if method_l in ("gaussian", "gauss"):
        k = 2 * n
        message = float(k) * n * itemsize
        # Dense GEMM: 2 (d/p) n k flops per rank (Table 1's O(d n^2)).
        flops = 2.0 * rows_per_proc * n * k
        return DistributedCostEstimate(
            "gaussian", k, message, 0.0, cost_model.reduce_time(message, p), 2.0 * local_stream, flops
        )
    if method_l in ("countsketch", "count"):
        k = 2 * n * n
        message = float(k) * n * itemsize
        # One signed add per entry of the local block (Algorithm 2).
        flops = rows_per_proc * n
        return DistributedCostEstimate(
            "countsketch", k, message, 0.0, cost_model.reduce_time(message, p), 2.0 * local_stream, flops
        )
    if method_l in ("multisketch", "multi", "count_gauss"):
        k1, k2 = 2 * n * n, 2 * n
        message = float(k2) * n * itemsize
        broadcast = float(k2) * k1 * itemsize
        seconds = cost_model.reduce_time(message, p) + cost_model.broadcast_time(broadcast, p)
        # CountSketch pass over the local block plus the small second-stage
        # GEMM on the k1 x n intermediate: O(d n / p + n^4).  The clamp
        # mirrors dist_sketch.distributed_multisketch, whose per-rank
        # CountSketch embeds into local_k1 = min(k1, rows) (a sketch cannot
        # expand its input), so the GEMM it runs is over that many rows.
        flops = rows_per_proc * n + 2.0 * float(min(k1, rows_per_proc)) * n * k2
        return DistributedCostEstimate(
            "multisketch", k2, message, broadcast, seconds, 2.0 * local_stream, flops
        )
    if method_l in ("block_srht", "srht"):
        k = int(math.ceil(2 * n * max(math.log2(max(n, 2)), 1.0)))
        message = float(k) * n * itemsize
        # The per-block FWHT makes several passes over the local block.
        passes = max(math.log2(max(rows_per_proc, 2)) / 2.0, 1.0)
        # Butterfly adds: (d/p) log2(d/p) per column, plus the sign flip.
        flops = rows_per_proc * n * (max(math.log2(max(rows_per_proc, 2)), 1.0) + 1.0)
        return DistributedCostEstimate(
            "block_srht", k, message, 0.0, cost_model.reduce_time(message, p),
            2.0 * local_stream * passes, flops
        )
    raise ValueError(f"unknown method '{method}'")


def communication_table(
    d: int,
    n: int,
    p_values: Iterable[int],
    *,
    methods: Iterable[str] = ("gaussian", "countsketch", "multisketch", "block_srht"),
    cost_model: Optional[CommCostModel] = None,
) -> List[DistributedCostEstimate]:
    """Sweep process counts and methods; one estimate per (p, method)."""
    out: List[DistributedCostEstimate] = []
    for p in p_values:
        for m in methods:
            out.append(sketch_communication_volume(m, d, n, p, cost_model=cost_model))
    return out
