"""Subsampled Randomized Hadamard Transform (SRHT).

Definition 5.1 of the paper: ``S = (1/sqrt(k)) P H_d D`` where ``D`` flips
signs, ``H_d`` is the (unnormalised) Hadamard transform applied with the
radix-4 FWHT of Algorithm 3, and ``P`` samples ``k`` rows uniformly without
replacement.

Performance model (Section 5): the FWHT dominates.  Each early butterfly
stage reads and writes the whole ``d x n`` matrix from global memory; once
the butterfly working set fits in shared memory the remaining stages are
fused into one final pass.  Everything runs in column-major order because the
FWHT's access pattern coalesces better that way, even though the sign flip
and row sampling would prefer row-major -- converting the matrix would cost
more than it saves, exactly as the paper argues.

The :class:`BlockSRHT` variant (Section 7, [Balabanov et al. 2023]) applies
an independent SRHT to each block of rows, which is the form that makes sense
on distributed machines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SketchOperator
from repro.core.fwht import fwht_global_passes, fwht_matrix, fwht_num_stages, next_power_of_two
from repro.gpu.arrays import DeviceArray
from repro.gpu.kernels import KernelClass, KernelRequest


class SRHT(SketchOperator):
    """Subsampled randomized Hadamard transform ``S in R^{k x d}``.

    Parameters
    ----------
    d, k:
        Input and embedding dimension.  The paper uses ``k = 2 n``; theory
        asks for ``k = O(n log n)`` but ``O(n)`` suffices in practice
        (Section 1).  ``d`` is internally padded to the next power of two,
        matching the paper's assumption that ``log2 d`` is an integer.
    executor, seed, dtype:
        See :class:`~repro.core.base.SketchOperator`.
    """

    family = "srht"

    def __init__(
        self,
        d: int,
        k: int,
        *,
        executor=None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(d, k, executor=executor, seed=seed, dtype=dtype)
        self._d_pad = next_power_of_two(d)
        self._signs: Optional[DeviceArray] = None
        self._sample: Optional[DeviceArray] = None

    # ------------------------------------------------------------------
    @property
    def padded_dim(self) -> int:
        """Power-of-two dimension the FWHT actually runs on."""
        return self._d_pad

    def _generate_impl(self) -> None:
        ex = self._ex
        self._signs = ex.rand.rademacher(
            self._d, as_bool=False, label="srht_signs", generator=self.generator
        )
        self._sample = ex.rand.sample_without_replacement(
            self._d_pad, self._k, label="srht_sample", generator=self.generator
        )

    # ------------------------------------------------------------------
    def _charge_sign_flip(self, n: int) -> None:
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="srht_sign_flip",
                kclass=KernelClass.STREAM,
                bytes_read=float(self._d) * n * itemsize + float(self._d),
                bytes_written=float(self._d_pad) * n * itemsize,
                flops=float(self._d) * n,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    def _charge_fwht(self, n: int) -> None:
        """Charge the staged radix-4 FWHT on an ``d_pad x n`` matrix."""
        dev = self._ex.device
        itemsize = self._dtype.itemsize
        smem_elems = dev.shared_memory_per_block // itemsize
        passes = fwht_global_passes(self._d_pad, smem_elems, radix=4)
        stages = fwht_num_stages(self._d_pad, radix=4)
        bytes_per_pass = 2.0 * self._d_pad * n * itemsize
        # log2(d) add/sub per element overall, independent of the radix.
        flops = float(self._d_pad) * n * max(np.log2(self._d_pad), 1.0)
        self._ex.launch(
            KernelRequest(
                name="fwht_radix4",
                kclass=KernelClass.FWHT,
                bytes_read=passes * bytes_per_pass / 2.0,
                bytes_written=passes * bytes_per_pass / 2.0,
                flops=flops,
                launches=max(stages, 1),
                syncs=max(stages, 1),
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    def _charge_sample(self, n: int) -> None:
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="srht_row_sample",
                kclass=KernelClass.STREAM,
                bytes_read=float(self._k) * n * itemsize + float(self._k) * 8,
                bytes_written=float(self._k) * n * itemsize,
                flops=float(self._k) * n,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    # ------------------------------------------------------------------
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        ex = self._ex
        n = a.shape[1]
        out = ex.empty((self._k, n), dtype=self._dtype, order="F", label="srht_out")

        if ex.numeric and a.is_numeric:
            work = np.zeros((self._d_pad, n), dtype=self._dtype)
            signs = self._signs.data.astype(self._dtype)
            work[: self._d, :] = a.data * signs[:, None]
            transformed = fwht_matrix(work)
            sample = self._sample.data
            out.data[...] = transformed[sample, :] / np.sqrt(self._k)

        phase = ex.clock.current_phase() or "Matrix sketch"
        with ex.phase(phase):
            self._charge_sign_flip(n)
            self._charge_fwht(n)
            self._charge_sample(n)
        return out

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        ex = self._ex
        out = ex.empty((self._k,), dtype=self._dtype, label="srht_vec_out")
        if ex.numeric and b.is_numeric:
            work = np.zeros(self._d_pad, dtype=self._dtype)
            work[: self._d] = b.data * self._signs.data.astype(self._dtype)
            transformed = fwht_matrix(work.reshape(-1, 1)).ravel()
            out.data[...] = transformed[self._sample.data] / np.sqrt(self._k)

        phase = ex.clock.current_phase() or "Vector sketch"
        with ex.phase(phase):
            self._charge_sign_flip(1)
            self._charge_fwht(1)
            self._charge_sample(1)
        return out


class BlockSRHT(SketchOperator):
    """Block SRHT for distributed settings (Section 7).

    The input rows are partitioned into ``n_blocks`` contiguous blocks and an
    *independent* SRHT with the same output dimension ``k`` is applied to
    each block; the block results are summed.  Each per-block SRHT preserves
    the expected norm of its own block and the cross terms vanish in
    expectation (the sign-flip matrices are independent and zero mean), so
    the sum preserves ``E||Sx||^2 = ||x||^2`` without additional scaling.
    This keeps every FWHT local to its block -- which is what makes the
    transform practical on a distributed machine -- while remaining an
    oblivious subspace embedding with ``k = O(n log n)``
    [Balabanov et al. 2023].
    """

    family = "block-srht"

    def __init__(
        self,
        d: int,
        k: int,
        *,
        n_blocks: int = 4,
        executor=None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(d, k, executor=executor, seed=seed, dtype=dtype)
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if d // n_blocks < k:
            raise ValueError(
                f"each of the {n_blocks} blocks must have at least k={k} rows; "
                f"d={d} is too small"
            )
        self.n_blocks = int(n_blocks)
        self._blocks: list[SRHT] = []
        self._block_slices: list[slice] = []

    def _cache_key_extra(self) -> tuple:
        # The block partition changes the sketch: same (d, k, seed) with a
        # different n_blocks draws different per-block sign/sample state.
        return (self.n_blocks,)

    def _generate_impl(self) -> None:
        bounds = np.linspace(0, self._d, self.n_blocks + 1, dtype=int)
        self._blocks = []
        self._block_slices = []
        for i in range(self.n_blocks):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            self._block_slices.append(slice(lo, hi))
            seed = None if self._seed is None else self._seed * 1000 + i
            block = SRHT(hi - lo, self._k, executor=self._ex, seed=seed, dtype=self._dtype)
            block.generate()
            self._blocks.append(block)

    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        ex = self._ex
        n = a.shape[1]
        out = ex.zeros((self._k, n), dtype=self._dtype, order="F", label="block_srht_out")
        scale = 1.0
        for block, sl in zip(self._blocks, self._block_slices):
            sub = ex.empty((sl.stop - sl.start, n), dtype=self._dtype, order=a.order, label="block_rows")
            if ex.numeric and a.is_numeric:
                sub.data[...] = a.data[sl, :]
            y = block._apply_impl(sub)
            if ex.numeric and out.is_numeric and y.is_numeric:
                out.data += scale * y.data
            ex.launch(
                KernelRequest(
                    name="block_srht_accumulate",
                    kclass=KernelClass.STREAM,
                    bytes_read=2.0 * y.nbytes,
                    bytes_written=float(out.nbytes),
                    flops=2.0 * y.size,
                    dtype_size=self._dtype.itemsize,
                    phase=ex.clock.current_phase() or "Matrix sketch",
                )
            )
        return out
