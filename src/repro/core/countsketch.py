"""CountSketch operators.

The CountSketch (Definition 4.1 of the paper, originally [Charikar et al.
2002]) is the cheapest known subspace embedding: ``S`` has exactly one
``+/-1`` per column, so ``S @ A`` touches every entry of ``A`` exactly once.

Three implementations are provided, mirroring the paper:

:class:`CountSketch` with ``variant="atomic"``
    The paper's Algorithm 2: a single kernel where thread ``j`` atomically
    adds (or subtracts, controlled by a boolean) row ``A[j, :]`` into row
    ``r_j`` of the output.  This is the high-performance implementation whose
    cost model achieves ~50-60% of peak bandwidth (Figure 3).

:class:`CountSketch` with ``variant="spmm"``
    The baseline: the sketch is stored as an explicit CSR matrix and applied
    with a cuSPARSE-style SpMM, achieving only ~20% of peak because of the
    random gather pattern.

:class:`StreamingCountSketch`
    The future-work variant of Section 8: the row map and signs are derived
    on the fly from a hash of the row index, so nothing but the seed needs to
    be stored and rows can be consumed from a stream.

Numerical note: in numeric mode both CountSketch variants evaluate the
product through the same sparse representation, so their outputs are
bit-identical; they differ only in the simulated kernels they charge, which
is exactly the comparison the paper makes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.base import (
    PHASE_SKETCH_GEN,
    SketchOperator,
)
from repro.core.sampling import hashed_row_map_and_signs, signs_to_values
from repro.gpu.arrays import DeviceArray
from repro.gpu.kernels import KernelClass, KernelRequest

#: Largest input dimension ``d`` for which the hashed streaming sketch will
#: materialise per-index state (``np.arange(d)``, explicit CSR, dense
#: matrices).  The streaming window engines construct their sketches with
#: ``d = STREAM_CAPACITY = 2^48`` -- an *address space* for row indices, not
#: a real matrix height -- so any whole-domain operation on them would try a
#: multi-terabyte allocation.  2^27 int64 indices is one GiB: past that the
#: operation is a bug, not a request.
DENSIFY_LIMIT = 1 << 27


class SketchMaterializationError(RuntimeError):
    """A whole-domain operation was asked of a sketch too large to densify.

    Raised by :class:`StreamingCountSketch` when ``explicit_matrix()`` /
    ``apply()`` / ``apply_vector()`` would enumerate every index of a domain
    above :data:`DENSIFY_LIMIT` (the streaming windows' ``2^48`` capacity
    sketches being the motivating case).  Streaming callers should use
    :meth:`StreamingCountSketch.update` with explicit row indices instead.
    """


class CountSketch(SketchOperator):
    """CountSketch operator ``S in R^{k x d}`` with one ``+/-1`` per column.

    Parameters
    ----------
    d, k:
        Input and embedding dimensions.  The paper uses ``k = 2 n^2`` to
        guarantee the subspace-embedding property for ``n``-column matrices.
    variant:
        ``"atomic"`` for the paper's Algorithm 2 kernel (default) or
        ``"spmm"`` for the cuSPARSE baseline.
    executor, seed, dtype:
        See :class:`~repro.core.base.SketchOperator`.
    """

    family = "countsketch"

    _VARIANTS = ("atomic", "spmm")

    def __init__(
        self,
        d: int,
        k: int,
        *,
        variant: str = "atomic",
        executor=None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(d, k, executor=executor, seed=seed, dtype=dtype)
        variant = variant.lower()
        if variant not in self._VARIANTS:
            raise ValueError(f"variant must be one of {self._VARIANTS}, got '{variant}'")
        self.variant = variant
        self._row_map: Optional[DeviceArray] = None
        self._signs: Optional[DeviceArray] = None
        self._csr = None  # DeviceCSR for the SpMM variant / numeric engine

    # ------------------------------------------------------------------
    # random state
    # ------------------------------------------------------------------
    def _generate_impl(self) -> None:
        ex = self._ex
        # d uniform integers (the row map) and d Rademacher booleans: this is
        # all the random state Algorithm 2 needs, and is why the paper's
        # "Sketch gen" bar for the CountSketch is negligible.
        self._row_map = ex.rand.uniform_integers(
            0, self._k, self._d, dtype=np.int32, label="cs_row_map", generator=self.generator
        )
        self._signs = ex.rand.rademacher(
            self._d, as_bool=True, label="cs_signs", generator=self.generator
        )

        if self.variant == "spmm":
            # The SpMM baseline additionally has to assemble the explicit CSR
            # sketch on the device, which is charged to "Sketch gen" as well.
            rows = self._row_map.data if self._row_map.is_numeric else None
            cols = np.arange(self._d) if rows is not None else None
            vals = (
                signs_to_values(self._signs.data, self._dtype)
                if self._signs is not None and self._signs.is_numeric
                else None
            )
            self._csr = ex.sparse.build_csr(
                (self._k, self._d), rows, cols, vals, nnz=self._d, dtype=self._dtype, label="cs_csr"
            )
        elif ex.numeric:
            # Numeric engine for the atomic variant: the arithmetic of
            # Algorithm 2 is identical to multiplying by the explicit sparse
            # S, so we evaluate it that way without charging SpMM kernels.
            vals = signs_to_values(self._signs.data, self._dtype)
            self._numeric_matrix = sp.csr_matrix(
                (vals, (self._row_map.data.astype(np.int64), np.arange(self._d))),
                shape=(self._k, self._d),
            )
        if ex.numeric and self.variant == "spmm":
            self._numeric_matrix = self._csr.matrix

    def _cache_key_extra(self) -> tuple:
        return (self.variant,)

    # ------------------------------------------------------------------
    @property
    def row_map(self) -> np.ndarray:
        """The row map ``r`` (host copy, numeric mode only)."""
        self.generate()
        return self._row_map.require_data().copy()

    @property
    def signs(self) -> np.ndarray:
        """The boolean sign vector ``s`` (host copy, numeric mode only)."""
        self.generate()
        return self._signs.require_data().copy()

    def sparse_matrix(self) -> sp.csr_matrix:
        """The explicit sparse ``k x d`` sketch matrix (numeric mode only)."""
        self.generate()
        if not self._ex.numeric:
            raise RuntimeError("sparse_matrix() requires a numeric executor")
        return self._numeric_matrix.copy()

    def explicit_matrix(self) -> np.ndarray:
        """Dense ``k x d`` sketch matrix (testing helper)."""
        return self.sparse_matrix().toarray().astype(self._dtype)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        if self.variant == "spmm":
            return self._ex.sparse.spmm(self._csr, a, phase=self._ex.clock.current_phase() or "Matrix sketch")
        return self._apply_atomic(a)

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        if self.variant == "spmm":
            return self._ex.sparse.spmv(self._csr, b, phase=self._ex.clock.current_phase() or "Vector sketch")
        return self._apply_atomic_vector(b)

    # -- Algorithm 2 ----------------------------------------------------
    def _apply_atomic(self, a: DeviceArray) -> DeviceArray:
        """The paper's Algorithm 2 applied to a ``d x n`` matrix.

        Memory traffic charged (all in one kernel, a single pass over ``A``):

        * reads: ``d*n`` floats (the matrix), ``d`` int32 (row map),
          ``d`` booleans (signs);
        * writes: ``d*n`` floats -- every input row triggers an atomic add of
          ``n`` values into the output;
        * flops: ``d*n`` additions.
        """
        ex = self._ex
        n = a.shape[1]
        y = ex.empty((self._k, n), dtype=self._dtype, order="C", label="countsketch_out")
        if ex.numeric and a.is_numeric:
            y.data[...] = self._numeric_matrix @ a.data

        itemsize = self._dtype.itemsize
        ex.launch(
            KernelRequest(
                name="countsketch_atomic",
                kclass=KernelClass.ATOMIC,
                bytes_read=float(self._d) * n * itemsize + float(self._d) * (4 + 1),
                bytes_written=float(self._d) * n * itemsize,
                flops=float(self._d) * n,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )
        # The output of Algorithm 2 is produced in row-major order; the
        # output handle records that so downstream consumers (cuSOLVER wants
        # column-major) charge the conversion exactly where the paper does.
        return y

    def _apply_atomic_vector(self, b: DeviceArray) -> DeviceArray:
        """Algorithm 2 applied to a single vector (the right-hand side)."""
        ex = self._ex
        out = ex.empty((self._k,), dtype=self._dtype, label="countsketch_vec_out")
        if ex.numeric and b.is_numeric:
            out.data[...] = self._numeric_matrix @ b.data
        itemsize = self._dtype.itemsize
        ex.launch(
            KernelRequest(
                name="countsketch_atomic_vec",
                kclass=KernelClass.ATOMIC,
                bytes_read=float(self._d) * itemsize + float(self._d) * (4 + 1),
                bytes_written=float(self._d) * itemsize,
                flops=float(self._d),
                dtype_size=itemsize,
                phase="Vector sketch",
            )
        )
        return out


class StreamingCountSketch(SketchOperator):
    """Hash-based CountSketch that derives its random state on the fly.

    Section 8 of the paper proposes building the CountSketch "on the fly
    using a hash-based strategy, as was intended in the original CountSketch
    paper", trading a little extra compute in the kernel for zero stored
    random state -- which is what a streaming application needs.

    The operator never materialises the row map or sign vectors: both are
    recomputed from ``splitmix64(row_index, seed)`` whenever rows arrive.
    Rows may be consumed incrementally with :meth:`update` / :meth:`result`,
    or all at once through the standard :meth:`apply` interface.
    """

    family = "countsketch-streaming"

    def __init__(
        self,
        d: int,
        k: int,
        *,
        executor=None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(d, k, executor=executor, seed=seed, dtype=dtype)
        self._hash_seed = 0 if seed is None else int(seed)
        self._accumulator: Optional[DeviceArray] = None
        self._rows_seen = 0

    def _generate_impl(self) -> None:
        # Nothing to generate: the whole point of the hash-based variant.
        # A tiny kernel is charged for initialising the hash constants.
        self._ex.launch(
            KernelRequest(
                name="hash_setup",
                kclass=KernelClass.STREAM,
                bytes_written=64.0,
                phase=PHASE_SKETCH_GEN,
            )
        )

    # ------------------------------------------------------------------
    def row_map_and_signs(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Recompute (target rows, signs) for the given input-row indices."""
        return hashed_row_map_and_signs(np.asarray(indices), self._k, self._hash_seed)

    def _check_densifiable(self, operation: str) -> None:
        """Refuse whole-domain operations on address-space-sized sketches."""
        if self._d > DENSIFY_LIMIT:
            raise SketchMaterializationError(
                f"{operation} would enumerate all d={self._d} input indices "
                f"(limit {DENSIFY_LIMIT}); a sketch this large is a streaming "
                f"address space -- feed it batches through update() instead"
            )

    def explicit_matrix(self) -> np.ndarray:
        """Dense ``k x d`` matrix equivalent of the hashed sketch."""
        self._check_densifiable("explicit_matrix()")
        rows, signs = self.row_map_and_signs(np.arange(self._d))
        vals = signs_to_values(signs, self._dtype)
        mat = sp.csr_matrix((vals, (rows, np.arange(self._d))), shape=(self._k, self._d))
        return mat.toarray().astype(self._dtype)

    # ------------------------------------------------------------------
    def begin(self, n_cols: int) -> None:
        """Start a streaming pass producing a ``k x n_cols`` sketch."""
        self._accumulator = self._ex.zeros((self._k, int(n_cols)), dtype=self._dtype, label="stream_acc")
        self._rows_seen = 0

    def update(self, row_indices: Iterable[int], rows: Optional[np.ndarray]) -> None:
        """Consume a batch of rows ``A[row_indices, :]`` from the stream.

        ``rows`` may be ``None`` in analytic mode; otherwise it must have one
        row per index.  An empty batch is a clean no-op: nothing is hashed
        and no kernel is launched.
        """
        if self._accumulator is None:
            raise RuntimeError("call begin() before update()")
        if isinstance(row_indices, np.ndarray):
            idx = row_indices.astype(np.int64, copy=False).ravel()
        else:
            idx = np.fromiter(row_indices, dtype=np.int64)
        batch = idx.shape[0]
        if batch == 0:
            return
        if np.any(idx < 0) or np.any(idx >= self._d):
            raise ValueError("row indices out of range")
        n = self._accumulator.shape[1]
        self._rows_seen += batch

        if self._ex.numeric and rows is not None and self._accumulator.is_numeric:
            rows = np.atleast_2d(np.asarray(rows, dtype=self._dtype))
            if rows.shape != (batch, n):
                raise ValueError(f"expected rows of shape {(batch, n)}, got {rows.shape}")
            targets, signs = self.row_map_and_signs(idx)
            signed = np.where(signs[:, None], rows, -rows)
            np.add.at(self._accumulator.data, targets, signed)

        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="countsketch_stream_update",
                kclass=KernelClass.ATOMIC,
                bytes_read=float(batch) * n * itemsize + float(batch) * 8,
                bytes_written=float(batch) * n * itemsize,
                flops=float(batch) * n + 8.0 * batch,  # adds + hash arithmetic
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    @property
    def rows_seen(self) -> int:
        """Rows consumed by the current pass (0 outside a pass)."""
        return self._rows_seen

    def merge_from(self, other: "StreamingCountSketch") -> None:
        """Fold another in-progress pass into this one (sketch linearity).

        The hashed row map and signs are pure functions of the global row
        index and the seed, so for two passes over *disjoint* row sets the
        sum of their accumulators is exactly the sketch of the union.  This
        is the merge hook the sliding-window streaming engine uses to
        combine its ring of sub-sketches on demand; one pass over both
        ``k x n`` accumulators is charged.
        """
        if self._accumulator is None or other._accumulator is None:
            raise RuntimeError("both sketches must be mid-pass to merge")
        if (self._k, self._hash_seed, self._dtype) != (
            other._k,
            other._hash_seed,
            other._dtype,
        ):
            raise ValueError("can only merge sketches with identical hashed state")
        if self._accumulator.shape != other._accumulator.shape:
            raise ValueError("can only merge sketches with equal column counts")
        if self._accumulator.is_numeric != other._accumulator.is_numeric:
            # Adding rows_seen without adding data (or vice versa) would
            # leave a sketch that claims rows it does not contain.
            raise ValueError("cannot merge numeric and analytic sketch passes")
        if self._accumulator.is_numeric:
            self._accumulator.data += other._accumulator.data
        self._rows_seen += other._rows_seen
        k, n = self._accumulator.shape
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="countsketch_stream_merge",
                kclass=KernelClass.STREAM,
                bytes_read=2.0 * k * n * itemsize,
                bytes_written=float(k) * n * itemsize,
                flops=float(k) * n,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    def scale(self, alpha: float) -> None:
        """Scale the accumulated sketch in place (exponential-decay hook).

        ``S`` is linear, so scaling the accumulator is the same as scaling
        every row consumed so far -- which is how the decay-weighted
        streaming engine down-weights history before folding a new batch in.
        """
        if self._accumulator is None:
            raise RuntimeError("call begin() before scale()")
        if self._ex.numeric and self._accumulator.is_numeric:
            self._accumulator.data *= float(alpha)
        k, n = self._accumulator.shape
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="countsketch_stream_scale",
                kclass=KernelClass.STREAM,
                bytes_read=float(k) * n * itemsize,
                bytes_written=float(k) * n * itemsize,
                flops=float(k) * n,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    def snapshot(self) -> Optional[np.ndarray]:
        """Host copy of the accumulator without closing the pass.

        Returns ``None`` in analytic mode (there is no numeric state).  The
        streaming engine reads this at every lazy re-solve; the pass keeps
        accepting :meth:`update` calls afterwards.
        """
        if self._accumulator is None:
            raise RuntimeError("no streaming pass in progress")
        if not (self._ex.numeric and self._accumulator.is_numeric):
            return None
        return self._accumulator.to_host()

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The pass's durable state: everything a restore needs beyond the seed.

        The row map and signs are pure functions of ``(row_index, seed)``,
        so the only durable payload is the accumulator itself plus the rows
        consumed so far.  Requires an in-progress pass.
        """
        if self._accumulator is None:
            raise RuntimeError("no streaming pass in progress")
        numeric = bool(self._ex.numeric and self._accumulator.is_numeric)
        return {
            "rows_seen": int(self._rows_seen),
            "n_cols": int(self._accumulator.shape[1]),
            "numeric": numeric,
            "accumulator": self._accumulator.to_host() if numeric else None,
        }

    def load_state(self, state: dict) -> None:
        """Reopen a pass from a :meth:`state_dict` snapshot.

        The restored pass is bit-identical to the snapshotted one: the same
        accumulator contents and rows-seen counter, and (because the hashed
        row map depends only on index and seed) identical behaviour for
        every subsequent :meth:`update`.  A small restore kernel is charged
        for staging the accumulator back onto the device.
        """
        self.generate()
        self.begin(int(state["n_cols"]))
        acc = state.get("accumulator")
        if acc is not None:
            if not (self._ex.numeric and self._accumulator.is_numeric):
                raise ValueError("cannot restore a numeric snapshot onto an analytic executor")
            arr = np.asarray(acc, dtype=self._dtype)
            if arr.shape != tuple(self._accumulator.shape):
                raise ValueError(
                    f"snapshot accumulator shape {arr.shape} does not match pass shape "
                    f"{tuple(self._accumulator.shape)}"
                )
            self._accumulator.data[...] = arr
        elif state.get("numeric") and self._ex.numeric:
            raise ValueError("numeric snapshot is missing its accumulator payload")
        self._rows_seen = int(state["rows_seen"])
        k, n = self._accumulator.shape
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="countsketch_stream_restore",
                kclass=KernelClass.STREAM,
                bytes_written=float(k) * n * itemsize,
                dtype_size=itemsize,
                phase="Matrix sketch",
            )
        )

    def result(self) -> DeviceArray:
        """Finish the streaming pass and return the accumulated sketch."""
        if self._accumulator is None:
            raise RuntimeError("no streaming pass in progress")
        out = self._accumulator
        self._accumulator = None
        self._rows_seen = 0
        return out

    # ------------------------------------------------------------------
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        """One-shot application: stream all rows in a single batch."""
        self._check_densifiable("apply()")
        self.begin(a.shape[1])
        self.update(np.arange(self._d), a.data if a.is_numeric else None)
        return self.result()

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        self._check_densifiable("apply_vector()")
        ex = self._ex
        out = ex.empty((self._k,), dtype=self._dtype, label="stream_vec_out")
        if ex.numeric and b.is_numeric:
            rows, signs = self.row_map_and_signs(np.arange(self._d))
            vals = np.where(signs, b.data, -b.data)
            out.data[...] = np.bincount(rows, weights=vals, minlength=self._k).astype(self._dtype)
        itemsize = self._dtype.itemsize
        ex.launch(
            KernelRequest(
                name="countsketch_stream_vec",
                kclass=KernelClass.ATOMIC,
                bytes_read=float(self._d) * itemsize,
                bytes_written=float(self._d) * itemsize,
                flops=9.0 * self._d,
                dtype_size=itemsize,
                phase="Vector sketch",
            )
        )
        return out
