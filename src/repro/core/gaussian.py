"""Gaussian sketch applied with a dense GEMM.

The Gaussian sketch ``S in R^{k x d}`` has i.i.d. ``N(0, 1/k)`` entries
(Section 1 of the paper) and is the gold standard in terms of embedding
dimension (``k = O(n / eps^2)``), but it is the most expensive to apply:
``O(d n^2)`` arithmetic through a GEMM, plus the non-negligible cost of
generating ``k*d`` Gaussians and the memory to store them.  At the paper's
largest sizes the explicit Gaussian does not even fit on the 80 GB device
(the blank bars of Figures 2 and 5); the same
:class:`~repro.gpu.memory.DeviceOutOfMemoryError` is raised here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray


class GaussianSketch(SketchOperator):
    """Dense Gaussian sketch ``S`` with entries ``N(0, 1/k)``.

    Parameters
    ----------
    d, k:
        Input and embedding dimension; the paper uses ``k = 2 n``.
    executor, seed, dtype:
        See :class:`~repro.core.base.SketchOperator`.
    """

    family = "gaussian"

    def __init__(
        self,
        d: int,
        k: int,
        *,
        executor=None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(d, k, executor=executor, seed=seed, dtype=dtype)
        self._matrix: Optional[DeviceArray] = None

    # ------------------------------------------------------------------
    def _generate_impl(self) -> None:
        # k*d i.i.d. Gaussians, scaled by 1/sqrt(k) so that E||Sx||^2 = ||x||^2.
        # This is the allocation that can exhaust device memory at the
        # paper's largest (d, n) combinations.
        self._matrix = self._ex.rand.standard_normal(
            (self._k, self._d),
            dtype=self._dtype,
            scale=1.0 / np.sqrt(self._k),
            order="C",
            label="gaussian_sketch_matrix",
            generator=self.generator,
        )

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> DeviceArray:
        """The explicit ``k x d`` Gaussian matrix (device handle)."""
        self.generate()
        return self._matrix

    def explicit_matrix(self) -> np.ndarray:
        """Host copy of the dense sketch matrix (numeric mode only)."""
        self.generate()
        return self._matrix.to_host()

    # ------------------------------------------------------------------
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        """Apply the sketch with a single GEMM: ``Y = S @ A``."""
        return self._ex.blas.gemm(
            self._matrix,
            a,
            phase=self._ex.clock.current_phase() or "Matrix sketch",
            label="gaussian_sketch_out",
        )

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        """Apply the sketch to a vector with a GEMV."""
        return self._ex.blas.gemv(
            self._matrix,
            b,
            phase=self._ex.clock.current_phase() or "Vector sketch",
            label="gaussian_sketch_vec_out",
        )

    # ------------------------------------------------------------------
    def memory_required(self) -> float:
        """Device bytes the explicit sketch matrix will occupy once generated."""
        return float(self._k) * self._d * self._dtype.itemsize
