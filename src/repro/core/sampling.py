"""Random-state helpers shared by the sketch operators.

These helpers produce the primitive random objects the paper's sketches are
assembled from (Definition 4.1 and Definition 5.1):

* i.i.d. Rademacher sign vectors,
* uniform row maps (one target row in ``{0, ..., k-1}`` per input row),
* uniform row samples without replacement, and
* the 32/64-bit mixing hash used by the streaming CountSketch variant
  (Section 8 future work), which derives both the target row and the sign of
  an input row from its index alone so the sketch never has to be stored.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Multiplicative constants of the splitmix64 finaliser; used by the
#: hash-based streaming CountSketch so that row maps and signs can be
#: recomputed on the fly from the row index and a seed.
_SPLITMIX64_C1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX64_C2 = np.uint64(0x94D049BB133111EB)
_SPLITMIX64_INC = np.uint64(0x9E3779B97F4A7C15)


def rademacher_signs(rng: np.random.Generator, count: int, as_bool: bool = False) -> np.ndarray:
    """Draw ``count`` i.i.d. Rademacher variables.

    Returns ``+/-1`` int8 values, or booleans (True == +1) when ``as_bool``
    is set, matching the boolean-controlled add/subtract of Algorithm 2.
    """
    bits = rng.integers(0, 2, size=int(count), dtype=np.int8)
    if as_bool:
        return bits.astype(np.bool_)
    return (2 * bits - 1).astype(np.int8)


def uniform_row_map(rng: np.random.Generator, d: int, k: int, dtype=np.int64) -> np.ndarray:
    """Draw the CountSketch row map: ``d`` i.i.d. uniforms over ``{0, ..., k-1}``."""
    if k <= 0 or d <= 0:
        raise ValueError("dimensions must be positive")
    return rng.integers(0, k, size=int(d), dtype=np.int64).astype(dtype, copy=False)


def row_sample(rng: np.random.Generator, d: int, k: int) -> np.ndarray:
    """Sample ``k`` distinct row indices from ``range(d)`` (SRHT row sampling)."""
    if k > d:
        raise ValueError("cannot sample more rows than available")
    return np.sort(rng.choice(d, size=int(k), replace=False))


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over unsigned 64-bit inputs.

    A small, high-quality mixing function; each distinct input maps to a
    pseudo-random 64-bit output, which the streaming CountSketch splits into
    a row index and a sign bit.
    """
    z = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + _SPLITMIX64_INC).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _SPLITMIX64_C1
        z = (z ^ (z >> np.uint64(27))) * _SPLITMIX64_C2
        z = z ^ (z >> np.uint64(31))
    return z


def hashed_row_map_and_signs(
    indices: np.ndarray, k: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Derive (row map, signs) for the given row indices from a hash.

    This is the "build the CountSketch on the fly using a hash-based
    strategy" of the paper's future-work section: rather than storing the
    ``d``-long row map and sign vectors, both are recomputed from the row
    index whenever a row is streamed in.

    Returns
    -------
    rows:
        int64 array of target rows in ``{0, ..., k-1}``.
    signs:
        boolean array, True meaning +1.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    idx = np.asarray(indices, dtype=np.uint64)
    offset = np.uint64((int(seed) * 0x632BE59BD9B4E019) % (1 << 64))
    with np.errstate(over="ignore"):
        mixed = splitmix64(idx + offset)
    rows = (mixed >> np.uint64(1)) % np.uint64(k)
    signs = (mixed & np.uint64(1)).astype(np.bool_)
    return rows.astype(np.int64), signs


def signs_to_values(signs: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Convert a boolean/int8 sign representation to floating ``+/-1`` values."""
    signs = np.asarray(signs)
    if signs.dtype == np.bool_:
        return np.where(signs, 1.0, -1.0).astype(dtype)
    return np.sign(signs).astype(dtype)
