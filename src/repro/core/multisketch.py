"""Multisketching: composition of two (or more) sketch operators.

Section 1 of the paper: apply a cheap sketch ``S1`` that reduces the
dimension quickly (the CountSketch, to ``k1 = 2 n^2``), then a second sketch
``S2`` that brings the dimension down to its final small value (a Gaussian,
to ``k2 = 2 n``).  The composition is a subspace embedding with distortion
``(1 + eps1)(1 + eps2)`` (Table 1) and costs only ``O(d n + n^4)`` -- far less
than the ``O(d n^2)`` of a direct Gaussian sketch, and in practice faster
than computing the Gram matrix (Figure 2).

Implementation detail reproduced from Section 6.1: the Algorithm-2
CountSketch produces its output in row-major order, while cuBLAS wants
column-major.  Instead of transposing the large ``k1 x n`` intermediate, the
row-major buffer is reinterpreted as the column-major transpose and the
second sketch is applied as ``Z^T = Y^T G^T``; only the small ``k2 x n``
result is then transposed back.  The ``transpose_trick`` flag controls
whether this optimisation is used, so its effect can be measured (see the
ablation benchmark).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.base import SketchOperator, default_embedding_dim
from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.gpu.arrays import DeviceArray


class MultiSketch(SketchOperator):
    """Composition ``S = S_m ∘ ... ∘ S_2 ∘ S_1`` of sketch operators.

    Parameters
    ----------
    stages:
        Sketch operators to compose, listed in application order.  Stage
        ``i+1``'s input dimension must equal stage ``i``'s output dimension,
        and all stages must share the same executor.
    transpose_trick:
        Apply the Section-6.1 layout optimisation between a row-major
        producing stage (the CountSketch) and a GEMM stage (the Gaussian).
    """

    family = "multisketch"

    def __init__(
        self,
        stages: Sequence[SketchOperator],
        *,
        transpose_trick: bool = True,
    ) -> None:
        if len(stages) < 2:
            raise ValueError("a MultiSketch needs at least two stages")
        for first, second in zip(stages[:-1], stages[1:]):
            if second.d != first.k:
                raise ValueError(
                    f"stage dimensions do not chain: {type(first).__name__} outputs "
                    f"{first.k} rows but {type(second).__name__} expects {second.d}"
                )
            if second.executor is not first.executor:
                raise ValueError("all stages of a MultiSketch must share one executor")
        super().__init__(
            stages[0].d,
            stages[-1].k,
            executor=stages[0].executor,
            seed=stages[0].seed,
            dtype=stages[0].dtype,
        )
        self.stages = list(stages)
        self.transpose_trick = bool(transpose_trick)

    def _cache_key_extra(self) -> tuple:
        return tuple(stage.cache_key() for stage in self.stages) + (self.transpose_trick,)

    # ------------------------------------------------------------------
    def _generate_impl(self) -> None:
        for stage in self.stages:
            stage.generate()

    # ------------------------------------------------------------------
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        ex = self._ex
        phase = ex.clock.current_phase() or "Matrix sketch"
        current = a
        for i, stage in enumerate(self.stages):
            is_last = i == len(self.stages) - 1
            use_trick = (
                self.transpose_trick
                and isinstance(stage, GaussianSketch)
                and current.order == "C"
                and current is not a
            )
            if use_trick:
                # Reinterpret the row-major k1 x n intermediate as its
                # column-major transpose (free), apply the Gaussian through a
                # GEMM on the transposed operands, and transpose only the
                # small k2 x n result.
                y_t = current.with_order("F")  # shape (n, k1) column-major view
                z_t = ex.blas.gemm(
                    y_t,
                    stage.matrix,
                    trans_b=True,
                    phase=phase,
                    label="multisketch_zT",
                )  # (n, k2)
                current = ex.blas.transpose(z_t, phase=phase, label="multisketch_out")
            else:
                if (
                    not self.transpose_trick
                    and isinstance(stage, GaussianSketch)
                    and current.order == "C"
                    and current is not a
                ):
                    # Without the trick, the large row-major intermediate has
                    # to be converted to column-major before the GEMM stage:
                    # one full read+write pass over the k1 x n buffer.  The
                    # logical matrix is unchanged, so only the cost is charged.
                    from repro.gpu.kernels import KernelClass, KernelRequest

                    ex.launch(
                        KernelRequest(
                            name="layout_conversion",
                            kclass=KernelClass.STREAM,
                            bytes_read=current.nbytes,
                            bytes_written=current.nbytes,
                            dtype_size=current.itemsize,
                            phase=phase,
                        )
                    )
                    current.order = "F"
                current = stage._apply_impl(current)
        return current

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        current = b
        for stage in self.stages:
            current = stage._apply_vector_impl(current)
        return current

    # ------------------------------------------------------------------
    def explicit_matrix(self) -> np.ndarray:
        """Dense ``k x d`` matrix of the whole composition (testing helper)."""
        self.generate()
        mat = self.stages[0].explicit_matrix()
        for stage in self.stages[1:]:
            mat = stage.explicit_matrix() @ mat
        return mat


def count_gauss(
    d: int,
    n: int,
    *,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    countsketch_variant: str = "atomic",
    transpose_trick: bool = True,
    executor=None,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> MultiSketch:
    """Build the paper's Count-Gauss multisketch for a ``d x n`` problem.

    Defaults follow Section 6.2: a CountSketch to ``k1 = 2 n^2`` (clipped to
    ``d``) followed by a Gaussian to ``k2 = 2 n``.

    Parameters
    ----------
    d, n:
        Dimensions of the matrix that will be sketched.
    k1, k2:
        Override the intermediate / final embedding dimensions.
    countsketch_variant:
        ``"atomic"`` (Algorithm 2) or ``"spmm"`` for the first stage.
    transpose_trick:
        Use the Section-6.1 layout optimisation.
    executor, seed, dtype:
        Forwarded to the stage constructors (both stages share the executor).
    """
    if k1 is None:
        k1 = min(default_embedding_dim("countsketch", n), d)
    if k2 is None:
        k2 = default_embedding_dim("gaussian", n)
    if k2 > k1:
        raise ValueError(f"k2={k2} must not exceed k1={k1}")
    count = CountSketch(
        d,
        k1,
        variant=countsketch_variant,
        executor=executor,
        seed=seed,
        dtype=dtype,
    )
    gauss = GaussianSketch(
        k1,
        k2,
        executor=count.executor,
        seed=None if seed is None else seed + 1,
        dtype=dtype,
    )
    return MultiSketch([count, gauss], transpose_trick=transpose_trick)


def count_srht(
    d: int,
    n: int,
    *,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    countsketch_variant: str = "atomic",
    executor=None,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> MultiSketch:
    """Build a Count-SRHT multisketch (the paper's Section 8 future-work variant).

    "We are also interested in testing other multisketching implementations
    outside of simply using a CountSketch with a Gaussian sketch, such as
    using a CountSketch with a SRHT."  The first stage is identical to
    :func:`count_gauss`; the second stage replaces the dense Gaussian with an
    SRHT of the ``k1``-dimensional intermediate, which removes the dense
    ``k2 x k1`` matrix (and its generation cost) at the price of a couple of
    FWHT passes over the small intermediate.

    Defaults: ``k1 = 2 n^2`` (clipped to ``d``) and ``k2 = 2 n``.
    """
    from repro.core.srht import SRHT

    if k1 is None:
        k1 = min(default_embedding_dim("countsketch", n), d)
    if k2 is None:
        k2 = default_embedding_dim("srht", n)
    if k2 > k1:
        raise ValueError(f"k2={k2} must not exceed k1={k1}")
    count = CountSketch(
        d,
        k1,
        variant=countsketch_variant,
        executor=executor,
        seed=seed,
        dtype=dtype,
    )
    srht = SRHT(
        k1,
        k2,
        executor=count.executor,
        seed=None if seed is None else seed + 1,
        dtype=dtype,
    )
    # The SRHT stage is not a GEMM, so the Section-6.1 transpose trick does
    # not apply; the intermediate is consumed in whatever order the
    # CountSketch produced it.
    return MultiSketch([count, srht], transpose_trick=False)
