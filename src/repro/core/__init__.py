"""Sketching operators: the paper's primary contribution.

This package implements every sketch the paper evaluates:

* :class:`~repro.core.countsketch.CountSketch` -- the high-performance
  Algorithm-2 kernel (atomic row accumulation) and the cuSPARSE SpMM baseline.
* :class:`~repro.core.countsketch.StreamingCountSketch` -- the hash-based
  on-the-fly variant sketched as future work in Section 8.
* :class:`~repro.core.gaussian.GaussianSketch` -- dense GEMM-applied Gaussian.
* :class:`~repro.core.srht.SRHT` -- subsampled randomized Hadamard transform
  built on the radix-4 FWHT of Algorithm 3, plus the block SRHT of Section 7.
* :class:`~repro.core.multisketch.MultiSketch` -- composition of sketches,
  with the Count-Gauss configuration used throughout the paper.

All operators share the :class:`~repro.core.base.SketchOperator` interface:
``generate()`` materialises the random state (timed under "Sketch gen"),
``apply()`` sketches a device matrix, ``apply_vector()`` sketches a vector and
``sketch_host()`` is a NumPy-in / NumPy-out convenience wrapper.
"""

from repro.core.base import SketchOperator, default_embedding_dim
from repro.core.countsketch import (
    DENSIFY_LIMIT,
    CountSketch,
    SketchMaterializationError,
    StreamingCountSketch,
)
from repro.core.frequency import (
    FrequencySketch,
    HierarchicalFrequencySketch,
    SlidingFrequencyWindow,
)
from repro.core.gaussian import GaussianSketch
from repro.core.srht import SRHT, BlockSRHT
from repro.core.multisketch import MultiSketch, count_gauss, count_srht
from repro.core.fwht import fwht, fwht_matrix, fwht_radix4_inplace, is_power_of_two

__all__ = [
    "SketchOperator",
    "default_embedding_dim",
    "CountSketch",
    "StreamingCountSketch",
    "SketchMaterializationError",
    "DENSIFY_LIMIT",
    "FrequencySketch",
    "HierarchicalFrequencySketch",
    "SlidingFrequencyWindow",
    "GaussianSketch",
    "SRHT",
    "BlockSRHT",
    "MultiSketch",
    "count_gauss",
    "count_srht",
    "fwht",
    "fwht_matrix",
    "fwht_radix4_inplace",
    "is_power_of_two",
]
