"""Common interface for sketch operators.

A sketch operator is a random linear map :math:`S: \\mathbb{R}^d \\to
\\mathbb{R}^k` applied to the columns of a tall matrix
:math:`A \\in \\mathbb{R}^{d \\times n}` (Definition 1.1/1.2 of the paper).
Every concrete sketch in :mod:`repro.core` implements this interface; the
least-squares solvers in :mod:`repro.linalg` and the distributed layer in
:mod:`repro.distributed` only ever talk to it.

Phase labels follow the paper's figure legends: random-state generation is
"Sketch gen", the application to the coefficient matrix is "Matrix sketch",
and the application to the right-hand side vector is "Vector sketch".
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.gpu.arrays import DeviceArray
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor

#: Phase labels used across the library (and by the harness's breakdowns).
PHASE_SKETCH_GEN = "Sketch gen"
PHASE_MATRIX_SKETCH = "Matrix sketch"
PHASE_VECTOR_SKETCH = "Vector sketch"


def default_embedding_dim(kind: str, n: int, oversampling: float = 2.0) -> int:
    """Embedding dimension used by the paper's experiments for each sketch family.

    Section 6.2 fixes ``k = 2 n`` for the Gaussian sketch and the SRHT,
    ``k = 2 n^2`` for the CountSketch, and ``k1 = 2 n^2`` followed by
    ``k2 = 2 n`` for the multisketch.

    Parameters
    ----------
    kind:
        One of ``"gaussian"``, ``"srht"``, ``"countsketch"``,
        ``"multisketch"`` (returns the final dimension ``2 n``).
    n:
        Number of columns of the matrix to be sketched.
    oversampling:
        The constant in front (2 in the paper).
    """
    kind = kind.lower()
    if kind in ("gaussian", "gauss", "srht", "multisketch", "multi", "count_gauss"):
        return int(np.ceil(oversampling * n))
    if kind in ("countsketch", "count", "sparse"):
        return int(np.ceil(oversampling * n * n))
    raise ValueError(f"unknown sketch kind '{kind}'")


class SketchOperator(abc.ABC):
    """Abstract base class for all sketch operators.

    Parameters
    ----------
    d:
        Input dimension (number of rows of the matrices to be sketched).
    k:
        Embedding (output) dimension.
    executor:
        Simulated GPU executor.  If omitted a private numeric executor on the
        paper's H100 is created with memory tracking disabled, which is the
        right default for a library user who only cares about the numbers.
    seed:
        Seed for the sketch's random state.  Two operators built with the
        same ``(d, k, seed)`` are identical.
    dtype:
        Floating point type of the sketched output.
    """

    #: Human-readable family name, overridden by subclasses.
    family = "abstract"

    def __init__(
        self,
        d: int,
        k: int,
        *,
        executor: Optional[GPUExecutor] = None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        if d <= 0 or k <= 0:
            raise ValueError("sketch dimensions must be positive")
        if k > d:
            raise ValueError(
                f"embedding dimension k={k} exceeds input dimension d={d}; "
                "a sketch must reduce the dimension"
            )
        self._d = int(d)
        self._k = int(k)
        self._seed = seed
        self._dtype = np.dtype(dtype)
        if executor is None:
            executor = GPUExecutor(H100_SXM5, numeric=True, seed=seed, track_memory=False)
        self._ex = executor
        self._generated = False
        # A sketch with an explicit seed owns its own generator so that two
        # operators built with the same (d, k, seed) draw identical random
        # state even when they share an executor; seedless sketches draw from
        # the executor's stream.
        self._local_rng = (
            np.random.Generator(np.random.Philox(seed)) if seed is not None else None
        )

    @property
    def generator(self) -> np.random.Generator:
        """Generator used for this operator's numeric random draws."""
        return self._local_rng if self._local_rng is not None else self._ex.rng

    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Input dimension."""
        return self._d

    @property
    def k(self) -> int:
        """Embedding (output) dimension."""
        return self._k

    @property
    def shape(self) -> tuple:
        """The operator's shape ``(k, d)`` viewed as a matrix."""
        return (self._k, self._d)

    @property
    def dtype(self) -> np.dtype:
        """Floating point type of the sketched output."""
        return self._dtype

    @property
    def executor(self) -> GPUExecutor:
        """The simulated-GPU executor this operator launches kernels on."""
        return self._ex

    @property
    def seed(self) -> Optional[int]:
        """Seed the operator was constructed with."""
        return self._seed

    @property
    def is_generated(self) -> bool:
        """Whether the random state has been materialised."""
        return self._generated

    # ------------------------------------------------------------------
    #: Whether the operator is an oblivious subspace embedding at its
    #: configured ``k`` (Definition 1.1).  Solvers that *precondition* with
    #: the sketch (rand_cholQR, sketch-preconditioned LSQR) require this;
    #: plain sketch-and-solve merely degrades without it.  Subclasses that
    #: sample rather than embed should override with ``False``.
    subspace_embedding = True

    def capabilities(self) -> dict:
        """Capability descriptor consumed by the solver registry and planner.

        Keys:

        * ``family`` -- the operator family name.
        * ``subspace_embedding`` -- whether the operator satisfies the
          embedding property solvers rely on for preconditioning.
        * ``reproducible`` -- whether the state is a pure function of the
          constructor parameters (seeded), i.e. cacheable / replicable by
          the serving layer.
        * ``supports_multi_rhs`` -- whether :meth:`apply` accepts a block of
          columns (all operators here do; the hook exists so the registry
          can gate fused batches on it uniformly).
        """
        return {
            "family": self.family,
            "subspace_embedding": bool(self.subspace_embedding),
            "reproducible": self._seed is not None,
            "supports_multi_rhs": True,
        }

    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Stable identity of this operator's random state.

        Two operators with equal cache keys produce bit-identical sketches:
        the key captures the family, the dimensions, the seed, the dtype and
        any family-specific configuration (via :meth:`_cache_key_extra`).
        This is the contract that makes sketch state cheap to cache and share
        across requests: an operator can always be rebuilt from its
        parameters alone.  The serving layer's
        :func:`repro.serving.cache.operator_cache_key` is the lookup-side
        counterpart -- it is computed from request parameters *before* any
        operator exists, and two operators built from one serving key always
        have equal ``cache_key()``s (asserted in the serving tests).

        Seedless operators draw from their executor's stream, so their state
        is not reproducible from parameters; their key includes ``id(self)``
        and therefore never aliases another instance.
        """
        seed_part = self._seed if self._seed is not None else ("unseeded", id(self))
        return (
            self.family,
            self._d,
            self._k,
            seed_part,
            self._dtype.str,
        ) + self._cache_key_extra()

    def _cache_key_extra(self) -> tuple:
        """Subclass hook: extra configuration that changes the sketch state."""
        return ()

    # ------------------------------------------------------------------
    def generate(self) -> "SketchOperator":
        """Materialise the operator's random state (idempotent).

        Time is charged under the "Sketch gen" phase.  Returns ``self`` for
        chaining.
        """
        if not self._generated:
            with self._ex.phase(PHASE_SKETCH_GEN):
                self._generate_impl()
            self._generated = True
        return self

    @abc.abstractmethod
    def _generate_impl(self) -> None:
        """Subclass hook: create the random state on the device."""

    # ------------------------------------------------------------------
    def apply(self, a: DeviceArray, phase: str = PHASE_MATRIX_SKETCH) -> DeviceArray:
        """Sketch a device matrix: return ``S @ a`` with shape ``(k, n)``.

        ``a`` must have ``d`` rows.  Generation happens lazily on first use.
        """
        self._check_input(a)
        self.generate()
        with self._ex.phase(phase):
            return self._apply_impl(a)

    def apply_vector(self, b: DeviceArray, phase: str = PHASE_VECTOR_SKETCH) -> DeviceArray:
        """Sketch a device vector: return ``S @ b`` with shape ``(k,)``."""
        self._check_input(b)
        self.generate()
        with self._ex.phase(phase):
            return self._apply_vector_impl(b)

    @abc.abstractmethod
    def _apply_impl(self, a: DeviceArray) -> DeviceArray:
        """Subclass hook: sketch a matrix."""

    def _apply_vector_impl(self, b: DeviceArray) -> DeviceArray:
        """Default vector path: treat the vector as a one-column matrix."""
        ex = self._ex
        col = ex.empty((self._d, 1), dtype=b.dtype, order=b.order, label="b_col")
        if col.data is not None and b.is_numeric:
            col.data[:, 0] = b.data
        y = self._apply_impl(col)
        out = ex.empty((self._k,), dtype=b.dtype, label="sb")
        if out.data is not None and y.is_numeric:
            out.data[...] = y.data[:, 0]
        return out

    # ------------------------------------------------------------------
    def sketch_host(self, a: np.ndarray) -> np.ndarray:
        """Convenience: sketch a host NumPy array and return a host array.

        This is the entry point most downstream users want; the simulated
        timing machinery still runs underneath but can be ignored.
        """
        a = np.asarray(a, dtype=self._dtype)
        if a.ndim == 1:
            dev = self._ex.to_device(a, label="host_vector")
            return self.apply_vector(dev).to_host()
        dev = self._ex.to_device(a, order="C", label="host_matrix")
        return self.apply(dev).to_host()

    def __matmul__(self, a: np.ndarray) -> np.ndarray:
        """``S @ A`` for host arrays (syntactic sugar for :meth:`sketch_host`)."""
        return self.sketch_host(a)

    # ------------------------------------------------------------------
    def explicit_matrix(self) -> np.ndarray:
        """Return the dense ``k x d`` matrix this operator represents.

        Intended for testing and for small problems only; the default
        implementation sketches the identity, subclasses may override with a
        cheaper construction.
        """
        self.generate()
        eye = np.eye(self._d, dtype=self._dtype)
        return self.sketch_host(eye)

    # ------------------------------------------------------------------
    def _check_input(self, a: DeviceArray) -> None:
        if a.shape[0] != self._d:
            raise ValueError(
                f"{type(self).__name__} expects inputs with {self._d} rows, "
                f"got shape {a.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(d={self._d}, k={self._k}, "
            f"seed={self._seed}, dtype={self._dtype.name})"
        )
