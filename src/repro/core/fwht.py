"""Fast Walsh-Hadamard Transform implementations.

Section 5 of the paper builds the SRHT on a radix-4 FWHT (Algorithm 3)
adapted from NVIDIA's CUDA samples, applied column-by-column to a
column-major matrix, switching to shared memory once the butterfly working
set is small enough.

Three numerically equivalent implementations are provided:

``fwht_radix4_inplace``
    A literal transcription of Algorithm 3 (explicit butterfly loop), used as
    the reference in the test-suite.
``fwht``
    A vectorised radix-2 transform using reshapes; ``O(d log d)`` with NumPy
    doing the inner loops, fast enough for the numeric experiments.
``fwht_matrix``
    The matrix transform: applies the FWHT to every column of ``A``.

All of them compute the *unnormalised* transform ``H_d @ a`` where ``H_2 =
[[1, 1], [1, -1]]``; the SRHT applies its ``1/sqrt(k)`` scaling separately,
as in Definition 5.1.
"""

from __future__ import annotations

import math

import numpy as np


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two greater than or equal to ``n``."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def fwht_radix4_inplace(a: np.ndarray) -> np.ndarray:
    """Radix-4 FWHT of a vector, transcribing the paper's Algorithm 3.

    The input length must be a power of 4 for the pure radix-4 butterfly; for
    lengths that are a power of two but not of four, a single radix-2 stage
    is applied first (this is what the CUDA sample does as well).  The
    transform is performed in place and the array is also returned.
    """
    a = np.asarray(a)
    d = a.shape[0]
    if not is_power_of_two(d):
        raise ValueError(f"FWHT requires a power-of-two length, got {d}")

    # Peel one radix-2 stage if log2(d) is odd so the remainder is a power of 4.
    if int(math.log2(d)) % 2 == 1:
        half = d // 2
        x = a[:half].copy()
        y = a[half:].copy()
        a[:half] = x + y
        a[half:] = x - y
        return _radix4_blocks(a, half)
    return _radix4_blocks(a, d)


def _radix4_blocks(a: np.ndarray, block: int) -> np.ndarray:
    """Apply the radix-4 butterfly (Algorithm 3) independently to each block."""
    d = a.shape[0]
    for start in range(0, d, block):
        _fwht_radix4_single(a[start:start + block])
    return a


def _fwht_radix4_single(a: np.ndarray) -> None:
    """Algorithm 3 on a single vector whose length is a power of 4."""
    d = a.shape[0]
    if d == 1:
        return
    stride = d // 4
    while stride >= 1:
        s = stride * 4
        for b in range(0, d - s + 1, s):
            for k in range(stride):
                i0 = b + k
                i1 = i0 + stride
                i2 = i0 + 2 * stride
                i3 = i0 + 3 * stride
                x, y, z, t = a[i0], a[i1], a[i2], a[i3]
                xz_p, yt_p = x + z, y + t
                xz_m, yt_m = x - z, y - t
                a[i0] = xz_p + yt_p
                a[i1] = xz_p - yt_p
                a[i2] = xz_m + yt_m
                a[i3] = xz_m - yt_m
        stride //= 4


def fwht(a: np.ndarray) -> np.ndarray:
    """Vectorised radix-2 FWHT of a vector (returns a new array)."""
    a = np.asarray(a, dtype=np.result_type(a, np.float64))
    d = a.shape[0]
    if not is_power_of_two(d):
        raise ValueError(f"FWHT requires a power-of-two length, got {d}")
    out = a.copy()
    h = 1
    while h < d:
        out = out.reshape(-1, 2, h)
        top = out[:, 0, :] + out[:, 1, :]
        bot = out[:, 0, :] - out[:, 1, :]
        out = np.concatenate((top[:, None, :], bot[:, None, :]), axis=1)
        h *= 2
    return out.reshape(d)


def fwht_matrix(a: np.ndarray) -> np.ndarray:
    """Apply the FWHT to every column of a ``d x n`` matrix (new array).

    This is the operation the paper's SRHT performs on the coefficient
    matrix; the vectorised reshape trick processes all columns at once, which
    plays the role of the GPU's column-parallelism.
    """
    a = np.asarray(a, dtype=np.result_type(a, np.float64))
    if a.ndim == 1:
        return fwht(a)
    d, n = a.shape
    if not is_power_of_two(d):
        raise ValueError(f"FWHT requires a power-of-two row count, got {d}")
    out = a.copy()
    h = 1
    while h < d:
        out = out.reshape(-1, 2, h, n)
        top = out[:, 0, :, :] + out[:, 1, :, :]
        bot = out[:, 0, :, :] - out[:, 1, :, :]
        out = np.concatenate((top[:, None, :, :], bot[:, None, :, :]), axis=1)
        h *= 2
    return out.reshape(d, n)


def hadamard_matrix(d: int, dtype=np.float64) -> np.ndarray:
    """Explicit (unnormalised) Hadamard matrix ``H_d`` (Definition 5.1).

    Only sensible for small ``d``; used by tests to validate the FWHT.
    """
    if not is_power_of_two(d):
        raise ValueError("Hadamard matrices exist for power-of-two sizes only")
    h = np.array([[1.0]], dtype=dtype)
    while h.shape[0] < d:
        h = np.block([[h, h], [h, -h]])
    return h


def fwht_num_stages(d: int, radix: int = 4) -> int:
    """Number of butterfly stages a radix-``radix`` FWHT needs for length ``d``."""
    if not is_power_of_two(d):
        raise ValueError("FWHT requires a power-of-two length")
    log2d = int(math.log2(d)) if d > 1 else 0
    log2r = int(math.log2(radix))
    return math.ceil(log2d / log2r)


def fwht_global_passes(d: int, shared_memory_elems: int, radix: int = 4) -> int:
    """Number of full global-memory passes the staged FWHT performs.

    Early stages (large strides) each read and write the whole vector from
    global memory; once the butterfly working set (``radix * stride``
    elements) fits into shared memory, all remaining stages are fused into a
    single final pass.  This mirrors the shared-memory strategy of Section 5
    and determines the memory traffic the cost model charges.
    """
    if shared_memory_elems <= 0:
        raise ValueError("shared_memory_elems must be positive")
    stages = fwht_num_stages(d, radix)
    if stages == 0:
        return 0
    global_passes = 0
    stride = d // radix
    while stride >= 1:
        if radix * stride <= shared_memory_elems:
            # Everything from this stage onwards runs out of shared memory.
            return global_passes + 1
        global_passes += 1
        stride //= radix
    return max(global_passes, 1)
