"""Frequency analytics on top of the hashed CountSketch.

The CountSketch was invented (Charikar et al. 2002) not as a subspace
embedding but as a *frequency estimator*: hash every item of a stream into a
small table of signed counters and answer "how often did item ``i`` occur?"
from the table alone.  The paper's Section 8 hash-based streaming variant
(:class:`~repro.core.countsketch.StreamingCountSketch`) already carries the
exact machinery required -- ``splitmix64``-derived bucket maps and signs --
so this module completes the lineage and turns the serving stack's streaming
substrate into a frequency-analytics engine:

:class:`FrequencySketch`
    The classic ``depth x width`` table.  Each of the ``depth`` rows is an
    independent hashed CountSketch row; a point query takes the **median of
    the signed buckets** across rows, which is within ``eps * ||f||_2`` of
    the true frequency with probability ``1 - delta`` for
    ``eps = sqrt(3 / width)`` and ``delta = exp(-depth / 6)`` (see
    :mod:`repro.theory.frequency`).  Also answers l2-norm queries from the
    per-row bucket energies and recovers the eps-phi heavy hitters by a
    full-domain scan (the CSVec ``findHH`` idiom).

:class:`HierarchicalFrequencySketch`
    A dyadic stack of :class:`FrequencySketch` levels (branching factor a
    power of two): level ``l`` sketches the item id right-shifted by
    ``l * log2(branch)`` bits.  Range queries decompose into O(branch *
    levels) node queries, and top-k heavy hitters are found by *descending*
    the hierarchy -- expanding only the children of prefixes that are
    themselves heavy -- so the work is ``O(levels * branch * heavy)``
    instead of the flat sketch's ``O(domain)`` scan.

:class:`SlidingFrequencyWindow`
    A ring of slot sketches sharing one hash seed, mirroring the
    sliding-window engine of :mod:`repro.streaming.state`: ``advance()``
    retires the oldest slot and the live window is answered from the
    *merged* ring, exercising the same sketch-linearity contract the
    subspace-embedding windows rely on.

All three are mergeable (table addition, identical hashed state required),
scale-able (exponential decay hook) and durable (``state_dict`` /
``load_state`` round-trip bit-identically), so the serving layer can
checkpoint and migrate frequency sessions exactly like solve sessions.

Every operation charges simulated kernels through the executor, with the
same cost idiom as the streaming CountSketch: updates are atomic-class
scatters, queries are streaming-class gathers whose traffic is proportional
to the buckets actually examined -- which is what lets the acceptance
benchmark *assert* that hierarchical top-k does asymptotically less work
than a flat domain scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.countsketch import DENSIFY_LIMIT, SketchMaterializationError
from repro.core.sampling import hashed_row_map_and_signs
from repro.gpu.device import H100_SXM5
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest

#: Phase label for every frequency-analytics kernel (the harness's
#: breakdowns group by phase; frequency traffic gets its own bar).
PHASE_FREQUENCY = "Frequency"

#: Odd 32-bit salt separating the per-row hash streams of one table.  Row
#: ``r`` of a sketch seeded ``s`` hashes with seed ``s + (r+1) * salt``, so
#: the rows are independent splitmix64 streams yet the whole table remains a
#: pure function of ``(seed, depth, width)`` -- the property merge and
#: restore rely on.
_ROW_SEED_SALT = 0x9E3779B9

#: Salt separating the per-level hash streams of a hierarchical sketch.
_LEVEL_SEED_SALT = 0x85EBCA6B


def _as_index_array(ids, domain: int) -> np.ndarray:
    """Validate and normalise item ids to a flat int64 array in ``[0, domain)``."""
    if isinstance(ids, np.ndarray):
        idx = ids.astype(np.int64, copy=False).ravel()
    else:
        idx = np.atleast_1d(np.asarray(ids, dtype=np.int64)).ravel()
    if idx.size and (idx.min() < 0 or idx.max() >= domain):
        raise ValueError(f"item ids must lie in [0, {domain}), got range "
                         f"[{idx.min()}, {idx.max()}]")
    return idx


class FrequencySketch:
    """``depth x width`` signed-counter table answering frequency queries.

    Parameters
    ----------
    domain:
        Size of the item universe; ids must lie in ``[0, domain)``.  Like the
        streaming windows' ``STREAM_CAPACITY``, this may be an address space
        (e.g. ``2^48``) -- only whole-domain scans are then refused.
    width:
        Buckets per row.  Point-query error is ``eps * ||f||_2`` with
        ``eps = sqrt(3 / width)``.
    depth:
        Independent rows medianed over.  Failure probability per query is
        ``exp(-depth / 6)``.
    executor, seed, dtype:
        As for the sketch operators; identical ``(width, depth, seed)``
        tables are mergeable.
    """

    def __init__(
        self,
        domain: int,
        width: int,
        depth: int = 5,
        *,
        executor: Optional[GPUExecutor] = None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        if domain <= 0 or width <= 0 or depth <= 0:
            raise ValueError("domain, width and depth must be positive")
        self._domain = int(domain)
        self._width = int(width)
        self._depth = int(depth)
        self._dtype = np.dtype(dtype)
        self._seed = seed
        self._hash_seed = 0 if seed is None else int(seed)
        if executor is None:
            executor = GPUExecutor(H100_SXM5, numeric=True, seed=seed, track_memory=False)
        self._ex = executor
        self._table = executor.zeros(
            (self._depth, self._width), dtype=self._dtype, label="freq_table"
        )
        self._items_seen = 0
        self._ex.launch(
            KernelRequest(
                name="frequency_hash_setup",
                kclass=KernelClass.STREAM,
                bytes_written=64.0 * self._depth,
                phase=PHASE_FREQUENCY,
            )
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def domain(self) -> int:
        """Item-universe size (an address space, not an allocation)."""
        return self._domain

    @property
    def width(self) -> int:
        """Buckets per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Independent rows medianed over."""
        return self._depth

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def executor(self) -> GPUExecutor:
        return self._ex

    @property
    def items_seen(self) -> int:
        """Stream items consumed so far (merge adds, restore reinstates)."""
        return self._items_seen

    @property
    def numeric(self) -> bool:
        """Whether the table carries real counters (vs. analytic shapes)."""
        return bool(self._ex.numeric and self._table.is_numeric)

    def table(self) -> Optional[np.ndarray]:
        """Host copy of the counter table (``None`` in analytic mode)."""
        if not self.numeric:
            return None
        return self._table.to_host()

    def _row_seed(self, row: int) -> int:
        return self._hash_seed + (row + 1) * _ROW_SEED_SALT

    def _hash_identity(self) -> tuple:
        return (self._domain, self._width, self._depth, self._hash_seed, self._dtype)

    def buckets_and_signs(self, ids: np.ndarray, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Recompute (bucket, sign) for the given ids in the given row."""
        return hashed_row_map_and_signs(
            np.asarray(ids), self._width, self._row_seed(row)
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, ids, weights=None) -> None:
        """Consume a batch of (item id, weight) increments from the stream.

        ``weights`` defaults to all-ones (pure counting).  Negative weights
        (deletions) are legal: the CountSketch is a turnstile sketch.  An
        empty batch is a clean no-op.
        """
        idx = _as_index_array(ids, self._domain)
        batch = idx.shape[0]
        if batch == 0:
            return
        if weights is None:
            w = np.ones(batch, dtype=self._dtype)
        else:
            w = np.asarray(weights, dtype=self._dtype).ravel()
            if w.shape[0] != batch:
                raise ValueError(f"expected {batch} weights, got {w.shape[0]}")
        self._items_seen += batch

        if self.numeric:
            for r in range(self._depth):
                buckets, signs = self.buckets_and_signs(idx, r)
                np.add.at(self._table.data[r], buckets, np.where(signs, w, -w))

        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="frequency_update",
                kclass=KernelClass.ATOMIC,
                bytes_read=float(batch) * (8 + itemsize),
                bytes_written=float(self._depth) * batch * itemsize,
                flops=9.0 * self._depth * batch,  # hash arithmetic + adds
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _require_numeric(self, what: str) -> None:
        if not self.numeric:
            raise RuntimeError(f"{what} requires a numeric executor")

    def point_query(self, ids) -> np.ndarray:
        """Median-of-signed-buckets frequency estimates for the given ids.

        Returns a float array of the same length as ``ids``.  Each estimate
        is within ``eps * ||f||_2`` of the true frequency with probability
        ``1 - delta`` (:func:`repro.theory.frequency.point_query_error`).
        """
        self._require_numeric("point_query()")
        idx = _as_index_array(ids, self._domain)
        batch = idx.shape[0]
        if batch == 0:
            return np.zeros(0, dtype=self._dtype)
        est = np.empty((self._depth, batch), dtype=self._dtype)
        for r in range(self._depth):
            buckets, signs = self.buckets_and_signs(idx, r)
            est[r] = np.where(signs, 1.0, -1.0) * self._table.data[r, buckets]
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="frequency_point_query",
                kclass=KernelClass.STREAM,
                bytes_read=float(self._depth) * batch * itemsize + float(batch) * 8,
                bytes_written=float(batch) * itemsize,
                flops=12.0 * self._depth * batch,  # hash + gather + median
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )
        return np.median(est, axis=0).astype(self._dtype)

    def l2_estimate(self) -> float:
        """Estimate ``||f||_2`` from the bucket energies (CSVec idiom).

        Each row's sum of squared buckets is an unbiased estimate of
        ``||f||_2^2`` (cross terms cancel in expectation under the pairwise
        independent signs); the median over rows tames the variance.
        """
        self._require_numeric("l2_estimate()")
        energies = np.sum(self._table.data.astype(np.float64) ** 2, axis=1)
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="frequency_l2",
                kclass=KernelClass.STREAM,
                bytes_read=float(self._depth) * self._width * itemsize,
                bytes_written=float(self._depth) * itemsize,
                flops=2.0 * self._depth * self._width,
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )
        return float(np.sqrt(np.median(energies)))

    def heavy_hitters(self, phi: float) -> List[Tuple[int, float]]:
        """All items with estimated ``|f_i| >= phi * ||f||_2`` (``findHH``).

        This is the *flat* recovery path: it point-queries every id in the
        domain, so it is refused (typed error) for address-space-sized
        domains -- use :class:`HierarchicalFrequencySketch.top_k` there.
        Returns ``(id, estimate)`` pairs sorted by descending ``|estimate|``.
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must lie in (0, 1], got {phi}")
        if self._domain > DENSIFY_LIMIT:
            raise SketchMaterializationError(
                f"heavy_hitters() would scan all {self._domain} domain ids "
                f"(limit {DENSIFY_LIMIT}); use a HierarchicalFrequencySketch "
                f"for address-space domains"
            )
        self._require_numeric("heavy_hitters()")
        threshold = phi * self.l2_estimate()
        estimates = self.point_query(np.arange(self._domain, dtype=np.int64))
        hot = np.flatnonzero(np.abs(estimates) >= threshold)
        order = hot[np.argsort(-np.abs(estimates[hot]), kind="stable")]
        return [(int(i), float(estimates[i])) for i in order]

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def merge_from(self, other: "FrequencySketch") -> None:
        """Fold another sketch of the same hashed identity into this one.

        Bucket maps and signs are pure functions of ``(id, seed)``, so the
        sum of two tables is exactly the table of the concatenated streams
        -- the property the sliding-window ring and the shard-merge path
        both rely on.
        """
        if self._hash_identity() != other._hash_identity():
            raise ValueError("can only merge frequency sketches with identical hashed state")
        if self.numeric != other.numeric:
            raise ValueError("cannot merge numeric and analytic frequency sketches")
        if self.numeric:
            self._table.data += other._table.data
        self._items_seen += other._items_seen
        itemsize = self._dtype.itemsize
        cells = float(self._depth) * self._width
        self._ex.launch(
            KernelRequest(
                name="frequency_merge",
                kclass=KernelClass.STREAM,
                bytes_read=2.0 * cells * itemsize,
                bytes_written=cells * itemsize,
                flops=cells,
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )

    def scale(self, alpha: float) -> None:
        """Scale every counter in place (exponential-decay hook)."""
        if self.numeric:
            self._table.data *= float(alpha)
        itemsize = self._dtype.itemsize
        cells = float(self._depth) * self._width
        self._ex.launch(
            KernelRequest(
                name="frequency_scale",
                kclass=KernelClass.STREAM,
                bytes_read=cells * itemsize,
                bytes_written=cells * itemsize,
                flops=cells,
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Durable state: the table plus the items-seen counter.

        The bucket maps are pure functions of the seed, so (like the
        streaming CountSketch) the payload is just the counters.
        """
        return {
            "domain": self._domain,
            "width": self._width,
            "depth": self._depth,
            "items_seen": int(self._items_seen),
            "numeric": self.numeric,
            "table": self._table.to_host() if self.numeric else None,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-identically.

        The restored sketch answers every query exactly as the snapshotted
        one did and keeps accepting updates.  A restore kernel is charged
        for staging the table back onto the device.
        """
        if (int(state["domain"]), int(state["width"]), int(state["depth"])) != (
            self._domain,
            self._width,
            self._depth,
        ):
            raise ValueError("snapshot dimensions do not match this sketch")
        tab = state.get("table")
        if tab is not None:
            self._require_numeric("restoring a numeric snapshot")
            arr = np.asarray(tab, dtype=self._dtype)
            if arr.shape != (self._depth, self._width):
                raise ValueError(
                    f"snapshot table shape {arr.shape} != {(self._depth, self._width)}"
                )
            self._table.data[...] = arr
        elif state.get("numeric") and self.numeric:
            raise ValueError("numeric snapshot is missing its table payload")
        self._items_seen = int(state["items_seen"])
        itemsize = self._dtype.itemsize
        self._ex.launch(
            KernelRequest(
                name="frequency_restore",
                kclass=KernelClass.STREAM,
                bytes_written=float(self._depth) * self._width * itemsize,
                dtype_size=itemsize,
                phase=PHASE_FREQUENCY,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequencySketch(domain={self._domain}, width={self._width}, "
            f"depth={self._depth}, seed={self._seed}, items_seen={self._items_seen})"
        )


class HierarchicalFrequencySketch:
    """Dyadic stack of frequency sketches for range queries and fast top-k.

    Level 0 sketches raw item ids; level ``l`` sketches ``id >> (l * b)``
    where ``branch = 2**b``.  The levels stop once a level's domain fits in
    ``branch`` nodes, so the top level can always be enumerated outright.

    Two query families become cheap:

    * :meth:`range_query` decomposes ``[lo, hi)`` into at most
      ``2 * branch`` nodes per level (the canonical dyadic cover) and sums
      their point estimates -- ``O(branch * levels)`` bucket reads instead
      of ``hi - lo``.
    * :meth:`top_k` descends from the top level, expanding only children of
      prefixes whose estimate clears the ``phi * ||f||_2`` threshold: any
      true heavy hitter's every prefix is at least as frequent as the item
      itself, so the descent cannot lose it (one-sided).  Work is
      ``O(levels * branch * candidates)`` -- the acceptance benchmark
      asserts this does asymptotically less simulated-kernel work than the
      flat ``O(domain)`` scan.
    """

    def __init__(
        self,
        domain: int,
        width: int,
        depth: int = 5,
        *,
        branch: int = 16,
        executor: Optional[GPUExecutor] = None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        if branch < 2 or branch & (branch - 1):
            raise ValueError(f"branch must be a power of two >= 2, got {branch}")
        self._branch = int(branch)
        self._bits = int(branch).bit_length() - 1
        self._seed = seed
        base_seed = 0 if seed is None else int(seed)
        if executor is None:
            executor = GPUExecutor(H100_SXM5, numeric=True, seed=seed, track_memory=False)
        self._ex = executor

        domains: List[int] = [int(domain)]
        while domains[-1] > self._branch:
            domains.append((domains[-1] + self._branch - 1) // self._branch)
        self._levels: List[FrequencySketch] = [
            FrequencySketch(
                dom,
                width,
                depth,
                executor=executor,
                seed=base_seed + lvl * _LEVEL_SEED_SALT,
                dtype=dtype,
            )
            for lvl, dom in enumerate(domains)
        ]

    # ------------------------------------------------------------------
    @property
    def domain(self) -> int:
        return self._levels[0].domain

    @property
    def branch(self) -> int:
        return self._branch

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def levels(self) -> Sequence[FrequencySketch]:
        """The per-level sketches, leaf (level 0) first."""
        return tuple(self._levels)

    @property
    def executor(self) -> GPUExecutor:
        return self._ex

    @property
    def items_seen(self) -> int:
        return self._levels[0].items_seen

    # ------------------------------------------------------------------
    def update(self, ids, weights=None) -> None:
        """Feed each item to every level under its level-``l`` prefix id."""
        idx = _as_index_array(ids, self.domain)
        if idx.size == 0:
            return
        for lvl, sketch in enumerate(self._levels):
            sketch.update(idx >> (lvl * self._bits), weights)

    def point_query(self, ids) -> np.ndarray:
        """Leaf-level point estimates (same contract as the flat sketch)."""
        return self._levels[0].point_query(ids)

    def l2_estimate(self) -> float:
        """Leaf-level l2-norm estimate."""
        return self._levels[0].l2_estimate()

    # ------------------------------------------------------------------
    def range_query(self, lo: int, hi: int) -> float:
        """Estimate the total weight of items in the half-open range ``[lo, hi)``.

        Uses the canonical dyadic cover: a node is charged at the highest
        level at which it is fully contained in the range, so at most
        ``2 * (branch - 1)`` nodes are queried per level.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.domain:
            raise ValueError(f"range [{lo}, {hi}) out of domain [0, {self.domain})")
        if lo == hi:
            return 0.0
        per_level: Dict[int, List[int]] = {}

        def visit(level: int, node: int) -> None:
            block = 1 << (level * self._bits)
            nlo = node * block
            nhi = min(nlo + block, self.domain)
            if nhi <= lo or nlo >= hi:
                return
            if lo <= nlo and nhi <= hi:
                per_level.setdefault(level, []).append(node)
                return
            # Partially covered: recurse into children (level 0 nodes are
            # single items, always fully covered when they overlap).
            first = node << self._bits
            last = min((node + 1) << self._bits, self._levels[level - 1].domain)
            for child in range(first, last):
                visit(level - 1, child)

        top = len(self._levels) - 1
        for node in range(self._levels[top].domain):
            visit(top, node)

        total = 0.0
        for level, nodes in sorted(per_level.items()):
            total += float(np.sum(self._levels[level].point_query(np.asarray(nodes))))
        return total

    def top_k(self, k: int, phi: float) -> List[Tuple[int, float]]:
        """Top-``k`` heavy hitters above ``phi * ||f||_2`` by dyadic descent.

        Starts from the (enumerable) top level and expands only children of
        prefixes whose estimate clears the threshold; returns at most ``k``
        ``(id, estimate)`` pairs sorted by descending estimate.  Never scans
        the full domain, so it works on address-space universes where
        :meth:`FrequencySketch.heavy_hitters` raises.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must lie in (0, 1], got {phi}")
        threshold = phi * self._levels[0].l2_estimate()

        top = len(self._levels) - 1
        candidates = np.arange(self._levels[top].domain, dtype=np.int64)
        for level in range(top, 0, -1):
            est = self._levels[level].point_query(candidates)
            survivors = candidates[np.abs(est) >= threshold]
            if survivors.size == 0:
                return []
            children = (survivors[:, None] << self._bits) + np.arange(self._branch)
            children = children.ravel()
            candidates = children[children < self._levels[level - 1].domain]

        est = self._levels[0].point_query(candidates)
        hot = np.flatnonzero(np.abs(est) >= threshold)
        order = hot[np.argsort(-np.abs(est[hot]), kind="stable")][:k]
        return [(int(candidates[i]), float(est[i])) for i in order]

    # ------------------------------------------------------------------
    def merge_from(self, other: "HierarchicalFrequencySketch") -> None:
        """Level-wise merge (same branch, levels and hashed state required)."""
        if (self._branch, len(self._levels)) != (other._branch, len(other._levels)):
            raise ValueError("can only merge hierarchies with identical structure")
        for mine, theirs in zip(self._levels, other._levels):
            mine.merge_from(theirs)

    def scale(self, alpha: float) -> None:
        """Scale every level's counters in place."""
        for sketch in self._levels:
            sketch.scale(alpha)

    def state_dict(self) -> dict:
        """Durable state: one sub-state per level plus the structure."""
        return {
            "branch": self._branch,
            "levels": [s.state_dict() for s in self._levels],
        }

    def load_state(self, state: dict) -> None:
        """Restore all levels bit-identically from a :meth:`state_dict`."""
        if int(state["branch"]) != self._branch:
            raise ValueError("snapshot branching factor does not match")
        sub = state["levels"]
        if len(sub) != len(self._levels):
            raise ValueError("snapshot level count does not match")
        for sketch, s in zip(self._levels, sub):
            sketch.load_state(s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalFrequencySketch(domain={self.domain}, "
            f"branch={self._branch}, levels={len(self._levels)})"
        )


class SlidingFrequencyWindow:
    """Ring of slot sketches answering queries over the last ``slots`` slots.

    Mirrors the sliding-window engine of :mod:`repro.streaming.state`: the
    stream is chopped into slots (one sub-sketch each), :meth:`advance`
    retires the oldest slot, and queries are answered from the *merge* of
    the live ring -- which is exact because all slots share one hashed
    identity.  The merged view is cached and invalidated on writes.
    """

    def __init__(
        self,
        domain: int,
        width: int,
        depth: int = 5,
        *,
        slots: int = 4,
        executor: Optional[GPUExecutor] = None,
        seed: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if executor is None:
            executor = GPUExecutor(H100_SXM5, numeric=True, seed=seed, track_memory=False)
        self._ex = executor
        self._params = (int(domain), int(width), int(depth))
        self._seed = 0 if seed is None else int(seed)
        self._dtype = np.dtype(dtype)
        self._ring: List[FrequencySketch] = [self._new_slot() for _ in range(slots)]
        self._head = 0
        self._advances = 0
        self._merged: Optional[FrequencySketch] = None

    def _new_slot(self) -> FrequencySketch:
        d, w, r = self._params
        return FrequencySketch(
            d, w, r, executor=self._ex, seed=self._seed, dtype=self._dtype
        )

    @property
    def slots(self) -> int:
        return len(self._ring)

    @property
    def advances(self) -> int:
        """Number of slot retirements so far."""
        return self._advances

    def update(self, ids, weights=None) -> None:
        """Feed a batch into the current (head) slot."""
        self._ring[self._head].update(ids, weights)
        self._merged = None

    def advance(self) -> None:
        """Retire the oldest slot and open a fresh head slot."""
        self._head = (self._head + 1) % len(self._ring)
        self._ring[self._head] = self._new_slot()
        self._advances += 1
        self._merged = None

    def merged(self) -> FrequencySketch:
        """The merge of all live slots (cached until the next write)."""
        if self._merged is None:
            view = self._new_slot()
            for slot in self._ring:
                view.merge_from(slot)
            self._merged = view
        return self._merged

    def point_query(self, ids) -> np.ndarray:
        """Windowed point estimates (over the live ring only)."""
        return self.merged().point_query(ids)

    def l2_estimate(self) -> float:
        """Windowed l2-norm estimate."""
        return self.merged().l2_estimate()

    def heavy_hitters(self, phi: float) -> List[Tuple[int, float]]:
        """Windowed heavy hitters (flat scan; domain must be enumerable)."""
        return self.merged().heavy_hitters(phi)
