"""repro: high-performance CountSketch, multisketching, and randomized least squares.

A from-scratch Python reproduction of

    Higgins, Boman, Yamazaki,
    "A High Performance GPU CountSketch Implementation and Its Application to
    Multisketching and Least Squares Problems", SC 2025 (arXiv:2508.14209).

The package is organised as:

* :mod:`repro.core` -- the sketch operators (CountSketch / Gaussian / SRHT /
  multisketch, plus the hash-based streaming CountSketch).
* :mod:`repro.gpu` -- the simulated-GPU substrate (roofline cost model,
  memory tracker, cuBLAS/cuSPARSE/cuSOLVER/cuRAND stand-ins).
* :mod:`repro.linalg` -- sketch-and-solve, normal equations, QR,
  rand_cholQR and sketch-preconditioned-LSQR least-squares solvers, all
  registered behind one ``solve(spec)`` interface
  (:mod:`repro.linalg.registry`) with an adaptive planner
  (:mod:`repro.linalg.planner`) that routes each problem to the cheapest
  solver meeting its accuracy target and executes fallback chains.
* :mod:`repro.theory` -- embedding dimensions, distortion bounds, Table 1.
* :mod:`repro.distributed` -- block-row distributed sketching (Section 7).
* :mod:`repro.workloads` -- the paper's problem generators.
* :mod:`repro.harness` -- one entry point per paper table/figure.
* :mod:`repro.serving` -- the request-serving layer: a
  :class:`~repro.serving.server.SketchServer` that micro-batches same-matrix
  ``solve(A, b)`` requests into fused multi-RHS solves, caches sketch
  operators across requests (LRU, keyed on ``(kind, d, n, k, seed, dtype)``),
  spreads batches over a pool of simulated GPU shards and reports
  p50/p95/p99 latency and throughput -- plus the *concurrent runtime*
  (:class:`~repro.serving.runtime.AsyncSketchServer`): a bounded admission
  queue with per-problem-class priority lanes, deadline-aware load
  shedding with typed errors, a worker pool overlapping sketches and
  solves across shards, and elastic shard scaling driven by queue-depth
  and p95-latency telemetry.
* :mod:`repro.streaming` -- the online engine: a
  :class:`~repro.streaming.solver.StreamingSolver` maintains the hashed
  CountSketch of a sliding / landmark / decayed window over a row stream
  (or a Frequent Directions spectral summary, ``mode="fd"``), detects
  drift from residual energy and condition probes, and lazily re-solves
  the window through the planner; ``SketchServer.open_stream`` serves it.
* :mod:`repro.durability` -- checkpoint/WAL durability for streaming
  sessions: one versioned+checksummed record format with typed errors
  (:class:`~repro.durability.codec.DurabilityError`), a pluggable
  :class:`~repro.durability.store.CheckpointStore` (in-memory or fsync'd
  directory-backed), write-ahead-logged appends with exactly-once
  checkpoint + tail replay (``SketchServer.save`` / ``restore``), and
  session TTL/eviction with passivate-resurrect for durable sessions.
* :mod:`repro.obs` -- the observability layer: per-request span trees on
  the simulated clock (:class:`~repro.obs.trace.Tracer`), a bounded
  metrics registry (counters / gauges / ring+P² histograms,
  :class:`~repro.obs.metrics.MetricsRegistry`), Prometheus / JSON / trace
  waterfall exporters (:mod:`repro.obs.export`) and the per-PR
  ``BENCH_<pr>.json`` perf-trajectory schema (:mod:`repro.obs.bench`).
* :mod:`repro.problems` -- problem classes beyond plain least squares:
  ridge regression (``solve_ridge``, three registered solvers with
  lambda-aware stability floors) and sketched low-rank approximation
  (``lowrank_approx``: randomized range finder and the streaming
  :class:`~repro.problems.lowrank.FrequentDirections` accumulator), all
  routed through the same registry/planner and served by
  ``SketchServer.solve_ridge`` / ``SketchServer.approx_lowrank``.

Quick start::

    import numpy as np
    from repro import count_gauss, sketch_and_solve

    A = np.random.default_rng(0).standard_normal((65536, 64))
    b = A @ np.ones(64)

    sketch = count_gauss(d=A.shape[0], n=A.shape[1], seed=1)
    result = sketch_and_solve(A, b, sketch)
    print(result.relative_residual, result.total_seconds)

Serving many right-hand sides against shared design matrices::

    from repro import SketchServer

    server = SketchServer(kind="multisketch", shards=2, max_batch=16)
    for b in observations:
        server.submit(A, b)
    responses = server.flush()       # fused multi-RHS solves
    print(server.stats()["requests_per_second"])
"""

from repro.core import (
    CountSketch,
    GaussianSketch,
    MultiSketch,
    SRHT,
    BlockSRHT,
    SketchOperator,
    StreamingCountSketch,
    count_gauss,
    default_embedding_dim,
)
from repro.durability import (
    CheckpointStore,
    ChecksumError,
    DirectoryCheckpointStore,
    DurabilityConfig,
    DurabilityError,
    MemoryCheckpointStore,
    SchemaError,
    TruncatedRecordError,
)
from repro.gpu import DeviceSpec, ExecutorPool, GPUExecutor, H100_SXM5, A100_SXM4, get_device
from repro.linalg import (
    LeastSquaresResult,
    SolvePlan,
    SolveSpec,
    normal_equations,
    plan,
    plan_and_execute,
    qr_solve,
    rand_cholqr,
    rand_cholqr_lstsq,
    sketch_and_solve,
    sketch_precond_lsqr,
    solve,
)
from repro.obs import (
    CalibratedEstimator,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    SLOConfig,
    SLOEngine,
    Span,
    Tracer,
    default_serving_slos,
    to_json,
    to_prometheus,
)
from repro.problems import (
    FrequentDirections,
    LowRankResult,
    lowrank_approx,
    randomized_range_finder,
    solve_ridge,
)
from repro.serving import (
    AdmissionError,
    AsyncSketchServer,
    DeadlineExceededError,
    ElasticShardPolicy,
    IngestReport,
    LowRankResponse,
    MicroBatcher,
    OperatorCache,
    QueueFullError,
    RestoreReport,
    RuntimeConfig,
    RuntimeFuture,
    ScaleEvent,
    ServerConfig,
    ServingTelemetry,
    ShardScheduler,
    SketchServer,
    SolveResponse,
    StreamSolutionResponse,
    naive_solve_loop,
)
from repro.streaming import (
    DriftDetector,
    DriftDetectorConfig,
    DriftEvent,
    StreamingSolution,
    StreamingSolver,
)

__version__ = "1.8.0"

__all__ = [
    "CountSketch",
    "GaussianSketch",
    "MultiSketch",
    "SRHT",
    "BlockSRHT",
    "SketchOperator",
    "StreamingCountSketch",
    "count_gauss",
    "default_embedding_dim",
    "CheckpointStore",
    "ChecksumError",
    "DirectoryCheckpointStore",
    "DurabilityConfig",
    "DurabilityError",
    "MemoryCheckpointStore",
    "SchemaError",
    "TruncatedRecordError",
    "DeviceSpec",
    "ExecutorPool",
    "GPUExecutor",
    "H100_SXM5",
    "A100_SXM4",
    "get_device",
    "LeastSquaresResult",
    "SolvePlan",
    "SolveSpec",
    "normal_equations",
    "plan",
    "plan_and_execute",
    "qr_solve",
    "rand_cholqr",
    "rand_cholqr_lstsq",
    "sketch_and_solve",
    "sketch_precond_lsqr",
    "solve",
    "CalibratedEstimator",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "SLOConfig",
    "SLOEngine",
    "Span",
    "Tracer",
    "default_serving_slos",
    "to_json",
    "to_prometheus",
    "FrequentDirections",
    "LowRankResult",
    "lowrank_approx",
    "randomized_range_finder",
    "solve_ridge",
    "AdmissionError",
    "AsyncSketchServer",
    "DeadlineExceededError",
    "ElasticShardPolicy",
    "LowRankResponse",
    "MicroBatcher",
    "OperatorCache",
    "QueueFullError",
    "RestoreReport",
    "RuntimeConfig",
    "RuntimeFuture",
    "ScaleEvent",
    "ServerConfig",
    "ServingTelemetry",
    "ShardScheduler",
    "SketchServer",
    "SolveResponse",
    "IngestReport",
    "StreamSolutionResponse",
    "naive_solve_loop",
    "DriftDetector",
    "DriftDetectorConfig",
    "DriftEvent",
    "StreamingSolution",
    "StreamingSolver",
    "__version__",
]
