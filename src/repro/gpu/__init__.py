"""Simulated GPU substrate.

The paper's experiments run on an NVIDIA H100 SXM5 80GB with CUDA 12.4 using
cuBLAS, cuSPARSE, cuSOLVER and cuRAND.  This package provides a stand-in for
that stack: every kernel is executed *numerically* with NumPy so results are
bit-for-bit reproducible on a CPU, while a roofline-style cost model charges
*simulated* device time for each launch.  The cost model accounts for the
quantities that determine the paper's performance story -- bytes moved, FLOPs
executed, kernel-launch overhead, synchronisation stages, atomic contention
and memory-coalescing efficiency -- so the relative ordering of the sketching
methods (Figures 2-5) is preserved even though no physical GPU is present.

Main entry points
-----------------
:class:`~repro.gpu.device.DeviceSpec`
    Hardware description (H100/A100 presets or custom).
:class:`~repro.gpu.executor.GPUExecutor`
    Runs kernels, tracks memory, and accumulates a time breakdown.
"""

from repro.gpu.device import DeviceSpec, H100_SXM5, A100_SXM4, get_device
from repro.gpu.memory import DeviceMemoryTracker, DeviceOutOfMemoryError
from repro.gpu.timing import KernelTiming, TimeBreakdown, SimClock
from repro.gpu.kernels import KernelCostModel, KernelClass
from repro.gpu.executor import GPUExecutor
from repro.gpu.pool import ExecutorPool

__all__ = [
    "DeviceSpec",
    "H100_SXM5",
    "A100_SXM4",
    "get_device",
    "DeviceMemoryTracker",
    "DeviceOutOfMemoryError",
    "KernelTiming",
    "TimeBreakdown",
    "SimClock",
    "KernelCostModel",
    "KernelClass",
    "GPUExecutor",
    "ExecutorPool",
]
