"""Device memory tracking for the simulated GPU.

The paper's Figures 2 and 5 contain blank bars where "the GPU ran out of
memory" while storing the explicit Gaussian sketching matrix.  To reproduce
that behaviour the executor routes every logical device allocation through a
:class:`DeviceMemoryTracker`, which enforces the device's capacity and records
a high-water mark.  Allocations are *logical*: the tracker does not itself
hold NumPy arrays, it only accounts for their sizes, so paper-scale problem
shapes (tens of GB) can be swept analytically without exhausting host RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


class DeviceOutOfMemoryError(MemoryError):
    """Raised when a simulated allocation exceeds the device capacity."""

    def __init__(self, requested: float, in_use: float, capacity: float, label: str = ""):
        self.requested = float(requested)
        self.in_use = float(in_use)
        self.capacity = float(capacity)
        self.label = label
        gb = 1.0e9
        super().__init__(
            f"simulated device out of memory allocating {requested / gb:.2f} GB"
            f"{' for ' + label if label else ''}: "
            f"{in_use / gb:.2f} GB already in use of {capacity / gb:.2f} GB capacity"
        )


@dataclass(frozen=True)
class Allocation:
    """A logical device allocation."""

    handle: int
    nbytes: float
    label: str


class DeviceMemoryTracker:
    """Tracks logical allocations against a device memory capacity.

    Parameters
    ----------
    capacity:
        Device memory capacity in bytes.
    reserve_fraction:
        Fraction of capacity reserved for the CUDA context, library
        workspaces and fragmentation.  Real devices never deliver 100% of
        their nominal capacity to the user; cuSOLVER/cuBLAS workspaces in the
        paper's least-squares pipeline are also charged to this reserve.
    """

    def __init__(self, capacity: float, reserve_fraction: float = 0.06) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self._capacity = float(capacity)
        self._usable = float(capacity) * (1.0 - reserve_fraction)
        self._in_use = 0.0
        self._peak = 0.0
        self._next_handle = 1
        self._allocations: Dict[int, Allocation] = {}

    # -- properties -----------------------------------------------------
    @property
    def capacity(self) -> float:
        """Nominal device capacity in bytes."""
        return self._capacity

    @property
    def usable_capacity(self) -> float:
        """Capacity available to user allocations (after the reserve)."""
        return self._usable

    @property
    def in_use(self) -> float:
        """Bytes currently allocated."""
        return self._in_use

    @property
    def peak(self) -> float:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def free(self) -> float:
        """Bytes still available to allocate."""
        return self._usable - self._in_use

    def live_allocations(self) -> Tuple[Allocation, ...]:
        """Currently live allocations, in handle order."""
        return tuple(self._allocations[h] for h in sorted(self._allocations))

    # -- allocation API --------------------------------------------------
    def alloc(self, nbytes: float, label: str = "") -> int:
        """Allocate ``nbytes`` and return an opaque handle.

        Raises
        ------
        DeviceOutOfMemoryError
            If the allocation would exceed the usable capacity.
        ValueError
            If ``nbytes`` is negative.
        """
        nbytes = float(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._in_use + nbytes > self._usable:
            raise DeviceOutOfMemoryError(nbytes, self._in_use, self._usable, label)
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = Allocation(handle, nbytes, label)
        self._in_use += nbytes
        self._peak = max(self._peak, self._in_use)
        return handle

    def alloc_array(self, shape: Tuple[int, ...], dtype=np.float64, label: str = "") -> int:
        """Allocate space for an array of the given shape and dtype."""
        nbytes = float(np.prod(shape, dtype=np.float64)) * np.dtype(dtype).itemsize
        return self.alloc(nbytes, label=label or f"array{tuple(shape)}")

    def free_handle(self, handle: int) -> None:
        """Release an allocation by handle.  Freeing twice raises KeyError."""
        alloc = self._allocations.pop(handle)
        self._in_use -= alloc.nbytes

    def would_fit(self, nbytes: float) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return self._in_use + float(nbytes) <= self._usable

    def reset(self) -> None:
        """Free everything and clear the peak statistic."""
        self._allocations.clear()
        self._in_use = 0.0
        self._peak = 0.0

    # -- scoped helper ----------------------------------------------------
    def scoped(self, nbytes: float, label: str = "") -> "_ScopedAllocation":
        """Context manager that allocates on enter and frees on exit."""
        return _ScopedAllocation(self, nbytes, label)


class _ScopedAllocation:
    """Context manager used by :meth:`DeviceMemoryTracker.scoped`."""

    def __init__(self, tracker: DeviceMemoryTracker, nbytes: float, label: str) -> None:
        self._tracker = tracker
        self._nbytes = nbytes
        self._label = label
        self._handle: Optional[int] = None

    def __enter__(self) -> int:
        self._handle = self._tracker.alloc(self._nbytes, self._label)
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._tracker.free_handle(self._handle)
            self._handle = None


def array_nbytes(shape: Tuple[int, ...], dtype=np.float64) -> float:
    """Bytes required to store an array of ``shape`` and ``dtype``."""
    return float(np.prod(shape, dtype=np.float64)) * np.dtype(dtype).itemsize
