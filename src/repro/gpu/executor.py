"""GPU executor: the central object of the simulated device stack.

A :class:`GPUExecutor` owns

* a :class:`~repro.gpu.device.DeviceSpec` (roofline parameters),
* a :class:`~repro.gpu.kernels.KernelCostModel`,
* a :class:`~repro.gpu.memory.DeviceMemoryTracker`, and
* a :class:`~repro.gpu.timing.SimClock`.

Library code (the sketch kernels, the cuBLAS/cuSPARSE/cuSOLVER stand-ins)
allocates :class:`~repro.gpu.arrays.DeviceArray` handles through the executor
and submits :class:`~repro.gpu.kernels.KernelRequest` objects describing each
launch.  The executor charges simulated time for every launch regardless of
mode; in *numeric* mode the caller additionally performs the NumPy arithmetic
on the handles' data, in *analytic* mode only shapes and costs flow through.

Two executors never share state, so experiments are trivially independent.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.arrays import DeviceArray
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.kernels import KernelCostModel, KernelRequest
from repro.gpu.memory import DeviceMemoryTracker
from repro.gpu.timing import KernelTiming, SimClock, TimeBreakdown


class GPUExecutor:
    """Simulated GPU execution context.

    Parameters
    ----------
    device:
        Device roofline description; defaults to the paper's H100 SXM5.
    numeric:
        If True (default) device arrays carry real NumPy data and kernels
        produce actual numerical results.  If False the executor runs
        analytically: allocations and timings are tracked but no
        floating-point data exists, enabling paper-scale shape sweeps.
    seed:
        Seed for the executor's host-side RNG (used by the cuRAND stand-in).
    track_memory:
        If False, the memory tracker is given effectively unlimited capacity.
        Useful for unit tests that exercise numerics at shapes unrelated to
        any real device.
    """

    def __init__(
        self,
        device: DeviceSpec = H100_SXM5,
        *,
        numeric: bool = True,
        seed: Optional[int] = None,
        track_memory: bool = True,
    ) -> None:
        self.device = device
        self.numeric = bool(numeric)
        self.cost_model = KernelCostModel(device)
        capacity = device.memory_capacity if track_memory else 1.0e18
        self.memory = DeviceMemoryTracker(capacity)
        self.clock = SimClock()
        self.rng = np.random.Generator(np.random.Philox(seed))
        self._blas = None
        self._sparse = None
        self._solver = None
        self._rand = None

    # ------------------------------------------------------------------
    # lazily constructed library handles (cuBLAS/cuSPARSE/cuSOLVER/cuRAND
    # stand-ins); imported locally to avoid circular imports.
    # ------------------------------------------------------------------
    @property
    def blas(self):
        """The :class:`~repro.gpu.blas.SimBLAS` handle bound to this executor."""
        if self._blas is None:
            from repro.gpu.blas import SimBLAS

            self._blas = SimBLAS(self)
        return self._blas

    @property
    def sparse(self):
        """The :class:`~repro.gpu.sparse.SimSparse` handle bound to this executor."""
        if self._sparse is None:
            from repro.gpu.sparse import SimSparse

            self._sparse = SimSparse(self)
        return self._sparse

    @property
    def solver(self):
        """The :class:`~repro.gpu.solver.SimSolver` handle bound to this executor."""
        if self._solver is None:
            from repro.gpu.solver import SimSolver

            self._solver = SimSolver(self)
        return self._solver

    @property
    def rand(self):
        """The :class:`~repro.gpu.rand.SimRNG` handle bound to this executor."""
        if self._rand is None:
            from repro.gpu.rand import SimRNG

            self._rand = SimRNG(self)
        return self._rand

    # ------------------------------------------------------------------
    # array management
    # ------------------------------------------------------------------
    def empty(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        order: str = "C",
        label: str = "",
    ) -> DeviceArray:
        """Allocate an uninitialised device array."""
        shape = tuple(int(s) for s in shape)
        handle = self.memory.alloc_array(shape, dtype, label=label)
        data = np.empty(shape, dtype=dtype) if self.numeric else None
        return DeviceArray(shape, dtype, order, data, label, handle, self)

    def zeros(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        order: str = "C",
        label: str = "",
    ) -> DeviceArray:
        """Allocate a zero-initialised device array (charges a memset kernel)."""
        arr = self.empty(shape, dtype, order, label)
        if arr.data is not None:
            arr.data.fill(0.0)
        from repro.gpu.kernels import KernelClass

        self.launch(
            KernelRequest(
                name="memset",
                kclass=KernelClass.STREAM,
                bytes_written=arr.nbytes,
                phase="memset",
            )
        )
        return arr

    def to_device(
        self,
        host: np.ndarray,
        order: str = "C",
        label: str = "",
        charge_transfer: bool = False,
    ) -> DeviceArray:
        """Place a host array onto the simulated device.

        The paper times kernels only (the matrices are generated on the
        device), so host-to-device transfer is not charged by default.
        """
        host = np.asarray(host)
        handle = self.memory.alloc_array(host.shape, host.dtype, label=label)
        data = np.array(host, copy=True) if self.numeric else None
        arr = DeviceArray(host.shape, host.dtype, order, data, label, handle, self)
        if charge_transfer:
            from repro.gpu.kernels import KernelClass

            # PCIe/NVLink transfer modelled at a fraction of device bandwidth.
            self.launch(
                KernelRequest(
                    name="h2d_copy",
                    kclass=KernelClass.STREAM,
                    bytes_read=arr.nbytes,
                    bytes_written=arr.nbytes,
                    phase="transfer",
                )
            )
        return arr

    def like(self, template: DeviceArray, shape=None, order=None, label: str = "") -> DeviceArray:
        """Allocate an array with the same dtype as ``template``."""
        return self.empty(
            shape if shape is not None else template.shape,
            dtype=template.dtype,
            order=order if order is not None else template.order,
            label=label or template.label,
        )

    # ------------------------------------------------------------------
    # kernel submission
    # ------------------------------------------------------------------
    def launch(self, request: KernelRequest, phase: Optional[str] = None) -> KernelTiming:
        """Charge a kernel launch to the simulated clock and return its timing."""
        timing = self.cost_model.estimate(request, phase=phase)
        return self.clock.record(timing)

    def phase(self, label: str):
        """Label every kernel launched in the returned ``with`` block."""
        return self.clock.phase(label)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total simulated seconds accumulated so far."""
        return self.clock.now

    def breakdown(self) -> TimeBreakdown:
        """The full time breakdown accumulated so far."""
        return self.clock.breakdown

    def mark(self) -> int:
        """Return a marker for :meth:`breakdown_since` (number of records so far)."""
        return len(self.clock.breakdown)

    def breakdown_since(self, mark: int) -> TimeBreakdown:
        """Breakdown of everything launched after :meth:`mark` returned ``mark``."""
        return self.clock.breakdown_since(mark)

    def elapsed_since(self, mark: int) -> float:
        """Simulated seconds of everything launched after the marker."""
        return self.breakdown_since(mark).total()

    def reset_clock(self) -> None:
        """Zero the simulated clock (memory allocations are kept)."""
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "numeric" if self.numeric else "analytic"
        return f"GPUExecutor(device='{self.device.name}', mode={mode})"
