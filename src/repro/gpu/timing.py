"""Simulated timing primitives.

The paper reports wall-clock kernel timings averaged over 100 runs and broken
down by phase ("Sketch gen time", "Apply Time", "POTRF", "GEQRF", ...).  The
classes here model exactly that: every simulated kernel launch produces a
:class:`KernelTiming`, the executor accumulates them on a :class:`SimClock`,
and a :class:`TimeBreakdown` groups the accumulated time by phase label so the
harness can print the same stacked-bar decomposition the figures show.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class KernelTiming:
    """Timing record for one simulated kernel launch.

    Attributes
    ----------
    name:
        Kernel name (e.g. ``"countsketch_atomic"``, ``"gemm"``).
    seconds:
        Total simulated execution time, including launch overhead.
    bytes_moved:
        Global-memory traffic charged to the kernel (reads + writes).
    flops:
        Floating point operations charged to the kernel.
    phase:
        Phase label used by the breakdowns (e.g. ``"Matrix sketch"``).
    launches:
        Number of kernel launches folded into this record (the FWHT is one
        logical operation but many launches).
    """

    name: str
    seconds: float
    bytes_moved: float = 0.0
    flops: float = 0.0
    phase: str = "unlabelled"
    launches: int = 1

    def achieved_bandwidth(self) -> float:
        """Achieved memory throughput in bytes/second (0 if instantaneous)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.bytes_moved / self.seconds

    def achieved_flops(self) -> float:
        """Achieved FLOP/s (0 if instantaneous)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.flops / self.seconds

    def relabel(self, phase: str) -> "KernelTiming":
        """Return a copy of this record with a different phase label."""
        return KernelTiming(
            name=self.name,
            seconds=self.seconds,
            bytes_moved=self.bytes_moved,
            flops=self.flops,
            phase=phase,
            launches=self.launches,
        )


@dataclass
class TimeBreakdown:
    """Accumulated simulated time grouped by phase label.

    This mirrors the stacked bars of Figures 2 and 5: each phase label is a
    bar segment and :meth:`total` is the bar height.
    """

    records: List[KernelTiming] = field(default_factory=list)

    def add(self, timing: KernelTiming) -> None:
        """Append a kernel timing record."""
        self.records.append(timing)

    def extend(self, timings: Iterable[KernelTiming]) -> None:
        """Append several kernel timing records."""
        self.records.extend(timings)

    def total(self) -> float:
        """Total simulated seconds across all records."""
        return float(sum(r.seconds for r in self.records))

    def total_bytes(self) -> float:
        """Total global-memory traffic across all records."""
        return float(sum(r.bytes_moved for r in self.records))

    def total_flops(self) -> float:
        """Total floating point operations across all records."""
        return float(sum(r.flops for r in self.records))

    def by_phase(self) -> Dict[str, float]:
        """Seconds per phase label, in insertion order of first appearance."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0.0) + r.seconds
        return out

    def by_kernel(self) -> Dict[str, float]:
        """Seconds per kernel name."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.seconds
        return out

    def phase_seconds(self, phase: str) -> float:
        """Seconds accumulated under a specific phase label."""
        return float(sum(r.seconds for r in self.records if r.phase == phase))

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Return a new breakdown containing this one's and ``other``'s records."""
        merged = TimeBreakdown()
        merged.records = list(self.records) + list(other.records)
        return merged

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Return a breakdown with every record's time scaled by ``factor``.

        Used to average repeated experiments: accumulate ``reps`` runs and
        scale by ``1/reps``.
        """
        scaled = TimeBreakdown()
        for r in self.records:
            scaled.add(
                KernelTiming(
                    name=r.name,
                    seconds=r.seconds * factor,
                    bytes_moved=r.bytes_moved * factor,
                    flops=r.flops * factor,
                    phase=r.phase,
                    launches=r.launches,
                )
            )
        return scaled

    def __len__(self) -> int:
        return len(self.records)


class SimClock:
    """Monotonically accumulating simulated clock.

    The executor owns one clock; each kernel launch advances it.  The clock
    also keeps a running :class:`TimeBreakdown` and supports *regions*, which
    the harness uses to attribute everything launched inside a ``with`` block
    to a phase label regardless of the kernels' own defaults.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._breakdown = TimeBreakdown()
        self._phase_stack: List[str] = []
        # `_now += seconds` is a read-modify-write; the concurrent serving
        # runtime can charge kernels to one shard clock from two threads
        # (an operator build at plan time racing an in-flight solve), and an
        # unlocked increment would silently lose simulated time.  Workers
        # hold per-shard locks for the solve path, so this lock is
        # uncontended there; it exists for the residual overlaps.
        self._record_lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation."""
        return self._now

    @property
    def breakdown(self) -> TimeBreakdown:
        """The full breakdown of everything recorded on this clock."""
        return self._breakdown

    def current_phase(self) -> Optional[str]:
        """The innermost active phase label, or None."""
        return self._phase_stack[-1] if self._phase_stack else None

    def record(self, timing: KernelTiming) -> KernelTiming:
        """Advance the clock by a kernel timing and store it.

        If a phase region is active it overrides the record's own phase.
        Returns the (possibly relabelled) record that was stored.
        """
        phase = self.current_phase()
        if phase is not None and timing.phase != phase:
            timing = timing.relabel(phase)
        with self._record_lock:
            self._now += timing.seconds
            self._breakdown.add(timing)
        return timing

    def phase(self, label: str) -> "_PhaseRegion":
        """Context manager labelling everything recorded inside it."""
        return _PhaseRegion(self, label)

    def elapsed_since(self, mark: float) -> float:
        """Simulated seconds elapsed since a previous value of :attr:`now`."""
        return self._now - mark

    def snapshot(self) -> TimeBreakdown:
        """Copy of the current breakdown (records are immutable, list is new)."""
        snap = TimeBreakdown()
        snap.records = list(self._breakdown.records)
        return snap

    def breakdown_since(self, n_records: int) -> TimeBreakdown:
        """Breakdown of the records added after the first ``n_records``."""
        snap = TimeBreakdown()
        snap.records = list(self._breakdown.records[n_records:])
        return snap

    def reset(self) -> None:
        """Reset the clock to zero and clear the breakdown."""
        self._now = 0.0
        self._breakdown = TimeBreakdown()
        self._phase_stack.clear()


class _PhaseRegion:
    """Context manager implementing :meth:`SimClock.phase`."""

    def __init__(self, clock: SimClock, label: str) -> None:
        self._clock = clock
        self._label = label

    def __enter__(self) -> "_PhaseRegion":
        self._clock._phase_stack.append(self._label)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._clock._phase_stack.pop()
