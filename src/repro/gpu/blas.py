"""cuBLAS stand-in: dense GEMM/SYRK/GEMV/transpose with roofline costs.

The Gaussian sketch, the Gram matrix, and the second (Gaussian) stage of the
multisketch are all applied with dense matrix-matrix products in the paper.
cuBLAS GEMM on an H100 is compute-bound and highly optimised, which is why
the Gram matrix is such a strong baseline; SYRK, although it does half the
arithmetic, performs noticeably worse in practice (Section 6), which is why
the paper's normal-equations solver uses GEMM for the Gram matrix.

All operations here take and return :class:`~repro.gpu.arrays.DeviceArray`
handles; in numeric mode the arithmetic is performed with NumPy, in analytic
mode only the cost is charged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest


class SimBLAS:
    """Dense BLAS operations on the simulated device."""

    #: SYRK achieves a noticeably lower fraction of peak than GEMM in
    #: practice; the paper calls this out explicitly when justifying the use
    #: of GEMM for the Gram matrix.
    SYRK_RELATIVE_EFFICIENCY = 0.55

    def __init__(self, executor: GPUExecutor) -> None:
        self._ex = executor

    # ------------------------------------------------------------------
    @staticmethod
    def _matmul_dims(a_shape, b_shape, trans_a: bool, trans_b: bool):
        am, ak = a_shape if not trans_a else (a_shape[1], a_shape[0])
        bk, bn = b_shape if not trans_b else (b_shape[1], b_shape[0])
        if ak != bk:
            raise ValueError(
                f"gemm dimension mismatch: ({am}x{ak}) @ ({bk}x{bn}) "
                f"with trans_a={trans_a}, trans_b={trans_b}"
            )
        return am, ak, bn

    # ------------------------------------------------------------------
    def gemm(
        self,
        a: DeviceArray,
        b: DeviceArray,
        *,
        trans_a: bool = False,
        trans_b: bool = False,
        alpha: float = 1.0,
        out: Optional[DeviceArray] = None,
        phase: str = "GEMM",
        label: str = "gemm_out",
    ) -> DeviceArray:
        """Compute ``alpha * op(a) @ op(b)``.

        FLOPs are ``2 m k n``; the memory traffic reads both operands once
        and writes the result once (blocking keeps re-reads in cache, which
        is folded into the GEMM efficiency constant).
        """
        m, k, n = self._matmul_dims(a.shape, b.shape, trans_a, trans_b)
        if out is None:
            out = self._ex.empty((m, n), dtype=a.dtype, order="F", label=label)
        elif out.shape != (m, n):
            raise ValueError(f"output shape {out.shape} does not match gemm result ({m}, {n})")

        if self._ex.numeric and a.is_numeric and b.is_numeric:
            lhs = a.data.T if trans_a else a.data
            rhs = b.data.T if trans_b else b.data
            np.matmul(lhs, rhs, out=out.data)
            if alpha != 1.0:
                out.data *= alpha

        itemsize = a.itemsize
        self._ex.launch(
            KernelRequest(
                name="gemm",
                kclass=KernelClass.GEMM,
                bytes_read=float(m * k + k * n) * itemsize,
                bytes_written=float(m * n) * itemsize,
                flops=2.0 * m * k * n,
                dtype_size=itemsize,
                phase=phase,
            )
        )
        return out

    # ------------------------------------------------------------------
    def syrk(
        self,
        a: DeviceArray,
        *,
        phase: str = "Gram matrix",
        label: str = "gram",
    ) -> DeviceArray:
        """Compute the Gram matrix ``a.T @ a`` with a SYRK-style update.

        Half the arithmetic of GEMM, but charged at a lower efficiency; the
        paper found GEMM to be faster in practice, and the ablation benchmark
        ``benchmarks/test_ablation_gram.py`` reproduces that comparison.
        """
        d, n = a.shape
        out = self._ex.empty((n, n), dtype=a.dtype, order="F", label=label)
        if self._ex.numeric and a.is_numeric:
            np.matmul(a.data.T, a.data, out=out.data)
            # Symmetrise to remove rounding asymmetry, as a real SYRK would
            # only compute one triangle.
            out.data[...] = 0.5 * (out.data + out.data.T)

        itemsize = a.itemsize
        flops = float(d) * n * (n + 1)  # ~ d*n^2, half of the GEMM count
        effective_flops = flops / self.SYRK_RELATIVE_EFFICIENCY
        self._ex.launch(
            KernelRequest(
                name="syrk",
                kclass=KernelClass.GEMM,
                bytes_read=float(d * n) * itemsize,
                bytes_written=float(n * n) * itemsize,
                flops=effective_flops,
                dtype_size=itemsize,
                phase=phase,
            )
        )
        return out

    def gram(self, a: DeviceArray, *, phase: str = "Gram matrix", use_syrk: bool = False) -> DeviceArray:
        """Compute ``a.T @ a`` the way the paper does (GEMM by default)."""
        if use_syrk:
            return self.syrk(a, phase=phase)
        return self.gemm(a, a, trans_a=True, phase=phase, label="gram")

    # ------------------------------------------------------------------
    def gemv(
        self,
        a: DeviceArray,
        x: DeviceArray,
        *,
        trans_a: bool = False,
        phase: str = "GEMV",
        label: str = "gemv_out",
    ) -> DeviceArray:
        """Compute ``op(a) @ x`` for a vector ``x`` (memory-bound)."""
        m, n = a.shape if not trans_a else (a.shape[1], a.shape[0])
        if x.shape[0] != n:
            raise ValueError(f"gemv dimension mismatch: ({m}x{n}) @ ({x.shape[0]},)")
        out = self._ex.empty((m,), dtype=a.dtype, label=label)
        if self._ex.numeric and a.is_numeric and x.is_numeric:
            mat = a.data.T if trans_a else a.data
            np.matmul(mat, x.data, out=out.data)

        itemsize = a.itemsize
        self._ex.launch(
            KernelRequest(
                name="gemv",
                kclass=KernelClass.STREAM,
                bytes_read=float(m * n + n) * itemsize,
                bytes_written=float(m) * itemsize,
                flops=2.0 * m * n,
                dtype_size=itemsize,
                phase=phase,
            )
        )
        return out

    # ------------------------------------------------------------------
    def transpose(
        self,
        a: DeviceArray,
        *,
        phase: str = "Transpose",
        label: str = "transposed",
    ) -> DeviceArray:
        """Out-of-place transpose (row-major <-> column-major conversion).

        Section 6.1 of the paper explains why the multisketch avoids
        transposing the large intermediate: this kernel reads and writes the
        whole array, so transposing the small final product instead saves
        time.
        """
        if a.ndim != 2:
            raise ValueError("transpose expects a 2-D array")
        m, n = a.shape
        new_order = "F" if a.order == "C" else "C"
        out = self._ex.empty((n, m), dtype=a.dtype, order=new_order, label=label)
        if self._ex.numeric and a.is_numeric:
            out.data[...] = a.data.T
        self._ex.launch(
            KernelRequest(
                name="transpose",
                kclass=KernelClass.STREAM,
                bytes_read=a.nbytes,
                bytes_written=a.nbytes,
                flops=0.0,
                dtype_size=a.itemsize,
                phase=phase,
            )
        )
        return out

    # ------------------------------------------------------------------
    def axpy(
        self,
        alpha: float,
        x: DeviceArray,
        y: DeviceArray,
        *,
        phase: str = "AXPY",
    ) -> DeviceArray:
        """In-place ``y += alpha * x`` (memory-bound streaming kernel)."""
        if x.shape != y.shape:
            raise ValueError("axpy requires matching shapes")
        if self._ex.numeric and x.is_numeric and y.is_numeric:
            y.data += alpha * x.data
        self._ex.launch(
            KernelRequest(
                name="axpy",
                kclass=KernelClass.STREAM,
                bytes_read=2.0 * x.nbytes,
                bytes_written=x.nbytes,
                flops=2.0 * x.size,
                dtype_size=x.itemsize,
                phase=phase,
            )
        )
        return y

    def scale(self, alpha: float, x: DeviceArray, *, phase: str = "Scale") -> DeviceArray:
        """In-place ``x *= alpha``."""
        if self._ex.numeric and x.is_numeric:
            x.data *= alpha
        self._ex.launch(
            KernelRequest(
                name="scal",
                kclass=KernelClass.STREAM,
                bytes_read=x.nbytes,
                bytes_written=x.nbytes,
                flops=float(x.size),
                dtype_size=x.itemsize,
                phase=phase,
            )
        )
        return x

    def norm2(self, x: DeviceArray, *, phase: str = "Norm") -> float:
        """Euclidean norm of a vector (numeric mode only returns the value)."""
        self._ex.launch(
            KernelRequest(
                name="nrm2",
                kclass=KernelClass.STREAM,
                bytes_read=x.nbytes,
                flops=2.0 * x.size,
                dtype_size=x.itemsize,
                phase=phase,
            )
        )
        if self._ex.numeric and x.is_numeric:
            return float(np.linalg.norm(x.data))
        return float("nan")
