"""cuSPARSE stand-in: CSR storage and SpMM with a random-sparsity cost model.

The paper's baseline CountSketch implementation stores the sketch as an
explicit sparse matrix and applies it with a cuSPARSE SpMM.  Because the
CountSketch's sparsity pattern is random (one nonzero per column, rows drawn
uniformly), the SpMM gathers rows of the dense operand in an essentially
random order, so its achieved bandwidth is poor -- the paper measures roughly
20% of peak, versus 50-60% for the dedicated Algorithm-2 kernel.  The cost
model here charges exactly that penalty through
:attr:`~repro.gpu.device.DeviceSpec.spmm_efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest


@dataclass
class DeviceCSR:
    """A CSR sparse matrix resident in simulated device memory.

    In analytic mode ``matrix`` is ``None`` and only the shape / nnz metadata
    is kept (enough for the cost model and the memory tracker).
    """

    shape: tuple
    nnz: int
    dtype: np.dtype
    matrix: Optional[sp.csr_matrix]
    index_itemsize: int = 4

    @property
    def nbytes(self) -> float:
        """Device bytes held by the CSR structure (values + indices + indptr)."""
        values = float(self.nnz) * self.dtype.itemsize
        indices = float(self.nnz) * self.index_itemsize
        indptr = float(self.shape[0] + 1) * self.index_itemsize
        return values + indices + indptr

    @property
    def is_numeric(self) -> bool:
        return self.matrix is not None


class SimSparse:
    """Sparse operations on the simulated device."""

    def __init__(self, executor: GPUExecutor) -> None:
        self._ex = executor

    # ------------------------------------------------------------------
    def build_csr(
        self,
        shape: tuple,
        rows: Optional[np.ndarray],
        cols: Optional[np.ndarray],
        values: Optional[np.ndarray],
        nnz: Optional[int] = None,
        dtype=np.float64,
        label: str = "csr",
        phase: str = "Sketch gen",
    ) -> DeviceCSR:
        """Assemble a CSR matrix on the device from COO triplets.

        Assembly (sorting by row, building the row pointer) is charged as a
        streaming pass over the triplets; for the CountSketch this is part of
        the "Sketch gen" time of the SpMM baseline.
        """
        dtype = np.dtype(dtype)
        if rows is not None and cols is not None and values is not None:
            matrix = sp.csr_matrix(
                (np.asarray(values, dtype=dtype), (np.asarray(rows), np.asarray(cols))),
                shape=shape,
            )
            nnz_actual = int(matrix.nnz)
        else:
            if nnz is None:
                raise ValueError("analytic build_csr requires nnz")
            matrix = None
            nnz_actual = int(nnz)

        csr = DeviceCSR(shape=tuple(shape), nnz=nnz_actual, dtype=dtype, matrix=matrix)
        self._ex.memory.alloc(csr.nbytes, label=label)
        self._ex.launch(
            KernelRequest(
                name="csr_assemble",
                kclass=KernelClass.STREAM,
                bytes_read=2.0 * csr.nbytes,
                bytes_written=csr.nbytes,
                flops=float(nnz_actual),
                phase=phase,
            )
        )
        return csr

    # ------------------------------------------------------------------
    def spmm(
        self,
        s: DeviceCSR,
        a: DeviceArray,
        *,
        phase: str = "Matrix sketch",
        label: str = "spmm_out",
    ) -> DeviceArray:
        """Compute ``S @ A`` for CSR ``S`` and dense ``A``.

        Memory traffic:

        * the CSR structure is read once,
        * for every nonzero the corresponding row of ``A`` is gathered
          (``nnz * n`` elements; with a random pattern these reads do not
          coalesce, which is what the SPMM efficiency constant captures), and
        * partial products are accumulated into the output: with one nonzero
          per column the accumulation writes ``nnz * n`` values in addition
          to the final ``k x n`` result, which is why the SpMM path moves
          roughly twice the CountSketch kernel's traffic at a quarter of its
          achieved bandwidth (Figures 2-3).
        """
        k, d = s.shape
        if a.shape[0] != d:
            raise ValueError(f"spmm dimension mismatch: S is {s.shape}, A is {a.shape}")
        n = a.shape[1]
        out = self._ex.empty((k, n), dtype=a.dtype, order=a.order, label=label)

        if self._ex.numeric and s.is_numeric and a.is_numeric:
            out.data[...] = s.matrix @ a.data

        itemsize = a.itemsize
        gather_bytes = float(s.nnz) * n * itemsize
        self._ex.launch(
            KernelRequest(
                name="cusparse_spmm",
                kclass=KernelClass.SPMM,
                bytes_read=s.nbytes + gather_bytes,
                bytes_written=float(k * n) * itemsize + gather_bytes,
                flops=2.0 * s.nnz * n,
                dtype_size=itemsize,
                phase=phase,
            )
        )
        return out

    def spmv(
        self,
        s: DeviceCSR,
        x: DeviceArray,
        *,
        phase: str = "Vector sketch",
        label: str = "spmv_out",
    ) -> DeviceArray:
        """Compute ``S @ x`` for CSR ``S`` and a dense vector ``x``."""
        k, d = s.shape
        if x.shape[0] != d:
            raise ValueError(f"spmv dimension mismatch: S is {s.shape}, x is {x.shape}")
        out = self._ex.empty((k,), dtype=x.dtype, label=label)
        if self._ex.numeric and s.is_numeric and x.is_numeric:
            out.data[...] = s.matrix @ x.data
        itemsize = x.itemsize
        self._ex.launch(
            KernelRequest(
                name="cusparse_spmv",
                kclass=KernelClass.SPMM,
                bytes_read=s.nbytes + float(s.nnz) * itemsize,
                bytes_written=float(k) * itemsize + float(s.nnz) * itemsize,
                flops=2.0 * s.nnz,
                dtype_size=itemsize,
                phase=phase,
            )
        )
        return out
