"""Device specifications for the simulated GPU.

A :class:`DeviceSpec` captures the roofline parameters that the paper's
performance analysis relies on: peak memory bandwidth, peak floating-point
throughput per precision, device memory capacity, and a handful of overhead
constants (kernel launch latency, atomic penalty, synchronisation cost).

The default device is an NVIDIA H100 SXM5 80GB, matching Section 6.1 of the
paper.  An A100 preset is provided because the rand_cholQR reference
([Higgins et al. 2024]) was evaluated on an A100, and a small "laptop" preset
is useful for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Roofline description of a (simulated) GPU.

    Parameters
    ----------
    name:
        Human readable device name.
    memory_bandwidth:
        Peak HBM bandwidth in bytes/second.
    peak_flops_fp64 / peak_flops_fp32:
        Peak floating point throughput (FLOP/s) for each precision,
        excluding tensor cores (the paper's kernels use plain CUDA cores
        for the sketches and cuBLAS GEMM for the dense work).
    memory_capacity:
        Device memory capacity in bytes.  Allocations beyond this raise
        :class:`~repro.gpu.memory.DeviceOutOfMemoryError`, reproducing the
        blank Gaussian bars in Figures 2 and 5.
    kernel_launch_overhead:
        Fixed per-kernel-launch latency in seconds.
    sync_overhead:
        Cost of a device-wide synchronisation (seconds); the FWHT pays this
        once per stage, which is one of the reasons the SRHT underperforms.
    atomic_efficiency:
        Multiplicative efficiency applied to the memory throughput of
        kernels dominated by atomics (the Algorithm-2 CountSketch).  The
        paper reports 50-60% of peak for that kernel.
    spmm_efficiency:
        Achieved fraction of peak bandwidth for cuSPARSE SpMM with a random
        sparsity pattern (the paper reports ~20%).
    gemm_efficiency:
        Achieved fraction of peak FLOP/s for large cuBLAS GEMM.
    stream_efficiency:
        Achieved fraction of peak bandwidth for well-coalesced streaming
        kernels (copies, transposes, scalings).
    fwht_efficiency:
        Achieved fraction of peak bandwidth for the shared-memory staged
        radix-4 FWHT (the paper reports 60-70%).
    rng_rate:
        Random number generation rate in values/second (cuRAND Philox-like).
    shared_memory_per_block:
        Bytes of shared memory available to a block; controls when the FWHT
        switches to its shared-memory stage.
    """

    name: str
    memory_bandwidth: float
    peak_flops_fp64: float
    peak_flops_fp32: float
    memory_capacity: float
    kernel_launch_overhead: float = 5.0e-6
    sync_overhead: float = 3.0e-6
    atomic_efficiency: float = 0.55
    spmm_efficiency: float = 0.20
    gemm_efficiency: float = 0.80
    stream_efficiency: float = 0.85
    fwht_efficiency: float = 0.65
    rng_rate: float = 6.0e10
    shared_memory_per_block: int = 48 * 1024

    def peak_flops(self, dtype_size: int) -> float:
        """Return the peak FLOP/s for a given floating point width in bytes."""
        if dtype_size >= 8:
            return self.peak_flops_fp64
        return self.peak_flops_fp32

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)


#: NVIDIA H100 SXM5 80GB -- the device used in the paper (Section 6.1).
H100_SXM5 = DeviceSpec(
    name="NVIDIA H100 SXM5 80GB",
    memory_bandwidth=3.35e12,
    peak_flops_fp64=33.5e12,
    peak_flops_fp32=66.9e12,
    memory_capacity=80.0e9,
)

#: NVIDIA A100 SXM4 80GB -- used by the rand_cholQR reference implementation.
A100_SXM4 = DeviceSpec(
    name="NVIDIA A100 SXM4 80GB",
    memory_bandwidth=2.04e12,
    peak_flops_fp64=9.7e12,
    peak_flops_fp32=19.5e12,
    memory_capacity=80.0e9,
)

#: Tiny device used by the test-suite to exercise OOM and overhead paths
#: without allocating large arrays.
TEST_DEVICE = DeviceSpec(
    name="test-device-1GB",
    memory_bandwidth=1.0e11,
    peak_flops_fp64=1.0e12,
    peak_flops_fp32=2.0e12,
    memory_capacity=1.0e9,
)

_REGISTRY = {
    "h100": H100_SXM5,
    "h100-sxm5": H100_SXM5,
    "a100": A100_SXM4,
    "a100-sxm4": A100_SXM4,
    "test": TEST_DEVICE,
}


def get_device(name: str = "h100") -> DeviceSpec:
    """Look up a device preset by (case-insensitive) name.

    Raises
    ------
    KeyError
        If the name is not one of the registered presets.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown device '{name}'; available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]


def register_device(key: str, spec: DeviceSpec) -> None:
    """Register a custom device preset under ``key`` for :func:`get_device`."""
    _REGISTRY[key.strip().lower()] = spec
