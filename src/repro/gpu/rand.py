"""cuRAND stand-in: device random number generation with a cost model.

The paper (Section 6.1) uses cuRAND to generate the random sketches and shows
that the cost of generating the dense Gaussian matrix is a non-negligible part
of the Gaussian sketch's "Sketch gen time", while the CountSketch only needs
``d`` random integers and ``d`` random booleans, which is effectively free.
This module reproduces both behaviours: numeric generation uses NumPy's
Philox generator (counter-based, like cuRAND's default), and each generation
call charges time proportional to the number of values produced plus the
bytes written.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest


class SimRNG:
    """Device random number generator bound to a :class:`GPUExecutor`.

    Parameters
    ----------
    executor:
        The executor that owns memory, timing, and the host-side generator.
    phase:
        Default phase label for generation kernels; the paper's figures call
        this "Sketch gen".
    """

    def __init__(self, executor: GPUExecutor, phase: str = "Sketch gen") -> None:
        self._ex = executor
        self._phase = phase

    def _generator(self, generator: Optional[np.random.Generator]) -> np.random.Generator:
        """The generator used for numeric draws (defaults to the executor's)."""
        return generator if generator is not None else self._ex.rng

    # ------------------------------------------------------------------
    def _charge(self, name: str, count: float, bytes_written: float, phase: Optional[str]) -> None:
        self._ex.launch(
            KernelRequest(
                name=name,
                kclass=KernelClass.RNG,
                bytes_written=bytes_written,
                flops=float(count),  # interpreted as "values generated" by the cost model
                phase=phase if phase is not None else self._phase,
            )
        )

    # ------------------------------------------------------------------
    def standard_normal(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        scale: float = 1.0,
        order: str = "C",
        label: str = "gaussian",
        phase: Optional[str] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> DeviceArray:
        """Generate i.i.d. N(0, scale^2) values on the device.

        This is the expensive path used by the Gaussian sketch: a
        ``k x d`` matrix of doubles both costs generation time and occupies
        device memory (which is what produces the paper's out-of-memory bars).
        """
        arr = self._ex.empty(shape, dtype=dtype, order=order, label=label)
        if arr.data is not None:
            arr.data[...] = self._generator(generator).standard_normal(size=shape).astype(dtype, copy=False)
            if scale != 1.0:
                arr.data *= scale
        self._charge("curand_normal", arr.size, arr.nbytes, phase)
        return arr

    def uniform_integers(
        self,
        low: int,
        high: int,
        count: int,
        dtype=np.int32,
        label: str = "row_map",
        phase: Optional[str] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> DeviceArray:
        """Generate ``count`` uniform integers in ``[low, high)`` (CountSketch row map)."""
        arr = self._ex.empty((int(count),), dtype=dtype, label=label)
        if arr.data is not None:
            arr.data[...] = self._generator(generator).integers(low, high, size=int(count), dtype=np.int64).astype(dtype)
        self._charge("curand_uniform_int", count, arr.nbytes, phase)
        return arr

    def rademacher(
        self,
        count: int,
        as_bool: bool = True,
        label: str = "signs",
        phase: Optional[str] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> DeviceArray:
        """Generate ``count`` Rademacher variables.

        With ``as_bool=True`` (the Algorithm-2 representation) the result is a
        boolean array where True means +1; otherwise it is ``+/-1`` in int8.
        """
        dtype = np.bool_ if as_bool else np.int8
        arr = self._ex.empty((int(count),), dtype=dtype, label=label)
        if arr.data is not None:
            bits = self._generator(generator).integers(0, 2, size=int(count), dtype=np.int8)
            if as_bool:
                arr.data[...] = bits.astype(np.bool_)
            else:
                arr.data[...] = (2 * bits - 1).astype(np.int8)
        self._charge("curand_rademacher", count, arr.nbytes, phase)
        return arr

    def sample_without_replacement(
        self,
        population: int,
        count: int,
        dtype=np.int64,
        label: str = "row_sample",
        phase: Optional[str] = None,
        generator: Optional[np.random.Generator] = None,
    ) -> DeviceArray:
        """Sample ``count`` distinct indices from ``range(population)`` (SRHT row sampling)."""
        if count > population:
            raise ValueError("cannot sample more indices than the population size")
        arr = self._ex.empty((int(count),), dtype=dtype, label=label)
        if arr.data is not None:
            arr.data[...] = self._generator(generator).choice(population, size=int(count), replace=False).astype(dtype)
        self._charge("curand_sample", count, arr.nbytes, phase)
        return arr

    def random_matrix(
        self,
        shape: Tuple[int, ...],
        dtype=np.float64,
        order: str = "C",
        label: str = "A",
        phase: str = "Problem gen",
        generator: Optional[np.random.Generator] = None,
    ) -> DeviceArray:
        """Generate a dense random test matrix (uniform in [-1, 1)).

        Used by the workload generators; charged under its own phase so it
        never pollutes the sketch/solve timings.
        """
        arr = self._ex.empty(shape, dtype=dtype, order=order, label=label)
        if arr.data is not None:
            arr.data[...] = (self._generator(generator).random(size=shape) * 2.0 - 1.0).astype(dtype, copy=False)
        self._charge("curand_uniform", arr.size, arr.nbytes, phase)
        return arr
