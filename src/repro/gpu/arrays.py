"""Device array handles for the simulated GPU.

A :class:`DeviceArray` is a lightweight handle describing an array resident in
(simulated) device memory: shape, dtype, storage order, and -- in *numeric*
mode -- the actual NumPy data.  In *analytic* mode the data pointer is absent
and only shapes flow through the pipelines, which lets the harness sweep the
paper's full problem sizes (up to :math:`2^{23} \\times 256` doubles, tens of
GB) without allocating them on the host.

Storage order matters in the paper: the CountSketch kernel wants row-major
``A`` for coalesced row reads, the FWHT wants column-major, and the
multisketch exploits a row-major/column-major reinterpretation to avoid
transposing the large intermediate.  The handle records the order so the
library code can charge transpose kernels exactly where the paper does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class DeviceArray:
    """Handle to a (simulated) device-resident array.

    Instances are created by :class:`~repro.gpu.executor.GPUExecutor`; user
    code should not construct them directly.

    Attributes
    ----------
    shape:
        Array shape.
    dtype:
        NumPy dtype.
    order:
        ``"C"`` (row-major) or ``"F"`` (column-major).  This is a *logical*
        label used by the cost model; the backing NumPy array is always kept
        C-contiguous for simplicity.
    data:
        The backing NumPy array in numeric mode, ``None`` in analytic mode.
    label:
        Human-readable label used in memory-tracker diagnostics.
    """

    __slots__ = ("shape", "dtype", "order", "data", "label", "_handle", "_executor")

    def __init__(
        self,
        shape: Tuple[int, ...],
        dtype,
        order: str,
        data: Optional[np.ndarray],
        label: str,
        handle: Optional[int],
        executor,
    ) -> None:
        if order not in ("C", "F"):
            raise ValueError("order must be 'C' or 'F'")
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.order = order
        self.data = data
        self.label = label
        self._handle = handle
        self._executor = executor

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> float:
        """Size of the array in bytes."""
        return float(self.size) * self.dtype.itemsize

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def is_numeric(self) -> bool:
        """Whether this handle carries actual data."""
        return self.data is not None

    # ------------------------------------------------------------------
    def require_data(self) -> np.ndarray:
        """Return the backing array, raising if running analytically."""
        if self.data is None:
            raise RuntimeError(
                f"DeviceArray '{self.label}' has no numeric data "
                "(executor is in analytic mode)"
            )
        return self.data

    def to_host(self) -> np.ndarray:
        """Copy the array back to the host (numeric mode only)."""
        return np.array(self.require_data(), copy=True)

    def free(self) -> None:
        """Release the simulated device memory held by this handle."""
        if self._handle is not None and self._executor is not None:
            self._executor.memory.free_handle(self._handle)
            self._handle = None
        self.data = None

    def with_order(self, order: str) -> "DeviceArray":
        """Return a handle viewing the same data under a different logical order.

        This is the zero-cost reinterpretation used by the multisketch trick
        in Section 6.1 of the paper: a ``k x n`` row-major array is exactly an
        ``n x k`` column-major array, so no data movement is required.  The
        shape is transposed accordingly.
        """
        if order == self.order:
            return self
        if self.ndim == 2:
            new_shape = tuple(reversed(self.shape))
            new_data = self.data.T if self.data is not None else None
        else:
            new_shape = self.shape
            new_data = self.data
        view = DeviceArray(
            shape=new_shape,
            dtype=self.dtype,
            order=order,
            data=new_data,
            label=self.label,
            handle=None,  # the original handle keeps ownership
            executor=self._executor,
        )
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "numeric" if self.is_numeric else "analytic"
        return (
            f"DeviceArray(shape={self.shape}, dtype={self.dtype.name}, "
            f"order='{self.order}', mode={mode}, label='{self.label}')"
        )
