"""Kernel cost model for the simulated GPU.

Every simulated kernel is described by the quantities the paper's roofline
discussion uses:

* the bytes it reads/writes from global memory,
* the floating point operations it performs,
* the number of launches / synchronisation stages it needs, and
* a *kernel class* determining the fraction of the device's peak bandwidth or
  peak FLOP/s it can realistically achieve.

The achieved-fraction constants live on :class:`~repro.gpu.device.DeviceSpec`
and are calibrated to the percentages the paper reports in Figures 3 and 4:
~50-60% of peak bandwidth for the atomic CountSketch kernel (Algorithm 2),
~20% for the cuSPARSE SpMM CountSketch, ~60-70% for the FWHT/SRHT, and a high
FLOP fraction for the cuBLAS GEMM paths (Gram matrix, Gaussian sketch).

The model is the classic roofline max(memory time, compute time) plus fixed
per-launch and per-synchronisation overheads.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.gpu.device import DeviceSpec
from repro.gpu.timing import KernelTiming


class KernelClass(enum.Enum):
    """Execution-efficiency class of a kernel."""

    #: Well-coalesced streaming kernel (copy, transpose, scale, axpy).
    STREAM = "stream"
    #: Kernel dominated by atomic additions into global memory
    #: (the Algorithm-2 CountSketch).
    ATOMIC = "atomic"
    #: Sparse matrix x dense matrix product with random sparsity
    #: (cuSPARSE SpMM CountSketch baseline).
    SPMM = "spmm"
    #: Dense matrix-matrix multiply (cuBLAS GEMM / SYRK).
    GEMM = "gemm"
    #: Shared-memory staged FWHT butterflies.
    FWHT = "fwht"
    #: Random number generation (cuRAND).
    RNG = "rng"
    #: Dense factorisation kernels (cuSOLVER POTRF/GEQRF/ORMQR) -- these are
    #: blocked algorithms that achieve a decent but not ideal FLOP fraction
    #: on tall-skinny problems.
    FACTOR = "factor"
    #: Triangular solves with a single right-hand side (TRSV) or a block
    #: (TRSM); bandwidth-bound at the paper's sizes.
    TRIANGULAR = "triangular"


@dataclass(frozen=True)
class KernelRequest:
    """Resource request for one logical kernel.

    Attributes
    ----------
    name:
        Kernel name for reporting.
    kclass:
        The :class:`KernelClass` that selects the efficiency constants.
    bytes_read / bytes_written:
        Global-memory traffic in bytes.
    flops:
        Floating point operations.
    launches:
        Number of kernel launches folded into the request (each pays the
        launch overhead).
    syncs:
        Number of device synchronisations (each pays the sync overhead).
    dtype_size:
        Width of the floating point type in bytes (8 for FP64), used to pick
        the FLOP peak.
    phase:
        Default phase label attached to the resulting timing.
    """

    name: str
    kclass: KernelClass
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    launches: int = 1
    syncs: int = 0
    dtype_size: int = 8
    phase: str = "unlabelled"

    @property
    def bytes_moved(self) -> float:
        return self.bytes_read + self.bytes_written


class KernelCostModel:
    """Maps a :class:`KernelRequest` to a simulated :class:`KernelTiming`.

    Parameters
    ----------
    device:
        Roofline parameters of the simulated device.
    min_kernel_time:
        Lower bound on the duration of a single launch; even an empty CUDA
        kernel takes a few microseconds end to end.
    """

    def __init__(self, device: DeviceSpec, min_kernel_time: float = 1.0e-6) -> None:
        self._device = device
        self._min_kernel_time = float(min_kernel_time)

    @property
    def device(self) -> DeviceSpec:
        return self._device

    # ------------------------------------------------------------------
    def bandwidth_efficiency(self, kclass: KernelClass) -> float:
        """Achieved fraction of peak memory bandwidth for a kernel class."""
        dev = self._device
        return {
            KernelClass.STREAM: dev.stream_efficiency,
            KernelClass.ATOMIC: dev.atomic_efficiency,
            KernelClass.SPMM: dev.spmm_efficiency,
            KernelClass.GEMM: dev.stream_efficiency,
            KernelClass.FWHT: dev.fwht_efficiency,
            KernelClass.RNG: dev.stream_efficiency,
            KernelClass.FACTOR: 0.60,
            KernelClass.TRIANGULAR: 0.40,
        }[kclass]

    def flop_efficiency(self, kclass: KernelClass) -> float:
        """Achieved fraction of peak FLOP/s for a kernel class."""
        dev = self._device
        return {
            KernelClass.STREAM: 0.25,
            KernelClass.ATOMIC: 0.25,
            KernelClass.SPMM: 0.10,
            KernelClass.GEMM: dev.gemm_efficiency,
            KernelClass.FWHT: 0.25,
            KernelClass.RNG: 0.25,
            # Panel-based factorizations (GEQRF on tall-skinny matrices,
            # POTRF on small Gram matrices) achieve a small fraction of peak;
            # this is what penalises the CountSketch-only sketch-and-solve
            # solver, whose GEQRF operates on a k = 2 n^2 row sketch (Fig. 5).
            KernelClass.FACTOR: 0.12,
            KernelClass.TRIANGULAR: 0.10,
        }[kclass]

    # ------------------------------------------------------------------
    def memory_time(self, request: KernelRequest) -> float:
        """Time attributable to global memory traffic (seconds)."""
        eff = self.bandwidth_efficiency(request.kclass)
        bw = self._device.memory_bandwidth * eff
        if bw <= 0.0:
            return math.inf
        return request.bytes_moved / bw

    def compute_time(self, request: KernelRequest) -> float:
        """Time attributable to floating point work (seconds)."""
        if request.flops <= 0.0:
            return 0.0
        if request.kclass is KernelClass.RNG:
            # RNG throughput is expressed directly in values/second; the
            # request encodes one flop per generated value.
            return request.flops / self._device.rng_rate
        eff = self.flop_efficiency(request.kclass)
        peak = self._device.peak_flops(request.dtype_size) * eff
        if peak <= 0.0:
            return math.inf
        return request.flops / peak

    def overhead_time(self, request: KernelRequest) -> float:
        """Fixed launch and synchronisation overhead (seconds)."""
        dev = self._device
        return (
            request.launches * max(dev.kernel_launch_overhead, self._min_kernel_time)
            + request.syncs * dev.sync_overhead
        )

    def estimate(self, request: KernelRequest, phase: Optional[str] = None) -> KernelTiming:
        """Produce the simulated timing for a kernel request.

        The roofline time is ``max(memory, compute)``; overheads are additive
        because launches and syncs serialise with the kernel body.
        """
        roofline = max(self.memory_time(request), self.compute_time(request))
        seconds = roofline + self.overhead_time(request)
        return KernelTiming(
            name=request.name,
            seconds=seconds,
            bytes_moved=request.bytes_moved,
            flops=request.flops,
            phase=phase if phase is not None else request.phase,
            launches=request.launches,
        )

    # ------------------------------------------------------------------
    def peak_bandwidth(self) -> float:
        """The device's peak memory bandwidth (bytes/second)."""
        return self._device.memory_bandwidth

    def peak_flops(self, dtype_size: int = 8) -> float:
        """The device's peak FLOP/s for the given precision width."""
        return self._device.peak_flops(dtype_size)
