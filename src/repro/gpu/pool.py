"""A reusable pool of GPU executors.

Every experiment in the reproduction so far created a fresh
:class:`~repro.gpu.executor.GPUExecutor` per run, which is the right model for
independent measurements but the wrong one for a service: a server wants a
fixed set of devices whose state (cached sketch operators, allocated
workspaces, accumulated clocks) persists across requests.  ``ExecutorPool``
provides exactly that -- a list of long-lived executors, one per simulated
device ("shard"), plus the load-tracking queries a scheduler needs.

The pool is deliberately dumb about *policy*: picking which shard runs which
batch is the job of :class:`repro.serving.scheduler.ShardScheduler`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor


class ExecutorPool:
    """A fixed-size pool of long-lived :class:`GPUExecutor` workers.

    Parameters
    ----------
    size:
        Number of executors ("shards") in the pool.
    device:
        Device spec shared by every executor.
    numeric:
        Whether the executors carry real data (see :class:`GPUExecutor`).
    seed:
        Base seed; shard ``i`` gets ``seed + i`` so per-shard RNG streams are
        decorrelated but reproducible.
    track_memory:
        Forwarded to every executor.
    """

    def __init__(
        self,
        size: int,
        *,
        device: DeviceSpec = H100_SXM5,
        numeric: bool = True,
        seed: Optional[int] = 0,
        track_memory: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.device = device
        self._executors: List[GPUExecutor] = [
            GPUExecutor(
                device,
                numeric=numeric,
                seed=None if seed is None else seed + i,
                track_memory=track_memory,
            )
            for i in range(size)
        ]

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of executors in the pool."""
        return len(self._executors)

    def __len__(self) -> int:
        return len(self._executors)

    def __getitem__(self, shard: int) -> GPUExecutor:
        return self._executors[shard]

    def __iter__(self) -> Iterator[GPUExecutor]:
        return iter(self._executors)

    # ------------------------------------------------------------------
    def loads(self) -> List[float]:
        """Accumulated simulated busy seconds per shard."""
        return [ex.elapsed for ex in self._executors]

    def least_loaded(self, among: Optional[Sequence[int]] = None) -> int:
        """Index of the shard with the least accumulated simulated time.

        ``among`` restricts the choice to a subset of shard indices -- the
        elastic scheduler passes its *active* set, so scaled-out shards are
        never handed work while they are parked.
        """
        loads = self.loads()
        if among is None:
            return loads.index(min(loads))
        candidates = list(among)
        if not candidates:
            raise ValueError("least_loaded needs at least one candidate shard")
        return min(candidates, key=lambda s: loads[s])

    def makespan(self, among: Optional[Sequence[int]] = None) -> float:
        """Simulated completion time: the busiest shard's accumulated seconds.

        Shards execute concurrently, so the pool-level elapsed time of a
        workload is the maximum -- not the sum -- of the per-shard clocks.
        ``among`` restricts the measurement to a subset of shards.
        """
        loads = self.loads()
        if among is None:
            return max(loads)
        candidates = list(among)
        if not candidates:
            return 0.0
        return max(loads[s] for s in candidates)

    def min_load(self, among: Optional[Sequence[int]] = None) -> float:
        """Least-busy shard's accumulated seconds (earliest a new batch can start).

        The runtime stamps request admission with this value: in simulated
        time, "now" for a newly admitted request is the soonest any
        (active) shard could pick it up.
        """
        loads = self.loads()
        if among is None:
            return min(loads)
        candidates = list(among)
        if not candidates:
            return 0.0
        return min(loads[s] for s in candidates)

    def total_busy_seconds(self) -> float:
        """Sum of simulated busy seconds across all shards."""
        return sum(self.loads())

    def reset_clocks(self) -> None:
        """Zero every shard's simulated clock (cached state is kept)."""
        for ex in self._executors:
            ex.reset_clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutorPool(size={self.size}, device='{self.device.name}')"
