"""cuSOLVER stand-in: POTRF, GEQRF, ORMQR, TRSV, TRSM.

Section 6.1 of the paper describes exactly which dense factorisation routines
each least-squares method uses:

* the normal equations: Gram matrix (GEMM) + ``POTRF`` + two ``TRSV``;
* sketch-and-solve: ``GEQRF`` on the sketched matrix + ``ORMQR`` to apply the
  reflectors to the sketched right-hand side + ``TRSV``;
* rand_cholQR least squares (Algorithm 5): ``GEQRF`` on the sketch,
  a big ``TRSM`` to precondition ``A``, a Gram matrix, ``POTRF`` and two
  triangular solves.

The cost model charges the standard LAPACK flop counts; the numeric mode uses
NumPy/SciPy factorisations so failure modes (e.g. Cholesky breaking down on a
numerically indefinite Gram matrix, the mechanism behind Figure 8's normal
equations curve) are faithfully reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest


class CholeskyFailedError(np.linalg.LinAlgError):
    """Raised when POTRF encounters a non-positive-definite matrix.

    This is the failure mode of the normal equations for ill-conditioned
    problems (kappa(A) > u^{-1/2}); Figure 8 of the paper shows it directly.
    """


@dataclass
class QRFactors:
    """Result of :meth:`SimSolver.geqrf`: the implicit QR factorisation.

    ``q`` holds the (economy) orthogonal factor in numeric mode; a real GEQRF
    would keep Householder reflectors instead, but the arithmetic charged is
    the reflector-based count, and ORMQR consumes this object the same way.
    """

    q: Optional[DeviceArray]
    r: DeviceArray
    rows: int
    cols: int


class SimSolver:
    """Dense factorisation and triangular-solve routines on the simulated device."""

    def __init__(self, executor: GPUExecutor) -> None:
        self._ex = executor

    # ------------------------------------------------------------------
    def potrf(self, g: DeviceArray, *, phase: str = "POTRF", label: str = "chol") -> DeviceArray:
        """Cholesky factorisation ``G = R^T R`` (upper-triangular R returned).

        Raises
        ------
        CholeskyFailedError
            If the matrix is not numerically positive definite.
        """
        n = g.shape[0]
        if g.shape[0] != g.shape[1]:
            raise ValueError("potrf expects a square matrix")
        out = self._ex.empty((n, n), dtype=g.dtype, order="F", label=label)

        self._ex.launch(
            KernelRequest(
                name="potrf",
                kclass=KernelClass.FACTOR,
                bytes_read=float(n * n) * g.itemsize,
                bytes_written=float(n * n) * g.itemsize,
                flops=float(n) ** 3 / 3.0,
                dtype_size=g.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and g.is_numeric:
            try:
                chol = np.linalg.cholesky(g.data)
            except np.linalg.LinAlgError as exc:
                raise CholeskyFailedError(str(exc)) from exc
            out.data[...] = chol.T  # store the upper factor
        return out

    # ------------------------------------------------------------------
    def geqrf(self, y: DeviceArray, *, phase: str = "GEQRF", label: str = "qr") -> QRFactors:
        """Economy QR factorisation of a tall matrix ``Y`` (k x n, k >= n).

        FLOPs follow the Householder count ``2 k n^2 - 2 n^3 / 3``; this is
        the term that penalises the CountSketch-only sketch-and-solve solver
        in Figure 5, because its sketch has ``k = 2 n^2`` rows.
        """
        k, n = y.shape
        if k < n:
            raise ValueError("geqrf expects a tall (k >= n) matrix")
        r = self._ex.empty((n, n), dtype=y.dtype, order="F", label=f"{label}_R")
        q: Optional[DeviceArray] = None

        self._ex.launch(
            KernelRequest(
                name="geqrf",
                kclass=KernelClass.FACTOR,
                bytes_read=float(k * n) * y.itemsize,
                bytes_written=float(k * n + n * n) * y.itemsize,
                flops=2.0 * k * n * n - 2.0 * n ** 3 / 3.0,
                dtype_size=y.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and y.is_numeric:
            q_np, r_np = np.linalg.qr(y.data, mode="reduced")
            q = self._ex.empty((k, n), dtype=y.dtype, order="F", label=f"{label}_Q")
            q.data[...] = q_np
            r.data[...] = r_np
        return QRFactors(q=q, r=r, rows=k, cols=n)

    # ------------------------------------------------------------------
    def ormqr(
        self,
        factors: QRFactors,
        b: DeviceArray,
        *,
        phase: str = "ORMQR",
        label: str = "qtb",
    ) -> DeviceArray:
        """Apply ``Q^T`` (from :meth:`geqrf`) to a vector or block ``b``.

        Returns only the first ``n`` rows of ``Q^T b``, which is what the
        triangular solve needs.
        """
        k, n = factors.rows, factors.cols
        if b.shape[0] != k:
            raise ValueError(f"ormqr dimension mismatch: Q is {k} rows, b has {b.shape[0]}")
        nrhs = 1 if b.ndim == 1 else b.shape[1]
        out_shape = (n,) if b.ndim == 1 else (n, nrhs)
        out = self._ex.empty(out_shape, dtype=b.dtype, label=label)

        self._ex.launch(
            KernelRequest(
                name="ormqr",
                kclass=KernelClass.FACTOR,
                bytes_read=float(k * n + k * nrhs) * b.itemsize,
                bytes_written=float(n * nrhs) * b.itemsize,
                flops=4.0 * k * n * nrhs - 2.0 * n * n * nrhs,
                dtype_size=b.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and b.is_numeric:
            if factors.q is None:
                raise RuntimeError("numeric ORMQR requires numeric QR factors")
            out.data[...] = factors.q.data.T @ b.data
        return out

    # ------------------------------------------------------------------
    def trsv(
        self,
        r: DeviceArray,
        b: DeviceArray,
        *,
        lower: bool = False,
        transpose: bool = False,
        phase: str = "TRSV",
        label: str = "trsv_out",
    ) -> DeviceArray:
        """Solve the triangular system ``op(R) x = b`` for a single vector."""
        n = r.shape[0]
        if r.shape[0] != r.shape[1] or b.shape[0] != n:
            raise ValueError("trsv dimension mismatch")
        out = self._ex.empty((n,), dtype=b.dtype, label=label)

        self._ex.launch(
            KernelRequest(
                name="trsv",
                kclass=KernelClass.TRIANGULAR,
                bytes_read=float(n * n / 2 + n) * b.itemsize,
                bytes_written=float(n) * b.itemsize,
                flops=float(n) * n,
                dtype_size=b.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and r.is_numeric and b.is_numeric:
            mat = r.data.T if transpose else r.data
            is_lower = lower ^ transpose
            out.data[...] = sla.solve_triangular(mat, b.data, lower=is_lower)
        return out

    # ------------------------------------------------------------------
    def trsm_left(
        self,
        r: DeviceArray,
        b: DeviceArray,
        *,
        lower: bool = False,
        transpose: bool = False,
        phase: str = "TRSM",
        label: str = "trsm_left_out",
    ) -> DeviceArray:
        """Solve ``op(R) X = B`` for a block of right-hand sides.

        The multi-RHS companion of :meth:`trsv`: ``R`` is ``n x n``
        triangular and ``B`` is ``n x nrhs``.  This is the solve the serving
        layer's fused micro-batches use -- one TRSM over the whole batch
        instead of one TRSV per request.
        """
        n = r.shape[0]
        if r.shape[0] != r.shape[1] or b.ndim != 2 or b.shape[0] != n:
            raise ValueError("trsm_left expects square R and an n x nrhs block B")
        nrhs = b.shape[1]
        out = self._ex.empty((n, nrhs), dtype=b.dtype, order="F", label=label)

        self._ex.launch(
            KernelRequest(
                name="trsm_left",
                kclass=KernelClass.TRIANGULAR,
                bytes_read=float(n * n / 2 + n * nrhs) * b.itemsize,
                bytes_written=float(n * nrhs) * b.itemsize,
                flops=float(n) * n * nrhs,
                dtype_size=b.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and r.is_numeric and b.is_numeric:
            mat = r.data.T if transpose else r.data
            is_lower = lower ^ transpose
            out.data[...] = sla.solve_triangular(mat, b.data, lower=is_lower)
        return out

    # ------------------------------------------------------------------
    def trsm(
        self,
        a: DeviceArray,
        r: DeviceArray,
        *,
        phase: str = "TRSM",
        label: str = "preconditioned",
    ) -> DeviceArray:
        """Solve ``X R = A`` for X, i.e. compute ``A @ R^{-1}`` for upper-triangular R.

        This is the preconditioning step ``A0 = A R0^{-1}`` of rand_cholQR
        (Algorithms 4-5); it streams the full d x n matrix, so at the paper's
        sizes it is one of the dominant costs of that solver.
        """
        d, n = a.shape
        if r.shape != (n, n):
            raise ValueError("trsm expects R to be n x n matching A's column count")
        out = self._ex.empty((d, n), dtype=a.dtype, order=a.order, label=label)

        self._ex.launch(
            KernelRequest(
                name="trsm",
                kclass=KernelClass.GEMM,
                bytes_read=float(d * n + n * n) * a.itemsize,
                bytes_written=float(d * n) * a.itemsize,
                flops=float(d) * n * n,
                dtype_size=a.itemsize,
                phase=phase,
            )
        )

        if self._ex.numeric and a.is_numeric and r.is_numeric:
            # Solve R^T Z^T = A^T  =>  Z = A R^{-1}
            out.data[...] = sla.solve_triangular(r.data, a.data.T, lower=False, trans="T").T
        return out

    # ------------------------------------------------------------------
    def householder_qr_solve(
        self,
        a: DeviceArray,
        b: DeviceArray,
        *,
        phase_prefix: str = "",
    ) -> DeviceArray:
        """Full Householder-QR least-squares solve on the *original* matrix.

        This is the reference "QR" solver of Figures 6-8.  It is accurate and
        stable but far slower than every other method at the paper's sizes,
        which is why the paper omits it from the timing plots.

        ``b`` may be a block of right-hand sides; ORMQR already applies the
        reflectors to the whole block and the final solve becomes a TRSM.
        """
        factors = self.geqrf(a, phase=f"{phase_prefix}GEQRF")
        qtb = self.ormqr(factors, b, phase=f"{phase_prefix}ORMQR")
        if qtb.ndim == 2:
            return self.trsm_left(factors.r, qtb, phase=f"{phase_prefix}TRSV", label="qr_solution")
        return self.trsv(factors.r, qtb, phase=f"{phase_prefix}TRSV", label="qr_solution")
