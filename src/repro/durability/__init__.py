"""repro.durability: checkpoint/WAL persistence for streaming sessions.

The durability subsystem (ROADMAP item 4) keeps streaming window state
alive across process death:

* :mod:`repro.durability.codec` -- one versioned, checksummed binary record
  format for every durable artifact, with a typed error hierarchy
  (:class:`DurabilityError` and friends) so corruption is always a
  diagnosis, never a wrong answer.
* :mod:`repro.durability.wal` -- length-prefixed, per-frame-CRC'd
  write-ahead-log framing; replay walks the valid prefix and reports the
  torn tail.
* :mod:`repro.durability.store` -- the pluggable :class:`CheckpointStore`
  (in-memory for tests, fsync'd directory-backed for real use) and the
  :class:`DurabilityConfig` a serving config carries.
* :mod:`repro.durability.session` -- serializers mapping a live
  :class:`~repro.streaming.solver.StreamingSolver` (all window modes,
  drift-detector state, cached solution) and WAL batch entries onto the
  record format.

The serving layer (:mod:`repro.serving.streaming`) drives these: WAL-append
before fold, periodic snapshots, and checkpoint + tail replay on restore.
"""

from repro.durability.codec import (
    ChecksumError,
    DecodedRecord,
    DurabilityError,
    MAGIC,
    SCHEMA_VERSION,
    SchemaError,
    TruncatedRecordError,
    decode_record,
    encode_record,
)
from repro.durability.session import (
    SESSION_KIND,
    WAL_BATCH_KIND,
    decode_wal_batch,
    deserialize_session,
    encode_wal_batch,
    serialize_session,
)
from repro.durability.store import (
    CheckpointStore,
    DirectoryCheckpointStore,
    DurabilityConfig,
    MemoryCheckpointStore,
)
from repro.durability.wal import WalReplay, frame, replay_wal

__all__ = [
    "ChecksumError",
    "CheckpointStore",
    "DecodedRecord",
    "DirectoryCheckpointStore",
    "DurabilityConfig",
    "DurabilityError",
    "MAGIC",
    "MemoryCheckpointStore",
    "SCHEMA_VERSION",
    "SESSION_KIND",
    "SchemaError",
    "TruncatedRecordError",
    "WAL_BATCH_KIND",
    "WalReplay",
    "decode_record",
    "decode_wal_batch",
    "deserialize_session",
    "encode_record",
    "encode_wal_batch",
    "frame",
    "replay_wal",
    "serialize_session",
]
