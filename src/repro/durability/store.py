"""Pluggable checkpoint/WAL stores and the serving durability config.

A :class:`CheckpointStore` holds, per session key, one *checkpoint* blob
(the latest full snapshot, replaced atomically) and one *WAL* byte string
(frames appended between checkpoints, truncated after each new snapshot).
Two implementations:

* :class:`MemoryCheckpointStore` -- dict-backed, for tests and the
  fault-injection harness (its raw byte access is what the torn-write /
  bit-flip injectors in ``tests/faults.py`` manipulate).
* :class:`DirectoryCheckpointStore` -- one directory per session under a
  root path; checkpoints are written to a temp file, fsync'd and renamed
  into place (a crash mid-write can never destroy the previous good
  snapshot), WAL appends are flushed and fsync'd before the call returns
  (the write-*ahead* property the serving layer's fold-after-append
  ordering relies on).
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "DurabilityConfig",
    "MemoryCheckpointStore",
]

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _check_key(key: str) -> str:
    key = str(key)
    if not _KEY_RE.match(key) or key in (".", ".."):
        raise ValueError(
            f"invalid store key '{key}': keys must match [A-Za-z0-9._-]+ "
            "and not be '.' or '..' (they become directory names in "
            "directory-backed stores)"
        )
    return key


class CheckpointStore:
    """Abstract per-session checkpoint + WAL storage.

    All byte strings are opaque to the store; framing and checksums live in
    :mod:`repro.durability.codec` / :mod:`repro.durability.wal`.  ``read``
    methods never raise on absence (``None`` / ``b""``), so "nothing durable
    yet" and "fresh store" are indistinguishable by design.
    """

    def write_checkpoint(self, key: str, blob: bytes) -> None:
        """Replace the session's checkpoint atomically and durably."""
        raise NotImplementedError

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        """The session's checkpoint blob, or ``None`` if it has none."""
        raise NotImplementedError

    def append_wal(self, key: str, data: bytes) -> None:
        """Append raw bytes to the session's WAL, durable on return."""
        raise NotImplementedError

    def read_wal(self, key: str) -> bytes:
        """The session's whole WAL byte string (``b""`` when empty)."""
        raise NotImplementedError

    def write_wal(self, key: str, blob: bytes) -> None:
        """Replace the session's WAL wholesale (reset, tests, injectors)."""
        raise NotImplementedError

    def reset_wal(self, key: str) -> None:
        """Truncate the session's WAL (called right after a checkpoint)."""
        self.write_wal(key, b"")

    def delete(self, key: str) -> None:
        """Drop everything stored for the session (idempotent)."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Keys with any durable state, sorted."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """In-memory store: the test double (and the fault-injection substrate)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checkpoints: Dict[str, bytes] = {}
        self._wals: Dict[str, bytes] = {}

    def write_checkpoint(self, key: str, blob: bytes) -> None:
        key = _check_key(key)
        with self._lock:
            self._checkpoints[key] = bytes(blob)

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._checkpoints.get(_check_key(key))

    def append_wal(self, key: str, data: bytes) -> None:
        key = _check_key(key)
        with self._lock:
            self._wals[key] = self._wals.get(key, b"") + bytes(data)

    def read_wal(self, key: str) -> bytes:
        with self._lock:
            return self._wals.get(_check_key(key), b"")

    def write_wal(self, key: str, blob: bytes) -> None:
        key = _check_key(key)
        with self._lock:
            self._wals[key] = bytes(blob)

    def delete(self, key: str) -> None:
        key = _check_key(key)
        with self._lock:
            self._checkpoints.pop(key, None)
            self._wals.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(set(self._checkpoints) | set(self._wals))


class DirectoryCheckpointStore(CheckpointStore):
    """Directory-backed store: ``<root>/<key>/{checkpoint.bin,wal.bin}``.

    Checkpoint writes are crash-safe (temp file + fsync + atomic rename +
    best-effort directory fsync); WAL appends are flushed and fsync'd per
    call, so an acknowledged append survives anything short of media loss.
    """

    _CHECKPOINT = "checkpoint.bin"
    _WAL = "wal.bin"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _dir(self, key: str, *, create: bool = False) -> Path:
        path = self.root / _check_key(key)
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _replace_file(self, directory: Path, name: str, blob: bytes) -> None:
        tmp = directory / (name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(bytes(blob))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, directory / name)
        self._fsync_dir(directory)

    def write_checkpoint(self, key: str, blob: bytes) -> None:
        self._replace_file(self._dir(key, create=True), self._CHECKPOINT, blob)

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        path = self._dir(key) / self._CHECKPOINT
        if not path.exists():
            return None
        return path.read_bytes()

    def append_wal(self, key: str, data: bytes) -> None:
        path = self._dir(key, create=True) / self._WAL
        with open(path, "ab") as fh:
            fh.write(bytes(data))
            fh.flush()
            os.fsync(fh.fileno())

    def read_wal(self, key: str) -> bytes:
        path = self._dir(key) / self._WAL
        if not path.exists():
            return b""
        return path.read_bytes()

    def write_wal(self, key: str, blob: bytes) -> None:
        self._replace_file(self._dir(key, create=True), self._WAL, blob)

    def delete(self, key: str) -> None:
        directory = self._dir(key)
        if not directory.exists():
            return
        for name in (self._CHECKPOINT, self._WAL, self._CHECKPOINT + ".tmp", self._WAL + ".tmp"):
            path = directory / name
            if path.exists():
                path.unlink()
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - foreign files left behind
            pass

    def keys(self) -> List[str]:
        out = []
        for child in self.root.iterdir():
            if not child.is_dir():
                continue
            if (child / self._CHECKPOINT).exists() or (child / self._WAL).exists():
                out.append(child.name)
        return sorted(out)


@dataclass
class DurabilityConfig:
    """Durability knobs of a :class:`~repro.serving.server.SketchServer`.

    Attributes
    ----------
    store:
        Where checkpoints and WAL tails live.
    checkpoint_interval_batches:
        WAL appends between automatic full snapshots of a session.  Smaller
        means cheaper recovery replay but more snapshot traffic; the WAL
        keeps every interval crash-safe either way.
    """

    store: CheckpointStore
    checkpoint_interval_batches: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.store, CheckpointStore):
            raise TypeError("store must be a CheckpointStore")
        if self.checkpoint_interval_batches < 1:
            raise ValueError("checkpoint_interval_batches must be at least 1")
