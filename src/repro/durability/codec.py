"""Versioned binary serialization for durable sketch/solver state.

One record format covers every durable artifact in the repository --
session checkpoints, WAL batch entries, and anything a future fleet layer
ships between nodes:

.. code-block:: text

    magic    4 bytes   b"RDUR"
    version  u16 LE    schema version (SCHEMA_VERSION)
    hlen     u32 LE    header length in bytes
    header   hlen      JSON: {"kind", "meta", "arrays": [{name,dtype,shape}]}
    blobs    ...       raw C-order array bytes, in header order
    crc      u32 LE    CRC32 over everything preceding it

The header carries all JSON-able metadata plus a manifest of the numpy
arrays appended after it; the trailing CRC32 covers the whole record, so a
flipped bit anywhere -- header or payload -- surfaces as a typed
:class:`ChecksumError` instead of silently corrupted state.  Decoding never
guesses: a record that is short is :class:`TruncatedRecordError`, a record
from an unknown magic/version (or of the wrong ``kind``) is
:class:`SchemaError`.  All three share :class:`DurabilityError`, which is
the contract the serving layer's fresh-session fallback catches.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = [
    "ChecksumError",
    "DecodedRecord",
    "DurabilityError",
    "MAGIC",
    "SCHEMA_VERSION",
    "SchemaError",
    "TruncatedRecordError",
    "decode_record",
    "encode_record",
]

#: Leading magic of every durable record.
MAGIC = b"RDUR"

#: Current schema version.  Bump when the record layout (not the payload
#: contents -- those are self-describing) changes incompatibly; decoders
#: accept records up to their own version and reject newer ones.
SCHEMA_VERSION = 1

_PREFIX = struct.Struct("<4sHI")  # magic, version, header length
_CRC = struct.Struct("<I")


class DurabilityError(Exception):
    """Base of every typed durability failure (decode, store, restore)."""


class TruncatedRecordError(DurabilityError):
    """The record ends before its declared length (torn or partial write)."""


class ChecksumError(DurabilityError):
    """The record is complete but its CRC32 does not match (bit rot)."""


class SchemaError(DurabilityError):
    """Unknown magic, unsupported schema version, or unexpected record kind."""


@dataclass
class DecodedRecord:
    """A decoded durable record: its kind, metadata, and named arrays."""

    kind: str
    meta: Dict[str, object]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


def encode_record(
    kind: str,
    meta: Dict[str, object],
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> bytes:
    """Serialize ``(kind, meta, arrays)`` into one checksummed record.

    ``meta`` must be JSON-serializable; ``arrays`` values are converted to
    contiguous numpy arrays and stored with their dtype/shape manifest, so
    :func:`decode_record` reproduces them bit-for-bit.
    """
    manifest = []
    blobs = []
    for name, value in (arrays or {}).items():
        arr = np.ascontiguousarray(np.asarray(value))
        manifest.append({"name": str(name), "dtype": arr.dtype.str, "shape": list(arr.shape)})
        blobs.append(arr.tobytes())
    header = json.dumps(
        {"kind": str(kind), "meta": meta, "arrays": manifest},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    body = b"".join([_PREFIX.pack(MAGIC, SCHEMA_VERSION, len(header)), header, *blobs])
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def decode_record(blob: bytes, *, expect_kind: Optional[str] = None) -> DecodedRecord:
    """Decode one record, verifying structure, checksum, and (optionally) kind.

    Raises :class:`TruncatedRecordError` when the blob is shorter than its
    declared layout, :class:`SchemaError` on foreign magic / newer schema /
    trailing garbage / kind mismatch, and :class:`ChecksumError` when the
    CRC32 disagrees -- never returns partially-decoded state.
    """
    blob = bytes(blob)
    if len(blob) < _PREFIX.size + _CRC.size:
        raise TruncatedRecordError(
            f"record too short ({len(blob)} bytes) to hold a header and checksum"
        )
    magic, version, hlen = _PREFIX.unpack_from(blob, 0)
    if magic != MAGIC:
        raise SchemaError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"record schema version {version} is newer than supported {SCHEMA_VERSION}"
        )
    header_end = _PREFIX.size + hlen
    if len(blob) < header_end + _CRC.size:
        raise TruncatedRecordError(
            f"record truncated inside its header ({len(blob)} bytes, header ends at {header_end})"
        )
    try:
        header = json.loads(blob[_PREFIX.size : header_end].decode("utf-8"))
        manifest = header["arrays"]
        kind = str(header["kind"])
        meta = header["meta"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        # Structurally complete but unparseable header: the bytes were
        # altered (the CRC would also fail) -- report it as corruption.
        raise ChecksumError(f"record header is not decodable: {exc}") from exc
    payload = sum(
        int(np.dtype(entry["dtype"]).itemsize) * int(np.prod(entry["shape"], dtype=np.int64))
        for entry in manifest
    )
    expected = header_end + payload + _CRC.size
    if len(blob) < expected:
        raise TruncatedRecordError(
            f"record truncated: {len(blob)} bytes, layout declares {expected}"
        )
    if len(blob) > expected:
        raise SchemaError(f"{len(blob) - expected} trailing bytes after the record")
    (crc_stored,) = _CRC.unpack_from(blob, expected - _CRC.size)
    crc_actual = zlib.crc32(blob[: expected - _CRC.size]) & 0xFFFFFFFF
    if crc_stored != crc_actual:
        raise ChecksumError(
            f"record checksum mismatch (stored {crc_stored:#010x}, computed {crc_actual:#010x})"
        )
    if expect_kind is not None and kind != expect_kind:
        raise SchemaError(f"expected a '{expect_kind}' record, got '{kind}'")
    arrays: Dict[str, np.ndarray] = {}
    offset = header_end
    for entry in manifest:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        arrays[entry["name"]] = (
            np.frombuffer(blob, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)), offset=offset)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    return DecodedRecord(kind=kind, meta=meta, arrays=arrays)
