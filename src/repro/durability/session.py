"""Durable encodings of streaming sessions and their WAL batch entries.

Two record kinds, both carried by :mod:`repro.durability.codec`:

``repro.stream-session``
    A full :class:`~repro.streaming.solver.StreamingSolver` snapshot
    (engine config, window state in every mode, drift-detector EWMA state,
    cached solution) plus the serving layer's session metadata -- most
    importantly ``durable_seq``, the WAL sequence number the snapshot is
    current through, which is what makes checkpoint + WAL-tail replay
    exactly-once.

``repro.wal-batch``
    One appended ``(rows, targets)`` batch with its sequence number.
    Batches are framed into the WAL by :func:`repro.durability.wal.frame`;
    replay after a restore skips entries already covered by the snapshot
    (``seq < base_seq``) so a crash between "write checkpoint" and
    "truncate WAL" can never double-fold a batch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.durability.codec import SchemaError, decode_record, encode_record
from repro.streaming.solver import StreamingSolver

__all__ = [
    "SESSION_KIND",
    "WAL_BATCH_KIND",
    "decode_wal_batch",
    "deserialize_session",
    "encode_wal_batch",
    "serialize_session",
]

#: Record kind of a full session checkpoint.
SESSION_KIND = "repro.stream-session"

#: Record kind of one WAL batch entry.
WAL_BATCH_KIND = "repro.wal-batch"


def serialize_session(solver: StreamingSolver, session_meta: Optional[dict] = None) -> bytes:
    """Encode a live streaming engine (plus serving metadata) into one record."""
    meta, arrays = solver.state_dict()
    return encode_record(
        SESSION_KIND,
        {"engine": meta, "session": dict(session_meta or {})},
        arrays,
    )


def deserialize_session(blob: bytes, *, executor=None) -> Tuple[StreamingSolver, dict]:
    """Decode a session record back into ``(solver, session_meta)``.

    Raises the codec's typed :class:`~repro.durability.codec.DurabilityError`
    subclasses on any corruption -- the caller's cue to fall back to a fresh
    session rather than serve from damaged state.
    """
    record = decode_record(blob, expect_kind=SESSION_KIND)
    try:
        engine_meta = record.meta["engine"]
        session_meta = dict(record.meta["session"])
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"session record is missing its '{exc}' section") from exc
    solver = StreamingSolver.from_state_dict(engine_meta, record.arrays, executor=executor)
    return solver, session_meta


def encode_wal_batch(seq: int, rows: np.ndarray, targets: np.ndarray) -> bytes:
    """Encode one appended batch as a WAL payload (sequence-numbered)."""
    return encode_record(
        WAL_BATCH_KIND,
        {"seq": int(seq)},
        {
            "rows": np.asarray(rows, dtype=np.float64),
            "targets": np.asarray(targets, dtype=np.float64).ravel(),
        },
    )


def decode_wal_batch(payload: bytes) -> Tuple[int, np.ndarray, np.ndarray]:
    """Decode one WAL payload back into ``(seq, rows, targets)``."""
    record = decode_record(payload, expect_kind=WAL_BATCH_KIND)
    try:
        seq = int(record.meta["seq"])
        rows = record.arrays["rows"]
        targets = record.arrays["targets"]
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"WAL batch record is missing its '{exc}' field") from exc
    return seq, rows, targets
