"""Write-ahead-log framing: length-prefixed, per-frame-checksummed records.

A session's WAL is a flat byte string of frames appended by the serving
layer between checkpoints:

.. code-block:: text

    len   u32 LE   payload length in bytes
    crc   u32 LE   CRC32 of the payload
    data  len      one payload (itself a codec record, doubly protected)

Replay (:func:`replay_wal`) walks the valid *prefix* and stops at the first
frame that is torn (the process died mid-``write``) or fails its CRC.  That
is the durability contract a write-ahead log can honestly make: everything
acknowledged before the crash point is replayed, the in-flight tail is
dropped -- and because the serving layer folds a batch only *after* its
frame is durable, a dropped tail can only lose un-acknowledged work, never
produce a wrong answer.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.durability.codec import ChecksumError

__all__ = ["WalReplay", "frame", "replay_wal"]

_FRAME = struct.Struct("<II")  # payload length, payload crc32


def frame(payload: bytes) -> bytes:
    """Wrap one payload in a WAL frame (length prefix + CRC32)."""
    payload = bytes(payload)
    return _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass
class WalReplay:
    """Result of walking a WAL's valid prefix.

    ``payloads`` are the frames replayable in order; ``dropped_bytes`` is
    the tail that was not (0 for a clean log); ``reason`` says why the walk
    stopped early -- ``"torn"`` (the last write never completed) or
    ``"checksum"`` (a complete frame whose CRC disagrees), ``None`` when
    the whole log replayed.
    """

    payloads: List[bytes] = field(default_factory=list)
    dropped_bytes: int = 0
    reason: Optional[str] = None

    @property
    def clean(self) -> bool:
        """Whether every frame in the log replayed."""
        return self.reason is None


def replay_wal(blob: bytes, *, strict: bool = False) -> WalReplay:
    """Walk a WAL byte string and return its replayable prefix.

    Lenient by default (a crash is *expected* to tear the tail); with
    ``strict=True`` a mid-log checksum failure raises
    :class:`~repro.durability.codec.ChecksumError` instead of truncating --
    for callers that treat the log as an archive rather than a crash tail.
    """
    blob = bytes(blob)
    out = WalReplay()
    offset = 0
    total = len(blob)
    while offset < total:
        if total - offset < _FRAME.size:
            out.reason = "torn"
            break
        length, crc_stored = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        if total - start < length:
            out.reason = "torn"
            break
        payload = blob[start : start + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc_stored:
            if strict:
                raise ChecksumError(
                    f"WAL frame at byte {offset} failed its CRC32 check"
                )
            out.reason = "checksum"
            break
        out.payloads.append(payload)
        offset = start + length
    out.dropped_bytes = total - offset
    return out
