"""Low-rank test matrices: decaying spectra with a known optimum.

The low-rank benchmarks need matrices whose truncated-SVD error is known in
closed form, so accuracy claims ("within ``1 + eps`` of the optimum") can be
asserted without a full SVD at test time.  :func:`decaying_spectrum_matrix`
builds ``A = U diag(s) V^T`` with a plateau of ``rank`` leading singular
values followed by a geometric tail -- the canonical shape for which
Frequent Directions' additive guarantee is informative (the tail energy
``||A - A_k||_F^2`` is small but nonzero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.linalg.conditioning import _random_orthonormal


@dataclass
class LowRankProblem:
    """A matrix with a known spectrum, plus closed-form optimal errors.

    Attributes
    ----------
    a:
        The ``d x n`` matrix.
    singular_values:
        Its exact singular values (descending).
    rank:
        The plateau width the generator was asked for (the "true" rank).
    """

    a: np.ndarray
    singular_values: np.ndarray
    rank: int

    @property
    def d(self) -> int:
        """Number of rows."""
        return self.a.shape[0]

    @property
    def n(self) -> int:
        """Number of columns."""
        return self.a.shape[1]

    def optimal_error(self, k: Optional[int] = None) -> float:
        """``||A - A_k||_F / ||A||_F`` from the known spectrum (no SVD needed)."""
        k = self.rank if k is None else int(k)
        s = self.singular_values
        total = float(np.linalg.norm(s))
        if total == 0.0:
            return 0.0
        return float(np.linalg.norm(s[k:]) / total)

    def tail_energy(self, k: Optional[int] = None) -> float:
        """``||A - A_k||_F^2``: the squared tail the FD bound is stated in."""
        k = self.rank if k is None else int(k)
        return float(np.sum(self.singular_values[k:] ** 2))


def decaying_spectrum_matrix(
    d: int,
    n: int,
    *,
    rank: int = 8,
    plateau: float = 1.0,
    decay: float = 0.5,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> LowRankProblem:
    """Matrix with ``rank`` singular values at ``plateau`` then a ``decay`` tail.

    ``s = (plateau, ..., plateau, plateau * decay, plateau * decay^2, ...)``
    with Haar-ish random orthonormal factors, so the rank-``rank``
    truncation error is exactly the geometric tail -- a spectrum where
    low-rank methods should shine and graceless ones visibly do not.
    """
    if d < n:
        raise ValueError("decaying_spectrum_matrix builds tall (d >= n) matrices")
    if not 0 < rank <= n:
        raise ValueError("rank must lie in [1, n]")
    if not 0.0 < decay < 1.0:
        raise ValueError("decay must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    u = _random_orthonormal(d, n, rng)
    v = _random_orthonormal(n, n, rng)
    s = np.empty(n, dtype=np.float64)
    s[:rank] = plateau
    s[rank:] = plateau * decay ** np.arange(1, n - rank + 1)
    a = ((u * s) @ v.T).astype(dtype)
    return LowRankProblem(a=a, singular_values=s, rank=int(rank))
