"""Random dense matrices on the paper's size grid.

Section 6.2 fixes random matrices ``A in R^{d x n}`` with
``d in {2^21, 2^22, 2^23}`` and ``n in {32, 64, 128, 256}`` (the largest
``d`` only goes up to ``n = 128``).  Those sizes are tens of gigabytes in
double precision, fine for an 80 GB H100 but not for a CPU test run, so the
module also defines a proportionally scaled grid (``d in {2^15, 2^16,
2^17}``) that keeps the same aspect ratios; the harness uses the scaled grid
for numeric runs and the paper grid for analytic (cost-model-only) sweeps.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

#: The paper's row counts: 2^21, 2^22, 2^23.
PAPER_D_VALUES: Tuple[int, ...] = (1 << 21, 1 << 22, 1 << 23)

#: The paper's column counts.
PAPER_N_VALUES: Tuple[int, ...] = (32, 64, 128, 256)

#: Scaled-down row counts used for numeric experiments on a CPU.
SCALED_D_VALUES: Tuple[int, ...] = (1 << 15, 1 << 16, 1 << 17)

#: Column counts used with the scaled grid (same as the paper's).
SCALED_N_VALUES: Tuple[int, ...] = (32, 64, 128, 256)


def paper_size_grid(
    paper_scale: bool = True,
    *,
    max_n_for_largest_d: int = 128,
) -> Iterator[Tuple[int, int]]:
    """Iterate over the ``(d, n)`` grid of Figures 2-7.

    The paper's largest ``d`` (2^23) stops at ``n = 128`` -- the ``n = 256``
    column would not fit next to its sketches on the device -- and the same
    truncation is applied to the scaled grid for shape consistency.
    """
    d_values = PAPER_D_VALUES if paper_scale else SCALED_D_VALUES
    n_values = PAPER_N_VALUES if paper_scale else SCALED_N_VALUES
    largest_d = max(d_values)
    for d in d_values:
        for n in n_values:
            if d == largest_d and n > max_n_for_largest_d:
                continue
            yield d, n


def grid_as_list(paper_scale: bool = True) -> List[Tuple[int, int]]:
    """The size grid as a concrete list (convenience for parametrised tests)."""
    return list(paper_size_grid(paper_scale))


def random_dense_matrix(
    d: int,
    n: int,
    *,
    seed: Optional[int] = None,
    dtype=np.float64,
    distribution: str = "uniform",
) -> np.ndarray:
    """Random dense ``d x n`` test matrix.

    ``distribution`` may be ``"uniform"`` (entries in ``[-1, 1)``, the
    cheapest to generate, matching the paper's timing experiments where only
    the shape matters) or ``"gaussian"``.
    """
    if d <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        return (rng.random((d, n)) * 2.0 - 1.0).astype(dtype, copy=False)
    if distribution == "gaussian":
        return rng.standard_normal((d, n)).astype(dtype, copy=False)
    raise ValueError(f"unknown distribution '{distribution}'")


def matrix_memory_footprint(d: int, n: int, dtype=np.float64) -> float:
    """Bytes needed to store a dense ``d x n`` matrix of the given dtype."""
    return float(d) * n * np.dtype(dtype).itemsize
