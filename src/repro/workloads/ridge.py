"""Ridge-regression problem generators (the ridge problem class's workloads).

Ridge workloads need one more knob than the paper's least-squares problems:
where the Tikhonov ``lam`` sits on the singular-value scale.  The generator
therefore accepts ``lam_rel``, the regularization *relative to*
``sigma_max(A)^2``, and converts it to the absolute ``lam`` the solvers
take -- ``lam_rel ~ 1e-4`` is a typical well-posed ridge, while
``lam_rel`` far below ``1/kappa^2`` leaves the problem as hard as the
unregularized one (the regime the planner's fallback chains are tested on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.linalg.conditioning import matrix_with_condition


@dataclass
class RidgeProblem:
    """A generated ridge problem ``min ||b - A x||^2 + lam ||x||^2``.

    Attributes
    ----------
    a, b:
        Coefficient matrix (``d x n``) and right-hand side (``d``).
    lam:
        Absolute Tikhonov parameter.
    lam_rel:
        ``lam / sigma_max(A)^2`` (the scale-free knob the generator took).
    x_noiseless:
        The vector used to build ``b`` before noise; *not* the ridge
        solution (regularization biases the solution away from it).
    cond:
        Condition number ``A`` was constructed with.
    smax:
        Largest singular value of ``A`` (known exactly by construction).
    """

    a: np.ndarray
    b: np.ndarray
    lam: float
    lam_rel: float
    x_noiseless: np.ndarray
    cond: float
    smax: float

    @property
    def d(self) -> int:
        """Number of rows."""
        return self.a.shape[0]

    @property
    def n(self) -> int:
        """Number of columns."""
        return self.a.shape[1]

    def effective_condition(self) -> float:
        """Exact lambda-shifted conditioning of the augmented system."""
        from repro.linalg.registry import ridge_effective_condition

        return ridge_effective_condition(self.cond, self.lam, self.smax)


def make_ridge_problem(
    d: int,
    n: int,
    *,
    cond: float = 1e6,
    lam_rel: float = 1e-4,
    noise_std: float = 0.1,
    seed: Optional[int] = None,
) -> RidgeProblem:
    """Build a ridge problem with controlled conditioning and lambda scale.

    ``A`` has condition number exactly ``cond`` (geometric singular-value
    profile, the hard case for Gram-based methods) rescaled by
    ``sqrt(d * n)`` like the least-squares generator so additive noise
    stays on the paper's scale; ``b = A e + eta`` with ``e`` the all-ones
    vector and ``eta ~ N(0, noise_std^2)``; ``lam = lam_rel * smax^2``.
    """
    if d < n:
        raise ValueError("ridge problems here are overdetermined (d >= n)")
    if lam_rel <= 0.0:
        raise ValueError("lam_rel must be positive (use the least-squares workloads otherwise)")
    rng = np.random.default_rng(seed)
    a = matrix_with_condition(d, n, cond, seed=seed) * np.sqrt(float(d) * n)
    smax = float(np.sqrt(float(d) * n))  # profile is 1 at the top, then rescaled
    x = np.ones(n)
    b = a @ x
    if noise_std > 0.0:
        b = b + rng.normal(0.0, noise_std, size=d)
    lam = float(lam_rel) * smax**2
    return RidgeProblem(
        a=a, b=b, lam=lam, lam_rel=float(lam_rel), x_noiseless=x, cond=float(cond), smax=smax
    )
