"""Streaming least-squares workload generators (drift and regime changes).

The one-shot generators in :mod:`repro.workloads.least_squares` materialise a
whole problem at once; these produce *row streams* -- batches of
``(rows, targets)`` arriving over time -- for the online engine in
:mod:`repro.streaming`.  Two regimes are provided, mirroring the
``easy_problem`` / ``hard_problem`` ergonomics:

* :func:`piecewise_stationary_stream` -- the classic change-point setting:
  the ground-truth coefficients are constant within a segment and jump at
  segment boundaries.  This is the workload the drift detector must catch.
* :func:`drifting_stream` -- the coefficients rotate *continuously* from a
  start vector to an end vector over the stream, so no single solution is
  ever exactly right and windowed/decayed estimators shine.

Both return a :class:`LeastSquaresStream` whose batches carry the
ground-truth coefficients in force when the batch was emitted, so tests and
experiments can score an online estimate against the truth of *that moment*.

For the frequency-analytics vertical, :func:`zipf_stream` generates *item*
streams -- batches of integer ids drawn from a (truncated) Zipf law over an
arbitrary domain, with the heavy ranks scattered across the id space so
hierarchical (dyadic) sketches see realistic non-clustered hitters.  The
returned :class:`FrequencyStream` knows its own exact counts, so tests can
score sketch estimates against ground truth without a second pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Domains up to this size draw from the exact truncated-Zipf pmf;
#: larger (address-space) domains use rejection from the unbounded law.
_EXACT_ZIPF_DOMAIN = 1 << 20

#: Rank-scattering multiplier (the splitmix64 golden-ratio constant).  Odd,
#: so multiplication modulo any power-of-two domain is a bijection; for
#: other domains the multiplier is nudged to the nearest residue coprime
#: with the domain (small domains) or used as a wraparound hash (address
#: spaces), where the collision probability is negligible.
_SCATTER_GOLD = 0x9E3779B97F4A7C15


@dataclass
class StreamBatch:
    """One arriving batch of a row stream.

    Attributes
    ----------
    rows / targets:
        ``(batch, n)`` feature rows and their length-``batch`` targets
        ``rows @ x_true + noise``.
    x_true:
        Ground-truth coefficients in force for this batch (for continuously
        drifting streams: the midpoint truth of the batch).
    segment:
        Index of the stationary segment the batch belongs to (0-based; for
        continuous drift every batch is segment 0).
    start:
        Global index of the batch's first row within the stream.
    """

    rows: np.ndarray
    targets: np.ndarray
    x_true: np.ndarray
    segment: int
    start: int

    @property
    def size(self) -> int:
        """Number of rows in the batch."""
        return self.rows.shape[0]


@dataclass
class LeastSquaresStream:
    """A generated row stream: batches plus the drift schedule that made them.

    ``batches`` is materialised (streams here are test/experiment scale);
    iterate the object directly to consume them in arrival order.
    """

    batches: List[StreamBatch]
    n: int
    batch_size: int
    noise_std: float
    kind: str
    #: Ground-truth coefficients per segment (one entry for continuous drift).
    segment_truths: List[np.ndarray] = field(default_factory=list)
    #: Global row index of each change point (empty for continuous drift).
    change_points: List[int] = field(default_factory=list)

    def __iter__(self) -> Iterator[StreamBatch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_rows(self) -> int:
        """Rows across the whole stream."""
        return sum(b.size for b in self.batches)

    def window_arrays(self, window_rows: int) -> tuple:
        """The last ``window_rows`` rows of the stream as ``(A, b)`` arrays.

        This is the from-scratch reference the streaming benchmarks compare
        against: what a batch solver would see if it kept the current window
        materialised.
        """
        rows = np.vstack([b.rows for b in self.batches])
        targets = np.concatenate([b.targets for b in self.batches])
        return rows[-window_rows:], targets[-window_rows:]


def _emit_batches(
    rng: np.random.Generator,
    truths_per_row: np.ndarray,
    segments_per_row: np.ndarray,
    batch_size: int,
    noise_std: float,
) -> List[StreamBatch]:
    """Draw Gaussian rows and noisy targets under a per-row truth schedule."""
    total, n = truths_per_row.shape[0], truths_per_row.shape[1]
    batches: List[StreamBatch] = []
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        rows = rng.standard_normal((stop - start, n))
        truth_block = truths_per_row[start:stop]
        targets = np.einsum("ij,ij->i", rows, truth_block)
        if noise_std > 0.0:
            targets = targets + noise_std * rng.standard_normal(stop - start)
        # Midpoint truth AND midpoint segment: a batch straddling a change
        # point is labeled consistently with the truth it reports.
        mid = (stop - start) // 2
        batches.append(
            StreamBatch(
                rows=rows,
                targets=targets,
                x_true=truth_block[mid].copy(),
                segment=int(segments_per_row[start + mid]),
                start=start,
            )
        )
    return batches


def piecewise_stationary_stream(
    n: int = 16,
    *,
    rows_per_segment: int = 4096,
    n_segments: int = 2,
    batch_size: int = 256,
    noise_std: float = 0.05,
    shift_scale: float = 2.0,
    seed: Optional[int] = 0,
    truths: Optional[Sequence[np.ndarray]] = None,
) -> LeastSquaresStream:
    """Stream with abrupt change points between stationary segments.

    Within segment ``s`` the targets follow ``rows @ x_s + noise``; at each
    boundary the truth jumps to an independent draw scaled by
    ``shift_scale`` (relative to the unit-norm first truth), so the injected
    shift is large enough for a residual-energy detector to see.  Pass
    ``truths`` to pin the per-segment coefficients explicitly.
    """
    if n_segments <= 0 or rows_per_segment <= 0 or batch_size <= 0:
        raise ValueError("segments, rows_per_segment and batch_size must be positive")
    rng = np.random.default_rng(seed)
    if truths is None:
        truth_list = []
        for s in range(n_segments):
            x = rng.standard_normal(n)
            x /= np.linalg.norm(x)
            if s > 0:
                x *= shift_scale
            truth_list.append(x)
    else:
        truth_list = [np.asarray(t, dtype=np.float64) for t in truths]
        if len(truth_list) != n_segments:
            raise ValueError("need one truth vector per segment")
    total = n_segments * rows_per_segment
    truths_per_row = np.empty((total, n))
    segments_per_row = np.empty(total, dtype=np.int64)
    for s, x in enumerate(truth_list):
        truths_per_row[s * rows_per_segment : (s + 1) * rows_per_segment] = x
        segments_per_row[s * rows_per_segment : (s + 1) * rows_per_segment] = s
    batches = _emit_batches(rng, truths_per_row, segments_per_row, batch_size, noise_std)
    return LeastSquaresStream(
        batches=batches,
        n=n,
        batch_size=batch_size,
        noise_std=noise_std,
        kind="piecewise",
        segment_truths=truth_list,
        change_points=[s * rows_per_segment for s in range(1, n_segments)],
    )


def drifting_stream(
    n: int = 16,
    *,
    total_rows: int = 8192,
    batch_size: int = 256,
    noise_std: float = 0.05,
    drift_angle: float = np.pi / 2,
    seed: Optional[int] = 0,
) -> LeastSquaresStream:
    """Stream whose ground truth rotates continuously over its length.

    The truth interpolates along a great-circle arc of ``drift_angle``
    radians between two random unit vectors: at row ``t`` the coefficients
    are ``cos(theta_t) x0 + sin(theta_t) x1`` with ``theta_t`` growing
    linearly from 0 to ``drift_angle``.  No change point exists, so
    detectors tuned for jumps stay quiet while windowed estimators must keep
    refreshing to track the moving target.
    """
    if total_rows <= 0 or batch_size <= 0:
        raise ValueError("total_rows and batch_size must be positive")
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal(n)
    x0 /= np.linalg.norm(x0)
    raw = rng.standard_normal(n)
    raw -= (raw @ x0) * x0  # orthogonalise so the arc is a clean rotation
    x1 = raw / np.linalg.norm(raw)
    theta = np.linspace(0.0, drift_angle, total_rows)
    truths_per_row = np.cos(theta)[:, None] * x0 + np.sin(theta)[:, None] * x1
    segments_per_row = np.zeros(total_rows, dtype=np.int64)
    batches = _emit_batches(rng, truths_per_row, segments_per_row, batch_size, noise_std)
    return LeastSquaresStream(
        batches=batches,
        n=n,
        batch_size=batch_size,
        noise_std=noise_std,
        kind="drifting",
        segment_truths=[x0, x1],
        change_points=[],
    )


# ---------------------------------------------------------------------------
# frequency-analytics item streams
# ---------------------------------------------------------------------------
@dataclass
class ItemBatch:
    """One arriving batch of an item stream: ids and their update weights."""

    ids: np.ndarray
    #: ``None`` means unit weights (pure counting).
    weights: Optional[np.ndarray]
    start: int

    @property
    def size(self) -> int:
        """Number of items in the batch."""
        return self.ids.shape[0]


@dataclass
class FrequencyStream:
    """A generated item stream plus its exact ground-truth counts.

    ``batches`` is materialised like :class:`LeastSquaresStream`; the truth
    helpers (:meth:`true_counts`, :meth:`true_l2`, :meth:`heavy_hitters`,
    :meth:`range_weight`) compute exact answers from the emitted items, so
    property tests can score a sketch without enumerating the domain.
    """

    batches: List[ItemBatch]
    domain: int
    batch_size: int
    alpha: float
    kind: str = "zipf"

    def __iter__(self) -> Iterator[ItemBatch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_items(self) -> int:
        """Items across the whole stream."""
        return sum(b.size for b in self.batches)

    def all_ids(self) -> np.ndarray:
        """Every emitted id, in arrival order."""
        if not self.batches:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([b.ids for b in self.batches])

    def true_counts(self) -> Dict[int, float]:
        """Exact aggregate weight per id (sparse -- only ids that occurred)."""
        counts: Dict[int, float] = {}
        for batch in self.batches:
            w = batch.weights if batch.weights is not None else np.ones(batch.size)
            ids, inverse = np.unique(batch.ids, return_inverse=True)
            sums = np.zeros(ids.size)
            np.add.at(sums, inverse, w)
            for i, s in zip(ids.tolist(), sums.tolist()):
                counts[i] = counts.get(i, 0.0) + s
        return counts

    def true_l2(self) -> float:
        """Exact l2 norm of the frequency vector."""
        counts = np.fromiter(self.true_counts().values(), dtype=np.float64)
        return float(np.sqrt(np.sum(counts**2))) if counts.size else 0.0

    def heavy_hitters(self, phi: float) -> List[Tuple[int, float]]:
        """Exact ``phi``-heavy hitters: ids with ``f_i >= phi ||f||_2``."""
        counts = self.true_counts()
        threshold = phi * self.true_l2()
        hits = [(i, c) for i, c in counts.items() if c >= threshold]
        hits.sort(key=lambda pair: (-pair[1], pair[0]))
        return hits

    def range_weight(self, lo: int, hi: int) -> float:
        """Exact total weight of ids in the half-open range ``[lo, hi)``."""
        return float(
            sum(c for i, c in self.true_counts().items() if lo <= i < hi)
        )


def _zipf_ranks(
    rng: np.random.Generator, domain: int, alpha: float, size: int
) -> np.ndarray:
    """``size`` ranks in ``[1, domain]`` following a truncated Zipf law."""
    if domain <= _EXACT_ZIPF_DOMAIN:
        ranks = np.arange(1, domain + 1, dtype=np.float64)
        pmf = ranks**-alpha
        pmf /= pmf.sum()
        return rng.choice(domain, size=size, p=pmf).astype(np.int64) + 1
    # Address-space domains: rejection from the unbounded law.  The tail
    # mass above 2^48 is astronomically small for alpha > 1, so the redraw
    # loop terminates immediately in practice; the uniform fill is a
    # belt-and-braces bound on the iteration count.
    out = rng.zipf(alpha, size=size).astype(np.int64)
    for _ in range(8):
        bad = out > domain
        if not bad.any():
            return out
        out[bad] = rng.zipf(alpha, size=int(bad.sum())).astype(np.int64)
    out[out > domain] = rng.integers(1, domain + 1, size=int((out > domain).sum()))
    return out


def _scatter_ranks(ranks: np.ndarray, domain: int) -> np.ndarray:
    """Spread Zipf ranks across the id space with a multiplicative hash."""
    if domain < (1 << 31):
        # Exact bijection: multiplier coprime with the domain, products
        # bounded by 2^62 so plain int64 arithmetic is overflow-free.
        m = _SCATTER_GOLD % domain
        while m < 2 or np.gcd(m, domain) != 1:
            m = (m + 1) % domain
        return (ranks * np.int64(m)) % np.int64(domain)
    # Address-space domains: wraparound uint64 multiply then reduce.  Not a
    # bijection for non-power-of-two domains, but at <= millions of distinct
    # ranks in a >= 2^31 space, collisions are statistically irrelevant.
    scattered = ranks.astype(np.uint64) * np.uint64(_SCATTER_GOLD)
    return (scattered % np.uint64(domain)).astype(np.int64)


def zipf_stream(
    domain: int,
    *,
    total_items: int = 16384,
    batch_size: int = 1024,
    alpha: float = 1.2,
    scatter: bool = True,
    seed: Optional[int] = 0,
) -> FrequencyStream:
    """Item stream whose ids follow a Zipf(``alpha``) law over ``domain``.

    Rank ``r`` (1 = heaviest) maps to id ``(r * m) mod domain`` with ``m``
    derived from :data:`_SCATTER_GOLD` when ``scatter`` is on, so the heavy
    items land all over the id space instead of clustering at 0 -- the
    regime dyadic descent must actually navigate.  ``scatter=False`` keeps
    ``id = rank - 1`` (heaviest items first), convenient for eyeballing.

    All weights are 1 (pure counting); the exact truth helpers on the
    returned :class:`FrequencyStream` are the test oracle.
    """
    if domain <= 0 or total_items <= 0 or batch_size <= 0:
        raise ValueError("domain, total_items and batch_size must be positive")
    if alpha <= 1.0:
        raise ValueError("zipf exponent alpha must exceed 1")
    rng = np.random.default_rng(seed)
    ranks = _zipf_ranks(rng, domain, alpha, total_items)
    if scatter:
        ids = _scatter_ranks(ranks, domain)
    else:
        ids = ranks - 1
    batches = [
        ItemBatch(ids=ids[start : start + batch_size], weights=None, start=start)
        for start in range(0, total_items, batch_size)
    ]
    return FrequencyStream(
        batches=batches, domain=int(domain), batch_size=int(batch_size), alpha=float(alpha)
    )
