"""Least-squares problem generators (Section 6.3, Figures 5-8).

Two families of problems are used in the paper:

* Timing / residual experiments (Figures 5-7): ``A`` is random with
  ``kappa(A) = 100``, the exact solution is ``e = [1, ..., 1]^T`` and the
  right-hand side is ``b = A e + eta`` where ``eta_i ~ N(mu, sigma^2)``.
  The "easy" problem uses ``(mu, sigma^2) = (0, 0.01)`` (small residual); the
  "hard" problem uses ``(3, 2)`` (large residual).
* Stability sweep (Figure 8): ``d = 2^17``, ``n = 16``, ``b = A e`` exactly
  (zero residual in exact arithmetic) and ``kappa(A)`` swept from 1 to 1e20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.linalg.conditioning import matrix_with_condition


@dataclass
class LeastSquaresProblem:
    """A generated overdetermined least-squares problem ``min ||b - A x||``.

    Attributes
    ----------
    a, b:
        Coefficient matrix (``d x n``) and right-hand side (``d``).
    x_exact:
        The vector used to build ``b`` (the all-ones vector in the paper);
        only equal to the least-squares solution when the noise is zero.
    cond:
        Condition number ``A`` was constructed with.
    noise_mean, noise_std:
        Parameters of the additive Gaussian noise.
    kind:
        ``"easy"``, ``"hard"``, ``"exact"`` or ``"custom"``.
    """

    a: np.ndarray
    b: np.ndarray
    x_exact: np.ndarray
    cond: float
    noise_mean: float
    noise_std: float
    kind: str

    @property
    def d(self) -> int:
        """Number of rows."""
        return self.a.shape[0]

    @property
    def n(self) -> int:
        """Number of columns."""
        return self.a.shape[1]

    def true_relative_residual(self) -> float:
        """Relative residual of the exact least-squares solution (via QR)."""
        x, *_ = np.linalg.lstsq(self.a, self.b, rcond=None)
        return float(np.linalg.norm(self.b - self.a @ x) / np.linalg.norm(self.b))


def make_lstsq_problem(
    d: int,
    n: int,
    *,
    cond: float = 100.0,
    noise_mean: float = 0.0,
    noise_std: float = 0.1,
    seed: Optional[int] = None,
    kind: str = "custom",
    dtype=np.float64,
) -> LeastSquaresProblem:
    """Build a least-squares problem with controlled conditioning and noise.

    ``b = A e + eta`` with ``e`` the all-ones vector and
    ``eta_i ~ N(noise_mean, noise_std^2)``; ``noise_std = 0`` gives a
    consistent system whose exact solution is ``e``.

    The condition-controlled matrix is rescaled by ``sqrt(d * n)`` so its
    Frobenius norm matches that of the raw random (unit-variance entry)
    matrices the paper draws: without this the additive noise would dominate
    ``A e`` at any size and every relative residual would sit near 1.  The
    rescaling leaves the condition number untouched.
    """
    if d < n:
        raise ValueError("least-squares problems here are overdetermined (d >= n)")
    rng = np.random.default_rng(seed)
    a = matrix_with_condition(d, n, cond, seed=seed, dtype=dtype)
    a = a * np.sqrt(float(d) * n)
    x_exact = np.ones(n, dtype=dtype)
    b = a @ x_exact
    if noise_std > 0.0 or noise_mean != 0.0:
        b = b + rng.normal(noise_mean, max(noise_std, 0.0), size=d).astype(dtype)
    return LeastSquaresProblem(
        a=a,
        b=b.astype(dtype),
        x_exact=x_exact,
        cond=cond,
        noise_mean=noise_mean,
        noise_std=noise_std,
        kind=kind,
    )


def easy_problem(d: int, n: int, *, seed: Optional[int] = None) -> LeastSquaresProblem:
    """The paper's "easy" problem: ``eta_i ~ N(0, 0.01)`` (Figure 6)."""
    return make_lstsq_problem(
        d, n, cond=100.0, noise_mean=0.0, noise_std=np.sqrt(0.01), seed=seed, kind="easy"
    )


def hard_problem(d: int, n: int, *, seed: Optional[int] = None) -> LeastSquaresProblem:
    """The paper's "hard" problem: ``eta_i ~ N(3, 2)`` (Figure 7)."""
    return make_lstsq_problem(
        d, n, cond=100.0, noise_mean=3.0, noise_std=np.sqrt(2.0), seed=seed, kind="hard"
    )


def condition_sweep_problem(
    cond: float,
    *,
    d: int = 1 << 17,
    n: int = 16,
    seed: Optional[int] = None,
) -> LeastSquaresProblem:
    """The Figure-8 problem: ``b = A e`` exactly, ``kappa(A) = cond``.

    In exact arithmetic the residual is zero for every solver; in floating
    point the measured residual reveals each solver's stability limit.
    """
    problem = make_lstsq_problem(
        d, n, cond=cond, noise_mean=0.0, noise_std=0.0, seed=seed, kind="exact"
    )
    return problem
