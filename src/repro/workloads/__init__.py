"""Workload generators for the paper's experiments.

* :mod:`repro.workloads.matrices` -- the random dense matrices of Section 6.2
  (the ``d in {2^21, 2^22, 2^23} x n in {32, 64, 128, 256}`` grid), with a
  scaled-down default grid usable on a CPU.
* :mod:`repro.workloads.least_squares` -- the least-squares problems of
  Section 6.3: the "easy" (low noise) and "hard" (high noise) right-hand
  sides and the condition-number sweep of Figure 8.
* :mod:`repro.workloads.streams` -- row streams for the online engine
  (:mod:`repro.streaming`): piecewise-stationary streams with abrupt change
  points and continuously drifting streams; plus Zipfian *item* streams
  (:func:`~repro.workloads.streams.zipf_stream`) with exact ground-truth
  counts for the frequency-analytics vertical.
* :mod:`repro.workloads.ridge` -- Tikhonov-regularized problems with a
  controlled lambda-to-spectrum scale (:mod:`repro.problems.ridge`'s
  workloads).
* :mod:`repro.workloads.lowrank` -- decaying-spectrum matrices with
  closed-form truncated-SVD optima (:mod:`repro.problems.lowrank`'s
  workloads).
"""

from repro.workloads.matrices import (
    PAPER_D_VALUES,
    PAPER_N_VALUES,
    SCALED_D_VALUES,
    paper_size_grid,
    random_dense_matrix,
)
from repro.workloads.least_squares import (
    LeastSquaresProblem,
    make_lstsq_problem,
    easy_problem,
    hard_problem,
    condition_sweep_problem,
)
from repro.workloads.streams import (
    FrequencyStream,
    ItemBatch,
    LeastSquaresStream,
    StreamBatch,
    drifting_stream,
    piecewise_stationary_stream,
    zipf_stream,
)
from repro.workloads.ridge import RidgeProblem, make_ridge_problem
from repro.workloads.lowrank import LowRankProblem, decaying_spectrum_matrix

__all__ = [
    "PAPER_D_VALUES",
    "PAPER_N_VALUES",
    "SCALED_D_VALUES",
    "paper_size_grid",
    "random_dense_matrix",
    "LeastSquaresProblem",
    "make_lstsq_problem",
    "easy_problem",
    "hard_problem",
    "condition_sweep_problem",
    "FrequencyStream",
    "ItemBatch",
    "LeastSquaresStream",
    "StreamBatch",
    "drifting_stream",
    "piecewise_stationary_stream",
    "zipf_stream",
    "RidgeProblem",
    "make_ridge_problem",
    "LowRankProblem",
    "decaying_spectrum_matrix",
]
