"""`SketchServer`: the request-serving front end of the reproduction.

Pulls the serving subsystem together:

1. ``submit()`` enqueues ``solve(A, b)`` requests into the
   :class:`~repro.serving.batcher.MicroBatcher`;
2. ``flush()`` drains the queue as fused micro-batches, resolves each batch's
   sketch operator through the :class:`~repro.serving.cache.OperatorCache`,
   places it on a shard via the
   :class:`~repro.serving.scheduler.ShardScheduler`, and runs one multi-RHS
   ``sketch_and_solve`` / ``rand_cholqr_lstsq`` per batch;
3. per-request latencies, batch sizes and cache hit rates land in
   :class:`~repro.serving.telemetry.ServingTelemetry`.

Throughput comes from two amortisations measured by
``benchmarks/test_serving_throughput.py``: the micro-batcher pays the
``S A`` sketch and the QR factorisation once per batch instead of once per
request, and the operator cache pays sketch generation once per problem
shape instead of once per request.

Beyond plain ``solve(A, b)`` traffic the server fronts the other problem
classes of :mod:`repro.problems`: :meth:`SketchServer.solve_ridge` routes
Tikhonov-regularized requests through the same planner (ridge solver
registry, lambda-aware stability floors, fallback chains) and
:meth:`SketchServer.approx_lowrank` serves randomized range-finder /
Frequent Directions factorizations -- each problem class keeping its own
operator-cache namespace via the ``problem`` field of
:func:`~repro.serving.cache.operator_cache_key`.

:func:`naive_solve_loop` is the reference the benchmark compares against: the
same traffic solved one request at a time with no batching and no caching.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributed.comm import CommCostModel
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor
from repro.gpu.pool import ExecutorPool
from repro.linalg.lstsq import LeastSquaresResult
from repro.linalg.planner import SolvePlan, execute_plan, normalize_policy, plan
from repro.linalg.registry import SolveSpec, get_solver
from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.cache import (
    CacheEntry,
    OperatorCache,
    build_operator,
    operator_cache_key,
    resolve_embedding_dim,
)
from repro.serving.requests import (
    LowRankResponse,
    SketchResponse,
    SolveRequest,
    SolveResponse,
    normalize_kind,
    normalize_solver,
)
from repro.durability.store import DirectoryCheckpointStore, DurabilityConfig
from repro.obs.calibrate import CalibratedEstimator
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.serving.scheduler import ShardScheduler
from repro.serving.frequency import (
    FrequencyIngestReport,
    FrequencyQueryResponse,
    FrequencySessionManager,
)
from repro.serving.streaming import (
    IngestReport,
    RestoreReport,
    StreamingSessionManager,
    StreamSolutionResponse,
)
from repro.serving.telemetry import ServingTelemetry


@dataclass
class ServerConfig:
    """Configuration of a :class:`SketchServer`.

    Attributes
    ----------
    kind:
        Default sketch family for requests that do not specify one.
    solver:
        Default solver (any name registered in
        :mod:`repro.linalg.registry`).  Under the ``"fixed"`` policy this is
        what runs; under the adaptive policies the planner routes and this
        is only the naming default recorded on requests.
    policy:
        Routing policy: ``"fixed"`` (pre-registry behaviour: run the
        requested solver, no probing, no fallback), ``"cheapest_accurate"``
        (cheapest solver whose stability floor meets the accuracy target at
        the probed conditioning, with a fallback chain), or ``"adaptive"``
        (additionally latency-budget aware).  See
        :mod:`repro.linalg.planner`.
    accuracy_target:
        Default per-request accuracy target the planner routes against.
    latency_budget:
        Default per-request estimated-seconds cap for ``"adaptive"``.
    oversampling:
        Embedding-dimension constant (2.0 in the paper), threaded through
        :func:`~repro.serving.cache.resolve_embedding_dim` into every
        operator the server builds.
    shards:
        Number of simulated GPU workers in the executor pool.
    active_shards:
        Initial size of the scheduler's *active* shard set (``None`` means
        all of them).  The concurrent runtime provisions the pool at its
        elastic maximum but starts with only this many shards taking new
        work; the :class:`~repro.serving.scheduler.ElasticShardPolicy`
        grows and shrinks the set from load telemetry.
    cache_capacity:
        Maximum number of live sketch operators across all shards.
    max_batch:
        Upper bound on requests fused into one micro-batch.
    seed:
        Seed for every server-built operator (part of the cache key, so all
        requests against a shape share one reproducible sketch).
    replicate_operators:
        When True (default), a cached operator whose shard is busier than an
        idle shard is *replicated* there -- rebuilt locally from its seed
        (sketch state is a pure function of the cache key, so only the tiny
        key crosses the network) -- letting hot single-shape traffic spread
        over the whole pool instead of serialising on the owning shard.
    device / numeric:
        Forwarded to the executor pool.
    comm:
        Alpha-beta model for front-end <-> shard transfers.
    tracing:
        When True (default) every request grows a span tree in the server's
        :class:`~repro.obs.trace.Tracer` (admission, queueing, planning,
        placement, fused execution, fallback hops).  Tracing reads only
        clocks the cost model already advanced, so it costs nothing on the
        simulated clock; turn it off to shave the host-side bookkeeping.
    trace_capacity:
        Completed traces retained (oldest evicted first).
    trace_sample:
        Head sampling for trace *retention*: keep one in every
        ``trace_sample`` root traces (shed/error traces are always kept,
        and the started/completed counters still count everything).  1
        (default) retains every trace.
    calibration:
        Closed-loop cost calibration mode: ``"off"`` (pure analytic
        costs, no estimator), ``"observe"`` (default: a
        :class:`~repro.obs.calibrate.CalibratedEstimator` learns
        measured/analytic correction factors and scores itself in the
        registry, but planning and shedding still use analytic costs --
        the shadow deployment), or ``"active"`` (planner ranking,
        deadline-shedding projections and reservation estimates all use
        calibrated costs).
    durability:
        A :class:`~repro.durability.store.DurabilityConfig` to make
        streaming sessions crash-safe: every append is WAL'd before it is
        folded, sessions are snapshotted every
        ``checkpoint_interval_batches`` appends, and
        :meth:`SketchServer.restore` rebuilds them after a process death.
        ``None`` (default) keeps sessions purely in-memory.
    max_sessions:
        Cap on simultaneously *live* streaming sessions; opening past it
        evicts the least-recently-used one (passivated when durable,
        terminal otherwise).  ``None`` means unbounded.
    session_ttl_seconds:
        Idle lifetime of a streaming session on its shard's simulated
        clock; sessions idle longer are evicted on the next ``open`` (or
        an explicit ``streams.sweep_expired()``).  ``None`` disables TTL.
    """

    kind: str = "multisketch"
    solver: str = "sketch_and_solve"
    policy: str = "fixed"
    accuracy_target: float = 1e-6
    latency_budget: Optional[float] = None
    oversampling: float = 2.0
    shards: int = 2
    active_shards: Optional[int] = None
    cache_capacity: int = 64
    max_batch: int = 32
    seed: int = 0
    replicate_operators: bool = True
    device: DeviceSpec = H100_SXM5
    numeric: bool = True
    comm: Optional[CommCostModel] = None
    tracing: bool = True
    trace_capacity: int = 512
    trace_sample: int = 1
    calibration: str = "observe"
    durability: Optional[DurabilityConfig] = None
    max_sessions: Optional[int] = None
    session_ttl_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        self.kind = normalize_kind(self.kind)
        self.solver = normalize_solver(self.solver)
        self.policy = normalize_policy(self.policy)
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.active_shards is not None and not (1 <= self.active_shards <= self.shards):
            raise ValueError("active_shards must be in [1, shards]")
        if self.oversampling <= 1.0:
            raise ValueError("oversampling must exceed 1")
        if self.accuracy_target <= 0.0:
            raise ValueError("accuracy_target must be positive")
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        if self.trace_sample <= 0:
            raise ValueError("trace_sample must be positive (1 keeps every trace)")
        if self.calibration not in ("off", "observe", "active"):
            raise ValueError("calibration must be 'off', 'observe', or 'active'")
        if self.durability is not None and not isinstance(self.durability, DurabilityConfig):
            raise TypeError("durability must be a DurabilityConfig (or None)")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1 (or None for unbounded)")
        if self.session_ttl_seconds is not None and self.session_ttl_seconds <= 0.0:
            raise ValueError("session_ttl_seconds must be positive (or None to disable)")


@dataclass
class PlacedBatch:
    """A planned micro-batch bound to a shard, ready to execute.

    Produced by :meth:`SketchServer._plan_and_place`, consumed by
    :meth:`SketchServer._run_placed`.  The concurrent runtime holds one of
    these per in-flight dispatch: the plan's cost estimate
    (``plan.costs[plan.solver]``) is the service-time term of its
    deadline-shedding projection.
    """

    plan: SolvePlan
    spec: SolveSpec
    entry: Optional[CacheEntry]
    shard: int
    cache_hit: bool

    @property
    def estimated_service_seconds(self) -> float:
        """Planner's analytic estimate of the batch's solve time."""
        return float(self.plan.costs.get(self.plan.solver, 0.0))


class SketchServer:
    """Batched, cached, sharded sketch-and-solve service."""

    def __init__(self, config: Optional[ServerConfig] = None, **overrides) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServerConfig or keyword overrides, not both")
        self.config = config
        self.pool = ExecutorPool(
            config.shards,
            device=config.device,
            numeric=config.numeric,
            seed=config.seed,
            track_memory=False,
        )
        self.scheduler = ShardScheduler(
            self.pool, cost_model=config.comm, active_shards=config.active_shards
        )
        self.cache = OperatorCache(capacity=config.cache_capacity)
        self.telemetry = ServingTelemetry()
        #: The metrics registry backing the telemetry -- the scrape surface
        #: for :func:`repro.obs.export.to_prometheus` / ``to_json``.
        self.metrics = self.telemetry.registry
        #: Per-request span trees on the simulated clock (see repro.obs.trace).
        self.tracer = Tracer(
            enabled=config.tracing,
            max_traces=config.trace_capacity,
            sample_every=config.trace_sample,
        )
        #: Online measured/analytic cost calibration (None when "off").
        #: In "observe" mode it learns and scores itself; in "active" mode
        #: its predictions also drive planning, shedding and reservations.
        self.calibration: Optional[CalibratedEstimator] = (
            CalibratedEstimator(self.metrics, device=config.device)
            if config.calibration != "off"
            else None
        )
        self.cache.listener = self._on_cache_event
        self.scheduler.on_scale = self.telemetry.set_active_shards
        self.telemetry.set_active_shards(self.scheduler.active_shards)
        self._batcher = MicroBatcher(max_batch=config.max_batch)
        self.streams = StreamingSessionManager(self)
        self.frequencies = FrequencySessionManager(self)
        self._next_id = 0
        self._batch_seq = 0
        # Conditioning probes are pure functions of the matrix; memoise them
        # per live matrix object (weakly referenced -- see _cond_estimate)
        # so hot same-matrix traffic plans for free.
        self._cond_cache: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _on_cache_event(self, event: str, key: Tuple) -> None:
        """Operator-cache listener: land hit/miss/store/evict in the registry."""
        self.metrics.counter("serving_cache_events_total", event=event).inc()

    def _cost_source(self):
        """Planner cost hook: calibrated costs only in ``"active"`` mode."""
        if self.calibration is not None and self.config.calibration == "active":
            return self.calibration.as_cost_source()
        return None

    def _feed_calibration(self, span_log: Optional[List[Dict[str, object]]], spec: SolveSpec) -> None:
        """Fold a batch's successful per-solver attempts into the estimator.

        Failed hops measure a truncated run (the solver broke down partway)
        and would drag factors toward optimism, so only clean attempts
        count.
        """
        if self.calibration is None or not span_log:
            return
        for hop in span_log:
            if hop["failed"]:
                continue
            self.calibration.observe(
                str(hop["solver"]),
                spec,
                float(hop["end"]) - float(hop["start"]),
                device=self.config.device,
            )

    def _finish_request_trace(
        self,
        root: Optional[Span],
        *,
        request_id: int,
        lane: str,
        placed: "PlacedBatch",
        batch_id: int,
        batch_size: int,
        span_log: Optional[List[Dict[str, object]]],
        exec_start: float,
        exec_end: float,
        comm_seconds: float,
        executed: str,
        fallbacks: int,
        failed: bool,
        residual: float,
    ) -> None:
        """Grow and close one request's span tree around an executed batch.

        ``root`` is the runtime-created root (admission/queue context baked
        in) or ``None`` on the synchronous path, where the trace starts at
        execution.  One ``batch`` span fans into the rider's own ``solve``
        child plus one ``solver:<name>`` child per planner-chain attempt, so
        a fused batch's N traces share the ``batch_id`` attribute while each
        request keeps exactly one complete tree.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        plan_ = placed.plan
        if root is None:
            root = tracer.start_trace(
                "request", exec_start, request_id=request_id, lane=lane
            )
        elif root is not NULL_SPAN and root.start < exec_start:
            tracer.start_span("queue", root, root.start).finish(exec_start)
        tracer.event(
            "plan",
            root,
            exec_start,
            policy=self.config.policy,
            planned=plan_.solver,
            chain="->".join(plan_.chain),
            cond_estimate=plan_.cond_estimate,
        )
        tracer.event(
            "placement", root, exec_start, shard=placed.shard, cache_hit=placed.cache_hit
        )
        batch_span = tracer.start_span(
            "batch", root, exec_start,
            batch_id=batch_id, batch_size=batch_size, shard=placed.shard,
        )
        spec = placed.spec
        for hop in span_log or ():
            # Shape/problem attributes make solver spans self-describing:
            # CalibratedEstimator.ingest() rebuilds the spec (and hence the
            # calibration bucket) from the span alone.
            attempt = tracer.start_span(
                f"solver:{hop['solver']}", batch_span, float(hop["start"]),
                solver=hop["solver"], fallback_hop=hop["hop"],
                d=spec.d, n=spec.n, nrhs=spec.nrhs,
                problem=spec.problem, kind=spec.kind,
                regularization=spec.regularization,
            )
            if hop["reason"]:
                attempt.set(reason=hop["reason"])
            attempt.finish(float(hop["end"]), status="error" if hop["failed"] else "ok")
        tracer.start_span("solve", batch_span, exec_start).finish(
            exec_end, solver=executed, relative_residual=residual
        )
        batch_span.finish(exec_end, executed_solver=executed, fallbacks=fallbacks)
        tracer.start_span("respond", root, exec_end).finish(
            exec_end + comm_seconds, comm_seconds=comm_seconds
        )
        tracer.end_trace(
            root, exec_end + comm_seconds, status="error" if failed else "ok"
        )

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
    ) -> int:
        """Enqueue one ``min_x ||b - A x||`` request; returns its request id."""
        request = SolveRequest(
            request_id=self._next_id,
            a=a,
            b=b,
            kind=kind if kind is not None else self.config.kind,
            solver=solver if solver is not None else self.config.solver,
            accuracy_target=accuracy_target,
            latency_budget=latency_budget,
        )
        self._next_id += 1
        self._batcher.add(request)
        return request.request_id

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed."""
        return self._batcher.pending

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
    ) -> SolveResponse:
        """Convenience: submit one request and flush immediately.

        Anything else pending is flushed too (and fused where possible); only
        this request's response is returned.
        """
        request_id = self.submit(
            a,
            b,
            kind=kind,
            solver=solver,
            accuracy_target=accuracy_target,
            latency_budget=latency_budget,
        )
        responses = self.flush()
        for resp in responses:
            if resp.request_id == request_id:
                return resp
        raise RuntimeError("flush did not produce a response for the request")  # pragma: no cover

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def flush(self) -> List[SolveResponse]:
        """Drain the queue, execute every micro-batch, return all responses.

        Responses come back sorted by request id (submission order).
        """
        responses: List[SolveResponse] = []
        for batch in self._batcher.drain():
            responses.extend(self._execute_batch(batch))
        responses.sort(key=lambda r: r.request_id)
        return responses

    def _resolve_operator(
        self, kind: str, a: np.ndarray, *, k: Optional[int] = None, solver: str = ""
    ) -> Tuple[CacheEntry, bool]:
        """Find or build the operator for a problem; returns (entry, built).

        One cache lookup is counted per *batch* -- the cache is consulted
        once per fused solve, so the reported hit rate measures genuine
        cross-batch operator reuse, not batch ridership.  ``solver`` is the
        planned solver family: it is part of the cache key, so operators
        serving different solver families scale independently.
        """
        d, n = a.shape
        if k is None:
            k = resolve_embedding_dim(kind, d, n, self.config.oversampling)
        key = operator_cache_key(kind, d, n, k, self.config.seed, a.dtype, solver=solver)
        entry = self.cache.get(key)
        if entry is not None:
            return entry, False
        shard = self.scheduler.place()
        operator = build_operator(
            kind, d, n, k=k, executor=self.pool[shard], seed=self.config.seed, dtype=a.dtype
        )
        return self.cache.put(key, CacheEntry(operator=operator, shard=shard)), True

    def _place_warm_batch(
        self, entry: CacheEntry, kind: str, a: np.ndarray, *, k: Optional[int] = None
    ) -> int:
        """Pick the shard for a cache-hit batch, replicating hot operators.

        Affinity alone would serialise all same-shape traffic behind the
        owning shard; when a strictly less-loaded shard has no copy, the
        operator is rebuilt there from its seed (only the cache key crosses
        the network -- the hash-seeded-state property) so hot keys spread
        across the pool.  The rebuild's generation time lands on the new
        shard's clock via its executor.
        """
        loads = self.scheduler.effective_loads()
        owned = entry.shard_set()
        active = set(self.scheduler.active_set())
        # Prefer copies on active shards: a parked owner only runs the batch
        # when no active shard has (or can be given) the state.
        active_owned = [s for s in owned if s in active]
        best_owned = min(active_owned or owned, key=lambda s: loads[s])
        least = min(sorted(active), key=lambda s: loads[s])
        # A replica is a rebuild from the seed; unseeded operators draw from
        # their executor's stream and are not reproducible, so they stay
        # pinned to their owning shard.
        replicable = self.config.replicate_operators and self.config.seed is not None
        if least not in owned and replicable and loads[least] < loads[best_owned]:
            d, n = a.shape
            replica = build_operator(
                kind,
                d,
                n,
                k=k if k is not None else resolve_embedding_dim(kind, d, n, self.config.oversampling),
                executor=self.pool[least],
                seed=self.config.seed,
                dtype=a.dtype,
            )
            entry.add_replica(least, replica)
            # Only the (tiny) cache key travels; 64 bytes covers it.
            self.scheduler.charge_transfer("operator_key", 64.0)
            shard = least
        else:
            shard = best_owned
        self.scheduler.place(preferred=shard)
        return shard

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _spectrum_estimate(self, a: np.ndarray) -> Tuple[Optional[float], Optional[float]]:
        """Cached sketched ``(kappa, sigma_max)`` probe for a live request matrix.

        Entries hold a weak reference to the probed array: ``id()`` values
        are reused by the allocator once a matrix dies, so a hit counts only
        when the stored reference still points at *this* array -- a fresh
        matrix that happens to inherit a dead one's id is re-probed, never
        served a stale estimate.  ``sigma_max`` rides along for free (the
        probe is one sketched SVD) and is what ridge routing uses to place
        the lambda on the spectrum's scale.
        """
        if not self.config.numeric:
            return None, None  # analytic traffic carries no numeric state to probe
        key = (id(a), a.shape)
        entry = self._cond_cache.get(key)
        if entry is not None:
            ref, value = entry
            if ref() is a:
                return value
        from repro.linalg.conditioning import estimate_spectrum_bounds

        smax, smin = estimate_spectrum_bounds(
            a, oversampling=self.config.oversampling, seed=self.config.seed
        )
        value = (float("inf") if smin == 0.0 else smax / smin, smax)
        if len(self._cond_cache) >= 256:
            self._cond_cache.clear()
        self._cond_cache[key] = (weakref.ref(a), value)
        return value

    def _cond_estimate(self, a: np.ndarray) -> Optional[float]:
        """Cached conditioning probe (the ``kappa`` half of the spectrum probe)."""
        return self._spectrum_estimate(a)[0]

    def _plan_batch(self, batch: MicroBatch) -> Tuple[SolvePlan, SolveSpec]:
        """Build the batch's SolveSpec and route it per the server policy."""
        d, n = batch.a.shape
        first = batch.requests[0]
        cond = None if self.config.policy == "fixed" else self._cond_estimate(batch.a)
        spec = SolveSpec(
            d=d,
            n=n,
            nrhs=batch.size,
            cond_estimate=cond,
            accuracy_target=(
                first.accuracy_target
                if first.accuracy_target is not None
                else self.config.accuracy_target
            ),
            latency_budget=(
                first.latency_budget
                if first.latency_budget is not None
                else self.config.latency_budget
            ),
            kind=batch.kind,
            oversampling=self.config.oversampling,
            seed=self.config.seed,
        )
        cost_source = self._cost_source()
        if self.config.policy == "fixed":
            return (
                plan(
                    None,
                    spec,
                    policy="fixed",
                    solver=batch.solver,
                    device=self.config.device,
                    cost_source=cost_source,
                ),
                spec,
            )
        # An analytic server has no numeric state to probe (cond is None):
        # pass no matrix so the planner ranks optimistically on cost alone
        # instead of re-probing per batch outside the memoised cache.
        matrix = batch.a if cond is not None else None
        return (
            plan(
                matrix,
                spec,
                policy=self.config.policy,
                device=self.config.device,
                cost_source=cost_source,
            ),
            spec,
        )

    def _shard_operator(
        self, solver_name: str, kind: str, a: np.ndarray, shard: int, k: int
    ) -> "SketchOperator":
        """Operator for a fallback-chain link, bound to the batch's shard.

        Consults the cache under the link's own solver-family key (via
        :meth:`~repro.serving.cache.OperatorCache.peek`, so fallback lookups
        do not distort the per-batch hit-rate statistics), replicates seeded
        operators onto the shard when they live elsewhere, and builds fresh
        otherwise.
        """
        d, n = a.shape
        key = operator_cache_key(
            kind, d, n, k, self.config.seed, a.dtype, solver=normalize_solver(solver_name)
        )
        entry = self.cache.peek(key)
        if entry is not None and shard in entry.shard_set():
            return entry.operator_for(shard)
        operator = build_operator(
            kind, d, n, k=k, executor=self.pool[shard], seed=self.config.seed, dtype=a.dtype
        )
        if self.config.seed is None:
            return operator  # unseeded state is not shareable; use it once
        if entry is not None:
            entry.add_replica(shard, operator)
        else:
            self.cache.put(key, CacheEntry(operator=operator, shard=shard))
        return operator

    def _plan_and_place(
        self, batch: MicroBatch, planned: Optional[Tuple[SolvePlan, SolveSpec]] = None
    ) -> "PlacedBatch":
        """Plan a micro-batch and bind it to a shard (no kernels run yet).

        The planned solver decides operator resolution (sketch-based
        families go through the cache under their own family key; direct
        solvers skip it).  ``planned`` lets a caller that already planned
        the batch (the concurrent runtime plans first for its deadline
        check) skip re-planning.  Splitting this from :meth:`_run_placed`
        is what lets the runtime hold its dispatch lock only for the cheap
        planning/placement step while the expensive solve runs outside it.
        """
        plan_, spec = planned if planned is not None else self._plan_batch(batch)
        needs_sketch = get_solver(plan_.solver).capabilities.needs_sketch
        entry: Optional[CacheEntry] = None
        cache_hit = False
        if needs_sketch:
            entry, built = self._resolve_operator(
                batch.kind, batch.a, k=plan_.embedding_dim, solver=plan_.solver
            )
            cache_hit = not built
            if built:
                shard = entry.shard
            else:
                shard = self._place_warm_batch(entry, batch.kind, batch.a, k=plan_.embedding_dim)
        else:
            shard = self.scheduler.place()
        return PlacedBatch(plan=plan_, spec=spec, entry=entry, shard=shard, cache_hit=cache_hit)

    def _run_placed(
        self,
        batch: MicroBatch,
        placed: "PlacedBatch",
        *,
        admitted_at: Optional[float] = None,
        roots: Optional[Dict[int, Span]] = None,
    ) -> List[SolveResponse]:
        """Execute a placed micro-batch and fan out the responses.

        The plan's fallback chain runs on the bound shard, so a POTRF
        breakdown mid-batch is rescued instead of fanning ``failed=True``
        out to every rider.  ``admitted_at`` (a point on the simulated
        clock) switches latency accounting from service-only (the
        synchronous server: a request's latency is its batch's compute plus
        the result transfer) to queue-inclusive (the concurrent runtime:
        everything from admission to completion, queueing delay included).
        ``roots`` maps request ids to runtime-created trace roots; without
        it each rider's trace starts at execution.
        """
        plan_, spec, entry, shard = placed.plan, placed.spec, placed.entry, placed.shard
        executor = self.pool[shard]
        tracing = self.tracer.enabled
        batch_id = self._batch_seq
        self._batch_seq += 1
        # The per-attempt log is kept even with tracing off: it is also the
        # calibration feed (measured per-solver durations).
        span_log: List[Dict[str, object]] = []
        exec_start = executor.elapsed

        rhs = batch.rhs_block() if batch.size > 1 else batch.requests[0].b
        operators = {plan_.solver: entry.operator_for(shard)} if entry is not None else None
        result = execute_plan(
            plan_,
            batch.a,
            rhs,
            spec,
            executor=executor,
            operators=operators,
            operator_provider=lambda name: self._shard_operator(
                name, batch.kind, batch.a, shard, plan_.embedding_dim
            ),
            span_log=span_log,
        )
        exec_end = executor.elapsed
        self._feed_calibration(span_log, spec)
        executed = result.attempted_solvers[-1]
        fallbacks = int(float(result.extra.get("fallbacks", 0.0)))
        if fallbacks:
            self.telemetry.record_fallback(plan_.solver, executed)
        if result.failed:
            self.telemetry.record_failure(batch.size)
        compute_seconds = result.total_seconds

        # Cross-shard traffic: the batch's solution block travels back from
        # the shard to the front end.
        n = batch.a.shape[1]
        result_bytes = float(n) * batch.size * batch.a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("result_return", result_bytes)

        if admitted_at is None:
            latency = compute_seconds + comm_seconds
        else:
            latency = max(0.0, executor.elapsed - admitted_at) + comm_seconds
        self.telemetry.record_batch(batch.size, compute_seconds)
        responses = []
        for j, req in enumerate(batch.requests):
            self.telemetry.record_request(latency, solver=executed)
            if tracing:
                self._finish_request_trace(
                    roots.get(req.request_id) if roots else None,
                    request_id=req.request_id,
                    lane="solve",
                    placed=placed,
                    batch_id=batch_id,
                    batch_size=batch.size,
                    span_log=span_log,
                    exec_start=exec_start,
                    exec_end=exec_end,
                    comm_seconds=comm_seconds,
                    executed=executed,
                    fallbacks=fallbacks,
                    failed=bool(result.failed),
                    residual=self._column_residual(result, j, batch.size),
                )
            responses.append(
                SolveResponse(
                    request_id=req.request_id,
                    x=self._column(result, j, batch.size),
                    relative_residual=self._column_residual(result, j, batch.size),
                    simulated_seconds=latency,
                    compute_seconds=compute_seconds,
                    comm_seconds=comm_seconds,
                    shard=shard,
                    batch_size=batch.size,
                    cache_hit=placed.cache_hit,
                    kind=batch.kind,
                    solver=batch.solver,
                    method=result.method,
                    extra={
                        "failed": float(result.failed),
                        "attempted": result.extra.get("attempted", executed),
                        "planned": plan_.solver,
                        "cond_estimate": plan_.cond_estimate,
                    },
                    policy=self.config.policy,
                    executed_solver=executed,
                    fallbacks=fallbacks,
                )
            )
        return responses

    def _execute_batch(self, batch: MicroBatch) -> List[SolveResponse]:
        """Plan, place and run one fused micro-batch (synchronous path)."""
        return self._run_placed(batch, self._plan_and_place(batch))

    @staticmethod
    def _column(result: LeastSquaresResult, j: int, size: int) -> Optional[np.ndarray]:
        if result.x is None:
            return None
        if size == 1:
            return result.x
        return result.x[:, j].copy()

    @staticmethod
    def _column_residual(result: LeastSquaresResult, j: int, size: int) -> float:
        if size == 1 or result.column_residuals is None:
            return result.relative_residual
        return float(result.column_residuals[j])

    # ------------------------------------------------------------------
    # streaming sessions (see repro.serving.streaming)
    # ------------------------------------------------------------------
    def open_stream(self, n: int, **options) -> int:
        """Open a streaming session for ``n``-column rows; returns its id.

        Options (``mode``, ``window_buckets``, ``bucket_rows``, ``decay``,
        ``policy``, ``accuracy_target``, ``latency_budget``, ``detector``,
        ``k``, ``seed``) are
        forwarded to :meth:`repro.serving.streaming.StreamingSessionManager.open`;
        unset routing options inherit the server config.  The session's
        engine runs on a scheduler-chosen shard and its window-sketch
        operator is pinned in the operator cache under a session key.
        """
        return self.streams.open(n, **options)

    def append_rows(
        self,
        session_id: int,
        rows: np.ndarray,
        targets: np.ndarray,
        *,
        root: Optional[Span] = None,
    ) -> IngestReport:
        """Fold one arriving batch of rows into a session's window sketch.

        ``root`` is an optional trace root (the concurrent runtime passes
        the one it opened at admission) under which the session's
        ingest/re-solve/drift spans nest.
        """
        return self.streams.append(session_id, rows, targets, root=root)

    def query_solution(
        self, session_id: int, *, root: Optional[Span] = None
    ) -> StreamSolutionResponse:
        """Serve a session's current solution (lazily re-solved when stale)."""
        return self.streams.query(session_id, root=root)

    def close_stream(self, session_id: int) -> Dict[str, float]:
        """Close a session and return its final per-session statistics."""
        return self.streams.close(session_id)

    # ------------------------------------------------------------------
    # frequency sessions (see repro.serving.frequency)
    # ------------------------------------------------------------------
    def open_frequency_stream(self, domain: int, **options) -> int:
        """Open a frequency-analytics session over ``domain`` item ids.

        Options (``phi``, ``delta``, ``branch``, ``need_ranges``,
        ``max_width``, ``seed``) are forwarded to
        :meth:`repro.serving.frequency.FrequencySessionManager.open`; the
        sketch is sized by :func:`repro.problems.frequency.plan_frequency_sketch`
        and pinned to a scheduler-chosen shard.
        """
        return self.frequencies.open(domain, **options)

    def append_items(
        self, session_id: int, ids, weights=None, *, root: Optional[Span] = None
    ) -> FrequencyIngestReport:
        """Fold one ``(ids, weights)`` batch into a frequency session."""
        return self.frequencies.append(session_id, ids, weights, root=root)

    def query_heavy_hitters(
        self,
        session_id: int,
        *,
        k: Optional[int] = None,
        phi: Optional[float] = None,
        root: Optional[Span] = None,
    ) -> FrequencyQueryResponse:
        """Serve a frequency session's ``phi``-heavy hitters (library-exact)."""
        return self.frequencies.query_heavy_hitters(session_id, k=k, phi=phi, root=root)

    def query_norm(
        self, session_id: int, *, root: Optional[Span] = None
    ) -> FrequencyQueryResponse:
        """Serve a frequency session's l2-norm estimate."""
        return self.frequencies.query_norm(session_id, root=root)

    def query_range(
        self, session_id: int, lo: int, hi: int, *, root: Optional[Span] = None
    ) -> FrequencyQueryResponse:
        """Serve the estimated weight of ids in ``[lo, hi)`` (dyadic descent)."""
        return self.frequencies.query_range(session_id, lo, hi, root=root)

    def query_point(
        self, session_id: int, ids, *, root: Optional[Span] = None
    ) -> FrequencyQueryResponse:
        """Serve point-frequency estimates for explicit ids."""
        return self.frequencies.query_point(session_id, ids, root=root)

    def close_frequency_stream(self, session_id: int) -> Dict[str, float]:
        """Close a frequency session and return its final statistics."""
        return self.frequencies.close(session_id)

    # ------------------------------------------------------------------
    # durability (see repro.durability / repro.serving.streaming)
    # ------------------------------------------------------------------
    def save(self) -> Dict[int, int]:
        """Checkpoint every live session to the durability store.

        Requires ``config.durability``; returns ``{session_id: snapshot
        bytes}`` across both streaming-solver and frequency sessions (ids
        never collide -- both managers draw from the server's one id
        stream).  Each session's WAL is truncated after its snapshot, so a
        ``save()`` is a clean recovery point with nothing to replay.
        """
        saved = self.streams.save()
        saved.update(self.frequencies.save())
        return saved

    def restore(self) -> RestoreReport:
        """Rebuild every durable session from checkpoint + WAL-tail replay.

        Safe after any crash: corrupt or foreign records land in the
        report's ``failed`` map with their typed error instead of raising,
        and the server keeps serving (a fresh session can be opened in
        their place) -- never a silently wrong answer.  Frequency sessions
        are restored alongside solver sessions and land in the same
        ``restored`` map.  Restore a single session with
        ``server.streams.restore(session_id)`` /
        ``server.frequencies.restore(session_id)``.
        """
        report = self.streams.restore_all()
        freq_report = self.frequencies.restore_all()
        report.restored.update(freq_report.restored)
        report.failed.update(freq_report.failed)
        return report

    # ------------------------------------------------------------------
    # problem-class endpoints (see repro.problems)
    # ------------------------------------------------------------------
    def _problem_operator(
        self, kind: str, rows: int, n: int, k: int, *, solver: str, problem: str
    ) -> Tuple[CacheEntry, bool]:
        """Find or build a problem-class operator; returns (entry, built).

        Like :meth:`_resolve_operator` but keyed with explicit input rows
        and the problem class (ridge operators embed the *augmented*
        ``(d + n)``-row system, range-finder operators are ``n``-input
        Gaussian test matrices), and placed with plain cache affinity --
        problem-class requests are not micro-batched, so the hot-key
        replication machinery is not engaged.
        """
        key = operator_cache_key(
            kind, rows, n, k, self.config.seed, np.float64, solver=solver, problem=problem
        )
        entry = self.cache.get(key)
        if entry is not None:
            self.scheduler.place(preferred=entry.shard)
            return entry, False
        shard = self.scheduler.place()
        operator = build_operator(
            kind, rows, n, k=k, executor=self.pool[shard], seed=self.config.seed
        )
        return self.cache.put(key, CacheEntry(operator=operator, shard=shard)), True

    def _problem_shard_operator(
        self, solver_name: str, kind: str, rows: int, n: int, shard: int, k: int, *, problem: str
    ) -> "SketchOperator":
        """Operator for a problem-class fallback link, bound to the request's shard."""
        key = operator_cache_key(
            kind,
            rows,
            n,
            k,
            self.config.seed,
            np.float64,
            solver=normalize_solver(solver_name),
            problem=problem,
        )
        entry = self.cache.peek(key)
        if entry is not None and shard in entry.shard_set():
            return entry.operator_for(shard)
        operator = build_operator(
            kind, rows, n, k=k, executor=self.pool[shard], seed=self.config.seed
        )
        if self.config.seed is None:
            return operator  # unseeded state is not shareable; use it once
        if entry is not None:
            entry.add_replica(shard, operator)
        else:
            self.cache.put(key, CacheEntry(operator=operator, shard=shard))
        return operator

    def _plan_ridge(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lam: float,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
    ) -> Tuple[SolvePlan, SolveSpec, str, str]:
        """Validate and plan one ridge request; returns (plan, spec, policy, kind)."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or a.shape[0] <= a.shape[1]:
            raise ValueError("A must be a tall (d > n) matrix")
        if b.shape[0] != a.shape[0]:
            raise ValueError("b must have one entry per row of A")
        if lam <= 0.0:
            raise ValueError("solve_ridge needs a positive lam; use solve()/submit() otherwise")
        kind = normalize_kind(kind if kind is not None else self.config.kind)
        d, n = a.shape
        nrhs = b.shape[1] if b.ndim == 2 else 1
        cond, smax = self._spectrum_estimate(a)
        spec = SolveSpec(
            d=d,
            n=n,
            nrhs=nrhs,
            regularization=float(lam),
            cond_estimate=cond,
            smax_estimate=smax,
            accuracy_target=(
                accuracy_target if accuracy_target is not None else self.config.accuracy_target
            ),
            latency_budget=(
                latency_budget if latency_budget is not None else self.config.latency_budget
            ),
            kind=kind,
            oversampling=self.config.oversampling,
            seed=self.config.seed,
        )
        cost_source = self._cost_source()
        if self.config.policy == "fixed" and solver is not None:
            plan_ = plan(
                None, spec, policy="fixed", solver=solver,
                device=self.config.device, cost_source=cost_source,
            )
            policy = "fixed"
        else:
            policy = self.config.policy if self.config.policy != "fixed" else "cheapest_accurate"
            plan_ = plan(
                None, spec, policy=policy, solver=solver,
                device=self.config.device, cost_source=cost_source,
            )
        return plan_, spec, policy, kind

    def _place_ridge(self, plan_: SolvePlan, spec: SolveSpec, kind: str) -> "PlacedBatch":
        """Bind a planned ridge request to a shard (operators under ``problem="ridge"``)."""
        rows_aug = spec.d + spec.n
        entry: Optional[CacheEntry] = None
        cache_hit = False
        if get_solver(plan_.solver).capabilities.needs_sketch:
            entry, built = self._problem_operator(
                kind, rows_aug, spec.n, plan_.embedding_dim, solver=plan_.solver, problem="ridge"
            )
            cache_hit = not built
            shard = entry.shard
        else:
            shard = self.scheduler.place()
        return PlacedBatch(plan=plan_, spec=spec, entry=entry, shard=shard, cache_hit=cache_hit)

    def solve_ridge(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lam: float,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
    ) -> SolveResponse:
        """Serve ``min_x ||b - A x||^2 + lam ||x||^2`` through the planner.

        The request routes exactly like batch least-squares traffic -- the
        cached spectrum probe feeds the planner, the cheapest admissible
        *ridge* solver runs first, breakdowns walk the ridge fallback chain
        on the chosen shard -- with two differences: sketch operators live
        under the ``problem="ridge"`` cache namespace at the augmented
        ``(d + n)``-row height, and an explicit ``solver`` pins the routing
        (otherwise a ``"fixed"``-policy server routes ridge adaptively,
        since its configured default solver answers the wrong problem).
        """
        a = np.asarray(a)
        b = np.asarray(b)
        plan_, spec, policy, kind = self._plan_ridge(
            a,
            b,
            lam,
            kind=kind,
            solver=solver,
            accuracy_target=accuracy_target,
            latency_budget=latency_budget,
        )
        placed = self._place_ridge(plan_, spec, kind)
        return self._run_ridge(
            a, b, lam, placed, policy=policy, kind=kind, solver=solver
        )

    def _run_ridge(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lam: float,
        placed: "PlacedBatch",
        *,
        policy: str,
        kind: str,
        solver: Optional[str],
        admitted_at: Optional[float] = None,
        request_id: Optional[int] = None,
        root: Optional[Span] = None,
    ) -> SolveResponse:
        """Execute a placed ridge request (see :meth:`_run_placed` for accounting).

        ``request_id`` lets the concurrent runtime pass the id it reserved
        at admission (and ``root`` the trace root it opened there); the
        synchronous path draws an id and starts the trace here.
        """
        plan_, spec, entry, shard = placed.plan, placed.spec, placed.entry, placed.shard
        cache_hit = placed.cache_hit
        d, n = a.shape
        nrhs = spec.nrhs
        rows_aug = d + n
        executor = self.pool[shard]
        tracing = self.tracer.enabled
        batch_id = self._batch_seq
        self._batch_seq += 1
        # Kept even with tracing off: the log doubles as the calibration feed.
        span_log: List[Dict[str, object]] = []
        exec_start = executor.elapsed
        operators = {plan_.solver: entry.operator_for(shard)} if entry is not None else None
        result = execute_plan(
            plan_,
            a,
            b,
            spec,
            executor=executor,
            operators=operators,
            operator_provider=lambda name: self._problem_shard_operator(
                name, kind, rows_aug, n, shard, plan_.embedding_dim, problem="ridge"
            ),
            span_log=span_log,
        )
        exec_end = executor.elapsed
        self._feed_calibration(span_log, spec)
        executed = result.attempted_solvers[-1]
        fallbacks = int(float(result.extra.get("fallbacks", 0.0)))
        if fallbacks:
            self.telemetry.record_fallback(plan_.solver, executed)
        if result.failed:
            self.telemetry.record_failure(1)
        compute_seconds = result.total_seconds
        result_bytes = float(n) * nrhs * a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("result_return", result_bytes)
        if admitted_at is None:
            latency = compute_seconds + comm_seconds
        else:
            latency = max(0.0, executor.elapsed - admitted_at) + comm_seconds
        self.telemetry.record_batch(1, compute_seconds)
        self.telemetry.record_request(latency, solver=executed)
        if request_id is None:
            request_id = self._next_id
            self._next_id += 1
        if tracing:
            self._finish_request_trace(
                root,
                request_id=request_id,
                lane="ridge",
                placed=placed,
                batch_id=batch_id,
                batch_size=1,
                span_log=span_log,
                exec_start=exec_start,
                exec_end=exec_end,
                comm_seconds=comm_seconds,
                executed=executed,
                fallbacks=fallbacks,
                failed=bool(result.failed),
                residual=result.relative_residual,
            )
        response = SolveResponse(
            request_id=request_id,
            x=result.x,
            relative_residual=result.relative_residual,
            simulated_seconds=latency,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=shard,
            batch_size=1,
            cache_hit=cache_hit,
            kind=kind,
            solver=solver if solver is not None else "",
            method=result.method,
            extra={
                "failed": float(result.failed),
                "attempted": result.extra.get("attempted", executed),
                "planned": plan_.solver,
                "cond_estimate": plan_.cond_estimate,
                "regularization": float(lam),
            },
            policy=policy,
            executed_solver=executed,
            fallbacks=fallbacks,
            problem="ridge",
        )
        return response

    def approx_lowrank(
        self,
        a: np.ndarray,
        rank: int,
        *,
        method: str = "rangefinder",
        oversample: int = 8,
        power_iters: int = 0,
        ell: Optional[int] = None,
    ) -> LowRankResponse:
        """Serve a rank-``rank`` factorization of ``A``.

        ``method="rangefinder"`` runs the randomized range finder on a
        scheduler-chosen shard, with the Gaussian test operator cached
        under the ``problem="lowrank"`` namespace (repeat requests against
        the same column count reuse it, like solve operators);
        ``method="frequent_directions"`` streams the rows through an FD
        accumulator -- deterministic, so nothing is cached.
        """
        from repro.problems.lowrank import lowrank_approx  # local: heavy import

        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("approx_lowrank expects a 2-D matrix")
        d, n = a.shape
        method_l = method.lower()
        if method_l in ("fd", "frequent-directions"):
            method_l = "frequent_directions"
        operator = None
        cache_hit = False
        if method_l == "rangefinder":
            r = min(int(rank) + max(int(oversample), 0), n)
            entry, built = self._problem_operator(
                "gaussian", n, n, r, solver="rangefinder", problem="lowrank"
            )
            cache_hit = not built
            shard = entry.shard
            operator = entry.operator_for(shard)
        else:
            shard = self.scheduler.place()
        result = lowrank_approx(
            a,
            rank,
            method=method_l,
            oversample=oversample,
            power_iters=power_iters,
            ell=ell,
            executor=self.pool[shard],
            operator=operator,
            seed=self.config.seed,
        )
        compute_seconds = result.total_seconds
        out_bytes = (float(d) * rank + float(rank) * n) * a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("lowrank_return", out_bytes)
        latency = compute_seconds + comm_seconds
        self.telemetry.record_request(latency, solver=f"lowrank_{result.method}")
        response = LowRankResponse(
            request_id=self._next_id,
            left=result.left,
            right=result.right,
            rank=result.rank,
            method=result.method,
            relative_error=result.relative_error,
            simulated_seconds=latency,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=shard,
            cache_hit=cache_hit,
            extra=dict(result.extra),
        )
        self._next_id += 1
        return response

    # ------------------------------------------------------------------
    def sketch(self, a: np.ndarray, *, kind: Optional[str] = None) -> SketchResponse:
        """Serve a ``sketch(A)`` request: return ``S A`` for the cached operator."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("sketch expects a 2-D matrix")
        kind = normalize_kind(kind if kind is not None else self.config.kind)
        entry, built = self._resolve_operator(kind, a)
        shard = entry.shard if built else self._place_warm_batch(entry, kind, a)
        operator = entry.operator_for(shard)
        ex = self.pool[shard]
        mark = ex.mark()
        sketched = operator.sketch_host(a) if ex.numeric else None
        if not ex.numeric:
            operator.apply(ex.empty(a.shape, label="A_request"))
        compute_seconds = ex.elapsed_since(mark)
        out_bytes = float(operator.k) * a.shape[1] * a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("sketch_return", out_bytes)
        latency = compute_seconds + comm_seconds
        self.telemetry.record_sketch(latency)
        response = SketchResponse(
            request_id=self._next_id,
            sketch=sketched,
            k=operator.k,
            simulated_seconds=latency,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=shard,
            cache_hit=not built,
            kind=kind,
        )
        self._next_id += 1
        return response

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Headline serving statistics as one flat dict.

        ``requests_per_second`` is requests over the pool *makespan* (the
        busiest shard's simulated clock -- shards run concurrently), i.e. the
        sustained compute throughput of the configuration.  Communication
        totals are reported alongside so a deployment can check which
        resource saturates first.
        """
        makespan = self.pool.makespan()
        out = self.telemetry.snapshot(makespan_seconds=makespan)
        out.update({f"cache_{k}": v for k, v in self.cache.stats.as_dict().items()})
        out["comm_seconds"] = self.scheduler.comm_seconds()
        out["comm_bytes"] = self.scheduler.comm_bytes()
        out["shards"] = float(self.pool.size)
        out["active_shards"] = float(self.scheduler.active_shards)
        transitions = self.scheduler.scale_transitions()
        out["scale_ups"] = float(transitions["up"])
        out["scale_downs"] = float(transitions["down"])
        out["open_streams"] = float(len(self.streams))
        out["open_frequency_streams"] = float(len(self.frequencies))
        out["traces_completed"] = float(self.tracer.traces_completed)
        for i, load in enumerate(self.pool.loads()):
            out[f"shard{i}_busy_seconds"] = load
        return out


# ---------------------------------------------------------------------------
# Naive reference loop
# ---------------------------------------------------------------------------
def naive_solve_loop(
    traffic: Iterable[Tuple[np.ndarray, np.ndarray]],
    *,
    kind: str = "multisketch",
    solver: str = "sketch_and_solve",
    seed: int = 0,
    device: DeviceSpec = H100_SXM5,
    numeric: bool = True,
) -> Dict[str, object]:
    """Solve the traffic one request at a time: no batching, no caching.

    Every request builds a fresh sketch operator (paying "Sketch gen"),
    sketches ``A`` from scratch and runs its own QR -- the baseline the
    serving layer's throughput claim is measured against.
    """
    kind = normalize_kind(kind)
    solver = normalize_solver(solver)
    registered = get_solver(solver)
    executor = GPUExecutor(device, numeric=numeric, seed=seed, track_memory=False)
    results: List[LeastSquaresResult] = []
    for a, b in traffic:
        a = np.asarray(a)
        spec = SolveSpec.from_problem(a, np.asarray(b), kind=kind, seed=seed)
        operator = None
        if registered.capabilities.needs_sketch:
            operator = build_operator(
                kind, a.shape[0], a.shape[1], executor=executor, seed=seed, dtype=a.dtype
            )
        results.append(registered.solve(a, b, spec, operator=operator, executor=executor))
    # The loop is sequential on one device: its clock (operator generation
    # included) is the end-to-end simulated time for the whole traffic.
    total = executor.elapsed
    count = len(results)
    return {
        "requests": count,
        "simulated_seconds": total,
        "requests_per_second": count / total if total > 0 else 0.0,
        "results": results,
    }


# ---------------------------------------------------------------------------
# Console entry point (`repro-serve`)
# ---------------------------------------------------------------------------
def _drive_mixed_workload(runtime, rng, *, on_phase=None) -> None:
    """Run the short three-lane workload the observability CLI paths share.

    ``on_phase`` (e.g. :meth:`~repro.obs.slo.SLOEngine.evaluate`) is called
    after each lane's futures resolve, so counter-backed SLO windows see
    several evaluation intervals over the run.
    """
    futures = []
    for _ in range(16):
        a = rng.standard_normal((512, 16))
        futures.append(runtime.submit(a, rng.standard_normal(512)))
    for future in futures:
        future.result()
    if on_phase is not None:
        on_phase()
    futures = []
    for _ in range(6):
        a = rng.standard_normal((256, 12))
        futures.append(runtime.submit_ridge(a, rng.standard_normal(256), 0.1))
    for future in futures:
        future.result()
    if on_phase is not None:
        on_phase()
    session = runtime.open_stream(12)
    futures = []
    for _ in range(4):
        futures.append(
            runtime.append_rows(
                session, rng.standard_normal((128, 12)), rng.standard_normal(128)
            )
        )
    futures.append(runtime.query_solution(session))
    for future in futures:
        future.result()
    runtime.drain()
    if on_phase is not None:
        on_phase()


def _slo_report(args) -> int:
    """``repro-serve --slo-report``: stock SLOs over the mixed workload."""
    import json as _json

    from repro.obs.slo import SLOEngine, default_serving_slos
    from repro.serving.runtime import AsyncSketchServer

    rng = np.random.default_rng(args.seed)
    runtime = AsyncSketchServer(
        shards=args.shards,
        seed=args.seed,
        workers=max(args.workers, 2),
        queue_depth=args.queue_depth,
    )
    engine = SLOEngine(runtime.server.metrics, default_serving_slos())
    try:
        _drive_mixed_workload(runtime, rng, on_phase=engine.evaluate)
    finally:
        runtime.stop()
    report = engine.report()
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0
    print(f"SLO report ({report['evaluations']} evaluations):")
    for row in report["slos"]:
        state = "FIRING" if row["alerting"] else "ok"
        print(
            f"  {row['name']:<24} [{row['kind']:<12}] objective={row['objective']:.3f} "
            f"compliance={row['compliance']:.4f} "
            f"burn fast={row['fast_burn']:.2f} slow={row['slow_burn']:.2f} "
            f"n={row['samples']} {state}"
        )
    for event in report["alert_events"]:
        print(
            f"  alert: {event['slo']} {event['state']} at eval {event['at']:g} "
            f"(fast={event['fast_burn']:.2f}, slow={event['slow_burn']:.2f})"
        )
    return 1 if report["firing"] else 0


def _health_probe(args) -> int:
    """``repro-serve --health``: canary workload with meaningful exit codes.

    Exit 0: canary traffic served cleanly and no SLO alert is firing.
    Exit 1: degraded -- traffic was served but requests were shed/failed
    or an SLO alert fired.  Exit 2: unhealthy -- the canary itself blew up.
    """
    from repro.obs.slo import SLOEngine, default_serving_slos
    from repro.serving.runtime import AsyncSketchServer

    rng = np.random.default_rng(args.seed)
    try:
        runtime = AsyncSketchServer(
            shards=args.shards,
            seed=args.seed,
            workers=max(args.workers, 2),
            queue_depth=args.queue_depth,
        )
        engine = SLOEngine(runtime.server.metrics, default_serving_slos())
        try:
            _drive_mixed_workload(runtime, rng, on_phase=engine.evaluate)
            snapshot = runtime.telemetry.snapshot()
        finally:
            runtime.stop()
    except Exception as exc:  # the probe itself must never raise
        print(f"unhealthy: canary workload failed: {exc}")
        return 2
    shed = snapshot.get("requests_shed", 0)
    failed = snapshot.get("failed_requests", 0)
    firing = engine.firing()
    if failed or shed or firing:
        detail = ", ".join(
            part
            for part in (
                f"{int(failed)} failed" if failed else "",
                f"{int(shed)} shed" if shed else "",
                f"alerts firing: {firing}" if firing else "",
            )
            if part
        )
        print(f"degraded: {detail}")
        return 1
    print(
        f"healthy: {int(snapshot.get('requests_served', 0))} canary requests served, "
        "no sheds, no failures, no SLO alerts"
    )
    return 0


def _observability_demo(args) -> int:
    """Drive a short mixed workload and print what the observability layer saw.

    Shared by ``repro-serve --metrics`` (Prometheus text / JSON snapshot of
    the registry) and ``--dump-trace`` (waterfall + critical path of the
    slowest completed request trace).  The workload mixes all three lanes so
    every span family and metric name shows up in the output.
    """
    from repro.obs.export import (
        render_critical_path,
        render_waterfall,
        to_json,
        to_prometheus,
    )
    from repro.serving.runtime import AsyncSketchServer

    rng = np.random.default_rng(args.seed)
    runtime = AsyncSketchServer(
        shards=args.shards,
        seed=args.seed,
        workers=max(args.workers, 2),
        queue_depth=args.queue_depth,
    )
    try:
        _drive_mixed_workload(runtime, rng)
    finally:
        runtime.stop()

    if args.metrics:
        if args.json:
            print(to_json(runtime.server.metrics))
        else:
            print(to_prometheus(runtime.server.metrics), end="")
    if args.dump_trace:
        traces = runtime.tracer.traces()
        if not traces:
            print("no completed traces (tracing disabled?)")
            return 1
        slowest = max(traces, key=lambda t: t.duration)
        if args.metrics:
            print()
        print(render_waterfall(slowest))
        print()
        print(render_critical_path(slowest))
    return 0


def _durability_demo(args) -> int:
    """``repro-serve --checkpoint-dir PATH``: crash/restore round trip.

    Streams batches into a durable sliding-window session, abandons the
    server mid-stream (simulating a crash: the last batches live only in
    the WAL tail), restores on a brand-new server backed by the same
    directory, and verifies the recovered solution is *identical* to the
    pre-crash one -- the determinism the hashed sketch state guarantees.
    """
    store = DirectoryCheckpointStore(args.checkpoint_dir)
    durability = DurabilityConfig(store=store, checkpoint_interval_batches=4)
    rng = np.random.default_rng(args.seed)
    n = 16
    x_true = rng.standard_normal(n)

    def make_batch():
        rows = rng.standard_normal((256, n))
        targets = rows @ x_true + 1e-8 * rng.standard_normal(256)
        return rows, targets

    server = SketchServer(shards=args.shards, seed=args.seed, durability=durability)
    sid = server.open_stream(n, mode="sliding", bucket_rows=512, window_buckets=4, detector=False)
    for _ in range(10):
        server.append_rows(sid, *make_batch())
    before = server.query_solution(sid)
    checkpoints = server.telemetry.checkpoints_written
    wal_appends = server.telemetry.wal_appends
    del server  # crash: the process state is gone, only the store survives

    recovered = SketchServer(shards=args.shards, seed=args.seed, durability=durability)
    report = recovered.restore()
    if not report.ok or sid not in report.restored:
        print(f"restore failed: {report.failed or 'session missing'}")
        return 1
    after = recovered.query_solution(sid)
    match = (
        before.x is not None
        and after.x is not None
        and np.array_equal(before.x, after.x)
    )
    print(f"checkpoint dir        : {args.checkpoint_dir}")
    print(f"checkpoints written   : {checkpoints}")
    print(f"wal appends           : {wal_appends}")
    print(f"wal batches replayed  : {report.restored[sid]}")
    print(f"pre-crash residual    : {before.relative_residual:.3e}")
    print(f"post-restore residual : {after.relative_residual:.3e}")
    print(f"solutions identical   : {match}")
    recovered.close_stream(sid)
    return 0 if match else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Serving demo for the ``repro-serve`` console script.

    Thin wrapper over the harness experiments so the demo, the harness rows
    and the benchmarks all share one traffic-synthesis and comparison path.
    With ``--workers N`` (N > 0) the demo runs the *concurrent runtime*
    experiment instead of the synchronous throughput comparison:
    ``--workers``/``--queue-depth`` size the dispatcher pool and the bounded
    admission queue of the :class:`~repro.serving.runtime.AsyncSketchServer`.
    """
    import argparse

    from repro.harness.experiments import concurrent_load, serving_throughput
    from repro.harness.report import format_table

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Sketch-and-solve serving demo (simulated H100 seconds).",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="dispatcher threads for the concurrent runtime demo "
        "(0 = synchronous serving demo; default 0)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=512,
        help="admission-queue bound for the concurrent runtime demo (default 512)",
    )
    parser.add_argument("--shards", type=int, default=2, help="base shard count (default 2)")
    parser.add_argument("--seed", type=int, default=7, help="traffic/operator seed (default 7)")
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="run a short mixed workload and print the metrics registry "
        "(Prometheus text exposition format; see --json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --metrics, print the structured JSON snapshot instead",
    )
    parser.add_argument(
        "--dump-trace",
        action="store_true",
        help="run a short mixed workload and print the slowest request's "
        "span waterfall and critical path",
    )
    parser.add_argument(
        "--slo-report",
        action="store_true",
        help="run a short mixed workload under the stock SLO set and print "
        "per-SLO compliance, burn rates and alert events (exit 1 if any "
        "alert is firing; see --json)",
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="canary health probe: exit 0 healthy, 1 degraded (sheds, "
        "failures or firing SLO alerts), 2 unhealthy (probe itself failed)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="durability demo: run a streaming session against a "
        "directory-backed checkpoint/WAL store at PATH, 'crash' it "
        "mid-stream, then restore on a fresh server and verify the "
        "recovered solution matches exactly (exit 1 on mismatch)",
    )
    args = parser.parse_args(argv)

    if args.checkpoint_dir is not None:
        return _durability_demo(args)
    if args.health:
        return _health_probe(args)
    if args.slo_report:
        return _slo_report(args)
    if args.metrics or args.dump_trace:
        return _observability_demo(args)

    if args.workers > 0:
        rows = concurrent_load(
            shards=args.shards,
            workers=args.workers,
            queue_depth=args.queue_depth,
            seed=args.seed,
        )
        print(format_table(
            rows,
            columns=["mode", "requests", "requests_per_second", "speedup",
                     "worst_relative_residual", "active_max", "scale_ups", "scale_downs",
                     "requests_shed", "queue_full_rejects", "deadline_violations"],
            title=(f"repro-serve concurrent demo: mixed lstsq+ridge+streaming load, "
                   f"{args.workers} workers, queue depth {args.queue_depth} "
                   "-- simulated H100 seconds"),
        ))
        return 0

    rows = serving_throughput(
        d=1 << 14, n=32, n_requests=128, n_matrices=2,
        kinds=("multisketch", "countsketch", "gaussian"),
        shards=args.shards, max_batch=8, seed=args.seed,
    )
    print(format_table(
        rows,
        columns=["kind", "batched_rps", "naive_rps", "speedup", "cache_hit_rate",
                 "mean_batch_size", "p50_us", "p99_us", "worst_relative_residual"],
        title=("repro-serve demo: 128 solve requests over 2 design matrices "
               "(d=2^14, n=32, 2 shards) -- simulated H100 seconds"),
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
