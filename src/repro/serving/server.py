"""`SketchServer`: the request-serving front end of the reproduction.

Pulls the serving subsystem together:

1. ``submit()`` enqueues ``solve(A, b)`` requests into the
   :class:`~repro.serving.batcher.MicroBatcher`;
2. ``flush()`` drains the queue as fused micro-batches, resolves each batch's
   sketch operator through the :class:`~repro.serving.cache.OperatorCache`,
   places it on a shard via the
   :class:`~repro.serving.scheduler.ShardScheduler`, and runs one multi-RHS
   ``sketch_and_solve`` / ``rand_cholqr_lstsq`` per batch;
3. per-request latencies, batch sizes and cache hit rates land in
   :class:`~repro.serving.telemetry.ServingTelemetry`.

Throughput comes from two amortisations measured by
``benchmarks/test_serving_throughput.py``: the micro-batcher pays the
``S A`` sketch and the QR factorisation once per batch instead of once per
request, and the operator cache pays sketch generation once per problem
shape instead of once per request.

:func:`naive_solve_loop` is the reference the benchmark compares against: the
same traffic solved one request at a time with no batching and no caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributed.comm import CommCostModel
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor
from repro.gpu.pool import ExecutorPool
from repro.linalg.lstsq import LeastSquaresResult, sketch_and_solve
from repro.linalg.rand_cholqr import rand_cholqr_lstsq
from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.cache import (
    CacheEntry,
    OperatorCache,
    build_operator,
    operator_cache_key,
    resolve_embedding_dim,
)
from repro.serving.requests import (
    SketchResponse,
    SolveRequest,
    SolveResponse,
    normalize_kind,
    normalize_solver,
)
from repro.serving.scheduler import ShardScheduler
from repro.serving.telemetry import ServingTelemetry


@dataclass
class ServerConfig:
    """Configuration of a :class:`SketchServer`.

    Attributes
    ----------
    kind:
        Default sketch family for requests that do not specify one.
    solver:
        Default solver (``"sketch_and_solve"`` or ``"rand_cholqr"``).
    shards:
        Number of simulated GPU workers in the executor pool.
    cache_capacity:
        Maximum number of live sketch operators across all shards.
    max_batch:
        Upper bound on requests fused into one micro-batch.
    seed:
        Seed for every server-built operator (part of the cache key, so all
        requests against a shape share one reproducible sketch).
    replicate_operators:
        When True (default), a cached operator whose shard is busier than an
        idle shard is *replicated* there -- rebuilt locally from its seed
        (sketch state is a pure function of the cache key, so only the tiny
        key crosses the network) -- letting hot single-shape traffic spread
        over the whole pool instead of serialising on the owning shard.
    device / numeric:
        Forwarded to the executor pool.
    comm:
        Alpha-beta model for front-end <-> shard transfers.
    """

    kind: str = "multisketch"
    solver: str = "sketch_and_solve"
    shards: int = 2
    cache_capacity: int = 64
    max_batch: int = 32
    seed: int = 0
    replicate_operators: bool = True
    device: DeviceSpec = H100_SXM5
    numeric: bool = True
    comm: Optional[CommCostModel] = None

    def __post_init__(self) -> None:
        self.kind = normalize_kind(self.kind)
        self.solver = normalize_solver(self.solver)
        if self.shards <= 0:
            raise ValueError("shards must be positive")


class SketchServer:
    """Batched, cached, sharded sketch-and-solve service."""

    def __init__(self, config: Optional[ServerConfig] = None, **overrides) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServerConfig or keyword overrides, not both")
        self.config = config
        self.pool = ExecutorPool(
            config.shards,
            device=config.device,
            numeric=config.numeric,
            seed=config.seed,
            track_memory=False,
        )
        self.scheduler = ShardScheduler(self.pool, cost_model=config.comm)
        self.cache = OperatorCache(capacity=config.cache_capacity)
        self.telemetry = ServingTelemetry()
        self._batcher = MicroBatcher(max_batch=config.max_batch)
        self._next_id = 0

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
    ) -> int:
        """Enqueue one ``min_x ||b - A x||`` request; returns its request id."""
        request = SolveRequest(
            request_id=self._next_id,
            a=a,
            b=b,
            kind=kind if kind is not None else self.config.kind,
            solver=solver if solver is not None else self.config.solver,
        )
        self._next_id += 1
        self._batcher.add(request)
        return request.request_id

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed."""
        return self._batcher.pending

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
    ) -> SolveResponse:
        """Convenience: submit one request and flush immediately.

        Anything else pending is flushed too (and fused where possible); only
        this request's response is returned.
        """
        request_id = self.submit(a, b, kind=kind, solver=solver)
        responses = self.flush()
        for resp in responses:
            if resp.request_id == request_id:
                return resp
        raise RuntimeError("flush did not produce a response for the request")  # pragma: no cover

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def flush(self) -> List[SolveResponse]:
        """Drain the queue, execute every micro-batch, return all responses.

        Responses come back sorted by request id (submission order).
        """
        responses: List[SolveResponse] = []
        for batch in self._batcher.drain():
            responses.extend(self._execute_batch(batch))
        responses.sort(key=lambda r: r.request_id)
        return responses

    def _resolve_operator(self, kind: str, a: np.ndarray) -> Tuple[CacheEntry, bool]:
        """Find or build the operator for a problem; returns (entry, built).

        One cache lookup is counted per *batch* -- the cache is consulted
        once per fused solve, so the reported hit rate measures genuine
        cross-batch operator reuse, not batch ridership.
        """
        d, n = a.shape
        k = resolve_embedding_dim(kind, d, n)
        key = operator_cache_key(kind, d, n, k, self.config.seed, a.dtype)
        entry = self.cache.get(key)
        if entry is not None:
            return entry, False
        shard = self.scheduler.place()
        operator = build_operator(
            kind, d, n, k=k, executor=self.pool[shard], seed=self.config.seed, dtype=a.dtype
        )
        return self.cache.put(key, CacheEntry(operator=operator, shard=shard)), True

    def _place_warm_batch(self, entry: CacheEntry, kind: str, a: np.ndarray) -> int:
        """Pick the shard for a cache-hit batch, replicating hot operators.

        Affinity alone would serialise all same-shape traffic behind the
        owning shard; when a strictly less-loaded shard has no copy, the
        operator is rebuilt there from its seed (only the cache key crosses
        the network -- the hash-seeded-state property) so hot keys spread
        across the pool.  The rebuild's generation time lands on the new
        shard's clock via its executor.
        """
        loads = self.pool.loads()
        owned = entry.shard_set()
        best_owned = min(owned, key=lambda s: loads[s])
        least = self.pool.least_loaded()
        # A replica is a rebuild from the seed; unseeded operators draw from
        # their executor's stream and are not reproducible, so they stay
        # pinned to their owning shard.
        replicable = self.config.replicate_operators and self.config.seed is not None
        if least not in owned and replicable and loads[least] < loads[best_owned]:
            d, n = a.shape
            replica = build_operator(
                kind,
                d,
                n,
                k=resolve_embedding_dim(kind, d, n),
                executor=self.pool[least],
                seed=self.config.seed,
                dtype=a.dtype,
            )
            entry.add_replica(least, replica)
            # Only the (tiny) cache key travels; 64 bytes covers it.
            self.scheduler.charge_transfer("operator_key", 64.0)
            shard = least
        else:
            shard = best_owned
        self.scheduler.place(preferred=shard)
        return shard

    def _execute_batch(self, batch: MicroBatch) -> List[SolveResponse]:
        """Run one fused micro-batch on its shard and fan out the responses."""
        entry, built = self._resolve_operator(batch.kind, batch.a)
        cache_hit = not built
        if built:
            shard = entry.shard
        else:
            shard = self._place_warm_batch(entry, batch.kind, batch.a)
        operator = entry.operator_for(shard)

        rhs = batch.rhs_block() if batch.size > 1 else batch.requests[0].b
        if batch.solver == "rand_cholqr":
            result = rand_cholqr_lstsq(batch.a, rhs, operator)
        else:
            result = sketch_and_solve(batch.a, rhs, operator)
        compute_seconds = result.total_seconds

        # Cross-shard traffic: the batch's solution block travels back from
        # the shard to the front end.
        n = batch.a.shape[1]
        result_bytes = float(n) * batch.size * batch.a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("result_return", result_bytes)

        latency = compute_seconds + comm_seconds
        self.telemetry.record_batch(batch.size, compute_seconds)
        responses = []
        for j, req in enumerate(batch.requests):
            self.telemetry.record_request(latency)
            responses.append(
                SolveResponse(
                    request_id=req.request_id,
                    x=self._column(result, j, batch.size),
                    relative_residual=self._column_residual(result, j, batch.size),
                    simulated_seconds=latency,
                    compute_seconds=compute_seconds,
                    comm_seconds=comm_seconds,
                    shard=shard,
                    batch_size=batch.size,
                    cache_hit=cache_hit,
                    kind=batch.kind,
                    solver=batch.solver,
                    method=result.method,
                    extra={"failed": float(result.failed)},
                )
            )
        return responses

    @staticmethod
    def _column(result: LeastSquaresResult, j: int, size: int) -> Optional[np.ndarray]:
        if result.x is None:
            return None
        if size == 1:
            return result.x
        return result.x[:, j].copy()

    @staticmethod
    def _column_residual(result: LeastSquaresResult, j: int, size: int) -> float:
        if size == 1 or result.column_residuals is None:
            return result.relative_residual
        return float(result.column_residuals[j])

    # ------------------------------------------------------------------
    def sketch(self, a: np.ndarray, *, kind: Optional[str] = None) -> SketchResponse:
        """Serve a ``sketch(A)`` request: return ``S A`` for the cached operator."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("sketch expects a 2-D matrix")
        kind = normalize_kind(kind if kind is not None else self.config.kind)
        entry, built = self._resolve_operator(kind, a)
        shard = entry.shard if built else self._place_warm_batch(entry, kind, a)
        operator = entry.operator_for(shard)
        ex = self.pool[shard]
        mark = ex.mark()
        sketched = operator.sketch_host(a) if ex.numeric else None
        if not ex.numeric:
            operator.apply(ex.empty(a.shape, label="A_request"))
        compute_seconds = ex.elapsed_since(mark)
        out_bytes = float(operator.k) * a.shape[1] * a.dtype.itemsize
        comm_seconds = self.scheduler.charge_transfer("sketch_return", out_bytes)
        latency = compute_seconds + comm_seconds
        self.telemetry.record_sketch(latency)
        response = SketchResponse(
            request_id=self._next_id,
            sketch=sketched,
            k=operator.k,
            simulated_seconds=latency,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=shard,
            cache_hit=not built,
            kind=kind,
        )
        self._next_id += 1
        return response

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Headline serving statistics as one flat dict.

        ``requests_per_second`` is requests over the pool *makespan* (the
        busiest shard's simulated clock -- shards run concurrently), i.e. the
        sustained compute throughput of the configuration.  Communication
        totals are reported alongside so a deployment can check which
        resource saturates first.
        """
        makespan = self.pool.makespan()
        out = self.telemetry.snapshot(makespan_seconds=makespan)
        out.update({f"cache_{k}": v for k, v in self.cache.stats.as_dict().items()})
        out["comm_seconds"] = self.scheduler.comm_seconds()
        out["comm_bytes"] = self.scheduler.comm_bytes()
        out["shards"] = float(self.pool.size)
        for i, load in enumerate(self.pool.loads()):
            out[f"shard{i}_busy_seconds"] = load
        return out


# ---------------------------------------------------------------------------
# Naive reference loop
# ---------------------------------------------------------------------------
def naive_solve_loop(
    traffic: Iterable[Tuple[np.ndarray, np.ndarray]],
    *,
    kind: str = "multisketch",
    solver: str = "sketch_and_solve",
    seed: int = 0,
    device: DeviceSpec = H100_SXM5,
    numeric: bool = True,
) -> Dict[str, object]:
    """Solve the traffic one request at a time: no batching, no caching.

    Every request builds a fresh sketch operator (paying "Sketch gen"),
    sketches ``A`` from scratch and runs its own QR -- the baseline the
    serving layer's throughput claim is measured against.
    """
    kind = normalize_kind(kind)
    solver = normalize_solver(solver)
    executor = GPUExecutor(device, numeric=numeric, seed=seed, track_memory=False)
    results: List[LeastSquaresResult] = []
    for a, b in traffic:
        a = np.asarray(a)
        operator = build_operator(
            kind, a.shape[0], a.shape[1], executor=executor, seed=seed, dtype=a.dtype
        )
        if solver == "rand_cholqr":
            result = rand_cholqr_lstsq(a, b, operator)
        else:
            result = sketch_and_solve(a, b, operator)
        results.append(result)
    # The loop is sequential on one device: its clock (operator generation
    # included) is the end-to-end simulated time for the whole traffic.
    total = executor.elapsed
    count = len(results)
    return {
        "requests": count,
        "simulated_seconds": total,
        "requests_per_second": count / total if total > 0 else 0.0,
        "results": results,
    }


# ---------------------------------------------------------------------------
# Console entry point (`repro-serve`)
# ---------------------------------------------------------------------------
def main() -> int:
    """Serving demo for the ``repro-serve`` console script.

    Thin wrapper over the harness experiment so the demo, the harness rows
    and the benchmark all share one traffic-synthesis and comparison path.
    """
    from repro.harness.experiments import serving_throughput
    from repro.harness.report import format_table

    rows = serving_throughput(
        d=1 << 14, n=32, n_requests=128, n_matrices=2,
        kinds=("multisketch", "countsketch", "gaussian"),
        shards=2, max_batch=8, seed=7,
    )
    print(format_table(
        rows,
        columns=["kind", "batched_rps", "naive_rps", "speedup", "cache_hit_rate",
                 "mean_batch_size", "p50_us", "p99_us", "worst_relative_residual"],
        title=("repro-serve demo: 128 solve requests over 2 design matrices "
               "(d=2^14, n=32, 2 shards) -- simulated H100 seconds"),
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
