"""Streaming sessions on the :class:`~repro.serving.server.SketchServer`.

Batch requests hand the server a whole problem; a *streaming session* hands
it a stream.  ``open_stream`` pins a :class:`~repro.streaming.solver.StreamingSolver`
to a shard (chosen by the same scheduler that places batches),
``append_rows`` folds arriving batches into the session's window sketch on
that shard's simulated clock, ``query_solution`` serves the lazily re-solved
window solution (planner-routed, fallback chains and all), and
``close_stream`` returns the session's final statistics.

Session state is *session-keyed in the operator cache*: the window sketch
operator is registered under a cache key whose solver field is
``"stream-session:<id>"``, so live sessions are visible in cache stats next
to the batch operators, a session's operator can never be confused with
batch traffic of the same shape, and closing the session removes exactly
its own entry (:meth:`~repro.serving.cache.OperatorCache.discard`).

Per-session telemetry (rows/sec ingest, re-solve counts, staleness at query
time, drift events) lands both on the session's own stats and in the
server-wide :class:`~repro.serving.telemetry.ServingTelemetry` snapshot.

**Durability.**  When the server's config carries a
:class:`~repro.durability.store.DurabilityConfig`, every session is also a
durable object: each appended batch is framed into the session's write-ahead
log *before* it is folded into the window sketch, and every
``checkpoint_interval_batches`` appends the whole engine state is
snapshotted (:func:`~repro.durability.session.serialize_session`) and the
WAL truncated.  :meth:`StreamingSessionManager.restore` rebuilds a session
from its last checkpoint and replays the WAL tail -- sequence numbers make
the replay exactly-once even if the process died between "write checkpoint"
and "truncate WAL".  TTL/eviction policies bound live-session memory:
evicted durable sessions are *passivated* (final checkpoint, cache pin
released) and transparently resurrected on their next append or query;
without durability an evicted session simply behaves as closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.durability.codec import DurabilityError, SchemaError
from repro.durability.session import (
    decode_wal_batch,
    deserialize_session,
    encode_wal_batch,
    serialize_session,
)
from repro.durability.wal import frame, replay_wal
from repro.serving.cache import CacheEntry, operator_cache_key
from repro.streaming.drift import DriftEvent
from repro.streaming.solver import IngestReport, StreamingSolver
from repro.streaming.state import STREAM_CAPACITY

__all__ = [
    "IngestReport",
    "RestoreReport",
    "StreamSession",
    "StreamSolutionResponse",
    "StreamingSessionManager",
    "stream_session_cache_key",
]


def stream_session_cache_key(session_id: int, n: int, k: int, seed: int, dtype=np.float64) -> Tuple:
    """Operator-cache key pinning one session's window sketch.

    Reuses :func:`~repro.serving.cache.operator_cache_key` with the solver
    field carrying the session identity, so session entries live in the same
    LRU as batch operators but can never alias them.
    """
    return operator_cache_key(
        "countsketch",
        STREAM_CAPACITY,
        n,
        k,
        seed,
        dtype,
        solver=f"stream-session:{session_id}",
    )


@dataclass
class StreamSession:
    """One live streaming session: its engine, shard binding and counters.

    ``cache_key`` is ``None`` for sessions whose window summary carries no
    operator state to pin (``mode="fd"``).  ``last_used`` is the session's
    shard clock at its last touch (the TTL policy's input); ``durable_seq``
    numbers the next WAL batch and ``wal_batches`` counts appends since the
    last checkpoint.
    """

    session_id: int
    solver: StreamingSolver
    shard: int
    cache_key: Optional[Tuple]
    queries: int = 0
    last_used: float = 0.0
    wal_batches: int = 0
    durable_seq: int = 0

    def stats(self) -> Dict[str, float]:
        """The session's own telemetry (engine counters plus serving keys)."""
        out = self.solver.stats()
        out["session_id"] = float(self.session_id)
        out["shard"] = float(self.shard)
        out["queries"] = float(self.queries)
        return out


@dataclass
class RestoreReport:
    """Outcome of a :meth:`StreamingSessionManager.restore_all` sweep.

    ``restored`` maps recovered session ids to the number of WAL batches
    replayed on top of their checkpoints; ``failed`` maps unrecoverable ids
    to ``"ErrorType: message"`` strings (typed durability errors -- a corrupt
    checkpoint lands here and the server keeps running, it never serves from
    damaged state).
    """

    restored: Dict[int, int] = field(default_factory=dict)
    failed: Dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every durable session came back."""
        return not self.failed


@dataclass
class StreamSolutionResponse:
    """Answer to one ``query_solution`` request.

    ``staleness_rows`` is how many rows arrived after the solve that
    produced ``x`` (0 right after a re-solve); ``resolved`` says whether
    this query itself triggered the lazy re-solve.  ``attempted`` is the
    planner's executed chain, so drift-triggered fallback behaviour is
    observable per query exactly as in batch serving.
    """

    session_id: int
    x: Optional[np.ndarray]
    relative_residual: float
    planned_solver: str
    executed_solver: str
    attempted: Tuple[str, ...]
    fallbacks: int
    cond_estimate: float
    trigger: str
    window_rows: int
    staleness_rows: int
    resolved: bool
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    extra: Dict[str, object] = field(default_factory=dict)


class StreamingSessionManager:
    """Owns every live :class:`StreamSession` of one server."""

    def __init__(self, server) -> None:
        self._server = server
        self._sessions: Dict[int, StreamSession] = {}
        #: Evicted-but-durable session ids: resurrectable on next touch.
        self._passivated: Set[int] = set()

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def _get(self, session_id: int) -> StreamSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown or closed streaming session {session_id}")
        return session

    @property
    def _durability(self):
        return self._server.config.durability

    @staticmethod
    def _key(session_id: int) -> str:
        return f"session-{session_id}"

    def _touch(self, session: StreamSession) -> None:
        session.last_used = self._server.pool[session.shard].elapsed

    def _resolve(self, session_id: int) -> StreamSession:
        """A live session, resurrecting a passivated one transparently."""
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        if self._durability is not None and session_id in self._passivated:
            session, _replayed = self._restore_one(session_id)
            return session
        raise KeyError(f"unknown or closed streaming session {session_id}")

    # ------------------------------------------------------------------
    def open(
        self,
        n: int,
        *,
        mode: str = "sliding",
        k: Optional[int] = None,
        bucket_rows: int = 1024,
        window_buckets: int = 4,
        decay: float = 0.999,
        policy: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
        detector=True,
        seed: Optional[int] = None,
    ) -> int:
        """Open a session; returns its id (the server's request-id stream)."""
        server = self._server
        config = server.config
        # Admission-side housekeeping: expire idle sessions first, then make
        # room under the max_sessions cap (LRU passivation/eviction) so
        # unbounded session churn can never exhaust memory.
        self.sweep_expired()
        if config.max_sessions is not None:
            while len(self._sessions) >= config.max_sessions:
                lru = min(self._sessions.values(), key=lambda s: s.last_used)
                self.evict(lru.session_id, reason="capacity")
        if policy is None:
            # A fixed-policy server still streams adaptively: streaming
            # exists to re-route when windows drift.
            policy = config.policy if config.policy != "fixed" else "cheapest_accurate"
        shard = server.scheduler.place()
        solver = StreamingSolver(
            n,
            k=k,
            mode=mode,
            bucket_rows=bucket_rows,
            window_buckets=window_buckets,
            decay=decay,
            policy=policy,
            accuracy_target=(
                accuracy_target if accuracy_target is not None else config.accuracy_target
            ),
            latency_budget=(
                latency_budget if latency_budget is not None else config.latency_budget
            ),
            oversampling=config.oversampling,
            seed=seed if seed is not None else config.seed,
            detector=detector,
            executor=server.pool[shard],
        )
        session_id = server._next_id
        server._next_id += 1
        key: Optional[Tuple] = None
        if solver.state.operator is not None:
            # Operator-less window summaries (mode="fd" is deterministic)
            # have no sketch state to pin; everything else lives in the
            # cache under the session key for its lifetime.
            key = stream_session_cache_key(session_id, n + 1, solver.k, solver.seed)
            server.cache.put(key, CacheEntry(operator=solver.state.operator, shard=shard))
        session = StreamSession(session_id=session_id, solver=solver, shard=shard, cache_key=key)
        self._sessions[session_id] = session
        self._touch(session)
        server.telemetry.record_stream_open()
        if self._durability is not None:
            # An immediate baseline checkpoint: the session's *configuration*
            # lives in the snapshot, so WAL-only batches appended before the
            # first interval checkpoint are already recoverable.
            self.checkpoint(session_id)
        return session_id

    # ------------------------------------------------------------------
    def append(
        self, session_id: int, rows: np.ndarray, targets: np.ndarray, *, root=None
    ) -> IngestReport:
        """Fold one arriving batch into the session's window sketch.

        ``root`` is an optional trace root to nest the session spans under
        (the concurrent runtime passes the one opened at admission, with the
        queue context already on it); without one, a standalone
        ``stream_ingest`` trace is started and ended here.  The ingest/
        re-solve intervals are reconstructed from the engine's own
        accounting on the shard clock, so the spans cost nothing on the
        simulated timeline.
        """
        session = self._resolve(session_id)
        server = self._server
        tracer = server.tracer
        own_root = root is None and tracer.enabled
        durability = self._durability
        if durability is not None:
            # Write-ahead: the batch is validated, framed, and durable
            # *before* it is folded, so a crash at any later point can only
            # lose work the caller was never told succeeded.
            rows_arr = np.atleast_2d(np.asarray(rows, dtype=np.float64))
            targets_arr = np.asarray(targets, dtype=np.float64).ravel()
            if rows_arr.shape[1] != session.solver.n:
                raise ValueError(
                    f"expected rows with {session.solver.n} columns, got {rows_arr.shape}"
                )
            if targets_arr.shape[0] != rows_arr.shape[0]:
                raise ValueError("need one target per row")
            if rows_arr.shape[0] > 0:
                payload = encode_wal_batch(session.durable_seq, rows_arr, targets_arr)
                durability.store.append_wal(self._key(session_id), frame(payload))
                session.durable_seq += 1
                session.wal_batches += 1
                server.telemetry.record_wal_append(len(payload))
        report = session.solver.ingest(rows, targets)
        self._refresh_cache_entry(session)
        self._touch(session)
        if durability is not None and session.wal_batches >= durability.checkpoint_interval_batches:
            self.checkpoint(session_id)
        telemetry = server.telemetry
        telemetry.record_stream_ingest(report.rows, report.simulated_seconds)
        if report.drift is not None:
            telemetry.record_stream_drift()
        if report.resolved:
            telemetry.record_stream_resolve(seconds=report.resolve_seconds)
        if tracer.enabled:
            # Reconstruct the interval from the shard clock: the engine
            # charged ingest (fold) first, then any eager re-solve.
            end = server.pool[session.shard].elapsed
            resolve_s = float(report.resolve_seconds) if report.resolved else 0.0
            ingest_end = end - resolve_s
            start = ingest_end - float(report.simulated_seconds)
            if own_root:
                root = tracer.start_trace(
                    "stream_ingest", start, session_id=session_id, lane="stream"
                )
            ingest_span = tracer.start_span(
                "ingest", root, start, rows=int(report.rows), shard=session.shard
            )
            if report.drift is not None:
                tracer.event(
                    "drift", ingest_span, ingest_end, kind=report.drift.kind,
                )
            ingest_span.finish(ingest_end, batch_residual=report.batch_residual)
            if report.resolved:
                tracer.start_span("resolve", root, ingest_end).finish(
                    end, trigger="ingest"
                )
            if own_root:
                tracer.end_trace(root, end)
        return report

    def _refresh_cache_entry(self, session: StreamSession) -> None:
        """Keep the session's cache entry warm and pointing at a live sketch.

        Two things can go stale between ingests: LRU pressure from batch
        traffic can evict the session key (it is never ``get()``'d on the
        request path), and a sliding ring's rotation or a drift reset can
        retire the sketch object the entry was built from.  Every ingest
        therefore re-pins the key and re-points the entry at the state's
        current live sketch (same hashed identity, so the entry's
        ``state_key`` contract is untouched).
        """
        if session.cache_key is None:
            return  # operator-less summary (fd mode): nothing pinned
        cache = self._server.cache
        entry = cache.peek(session.cache_key)
        if entry is None:
            cache.put(
                session.cache_key,
                CacheEntry(operator=session.solver.state.operator, shard=session.shard),
            )
            return
        entry.operator = session.solver.state.operator
        cache.touch(session.cache_key)

    # ------------------------------------------------------------------
    def query(self, session_id: int, *, root=None) -> StreamSolutionResponse:
        """Serve the session's current solution (lazy re-solve if stale).

        ``root`` as in :meth:`append`: a runtime-provided trace root, or
        ``None`` to start a standalone ``stream_query`` trace here.
        """
        session = self._resolve(session_id)
        server = self._server
        solver = session.solver
        tracer = server.tracer
        own_root = root is None and tracer.enabled
        self._touch(session)
        resolves_before = solver.resolve_count
        solution = solver.solution()
        resolved = solver.resolve_count > resolves_before
        compute_seconds = solution.simulated_seconds if resolved else 0.0
        if resolved:
            server.telemetry.record_stream_resolve(seconds=compute_seconds)
        # The solution vector travels back from the shard to the front end.
        x_bytes = float(solver.n) * np.dtype(np.float64).itemsize
        comm_seconds = server.scheduler.charge_transfer("stream_solution", x_bytes)
        session.queries += 1
        server.telemetry.record_stream_query(solution.staleness_rows)
        if tracer.enabled:
            end = server.pool[session.shard].elapsed
            start = end - compute_seconds
            if own_root:
                root = tracer.start_trace(
                    "stream_query", start, session_id=session_id, lane="stream"
                )
            if resolved:
                tracer.start_span(
                    "resolve", root, start, solver=solution.executed_solver
                ).finish(end, trigger=solution.trigger)
            tracer.event(
                "query", root, end,
                staleness_rows=int(solution.staleness_rows), resolved=resolved,
            )
            tracer.start_span("respond", root, end).finish(
                end + comm_seconds, comm_seconds=comm_seconds
            )
            if own_root:
                tracer.end_trace(root, end + comm_seconds)
        return StreamSolutionResponse(
            session_id=session_id,
            x=solution.x,
            relative_residual=solution.relative_residual,
            planned_solver=solution.planned_solver,
            executed_solver=solution.executed_solver,
            attempted=solution.attempted,
            fallbacks=solution.fallbacks,
            cond_estimate=solution.cond_estimate,
            trigger=solution.trigger,
            window_rows=solution.window_rows,
            staleness_rows=solution.staleness_rows,
            resolved=resolved,
            simulated_seconds=compute_seconds + comm_seconds,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=session.shard,
            extra={
                "failed": float(solution.failed),
                "attempted": "->".join(solution.attempted),
                "policy": solution.policy,
            },
        )

    # ------------------------------------------------------------------
    def close(self, session_id: int) -> Dict[str, float]:
        """Close a session, unpin its cache entry, return its final stats.

        Closing is deliberate: the session's durable state (checkpoint +
        WAL) is deleted too -- unlike eviction, there is nothing to come
        back to.
        """
        session = self._sessions.pop(session_id, None)
        if session is None:
            if self._durability is not None and session_id in self._passivated:
                # Resurrect just long enough to report final stats cleanly.
                session, _ = self._restore_one(session_id)
                self._sessions.pop(session_id, None)
            else:
                raise KeyError(f"unknown or closed streaming session {session_id}")
        stats = session.stats()
        if session.cache_key is not None:
            self._server.cache.discard(session.cache_key)
        if self._durability is not None:
            self._durability.store.delete(self._key(session_id))
            self._passivated.discard(session_id)
            self._server.telemetry.set_passivated_sessions(len(self._passivated))
        self._server.telemetry.record_stream_close()
        return stats

    # ------------------------------------------------------------------
    # durability: checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, session_id: int) -> int:
        """Snapshot one live session and truncate its WAL; returns blob size.

        The snapshot records ``durable_seq``, so WAL entries written before
        it (``seq < durable_seq``) are skipped at replay even when the
        process dies between writing the checkpoint and truncating the log.
        """
        if self._durability is None:
            raise RuntimeError("server has no durability config; nothing to checkpoint to")
        session = self._get(session_id)
        blob = serialize_session(
            session.solver,
            {
                "session_id": session.session_id,
                "durable_seq": session.durable_seq,
                "queries": session.queries,
            },
        )
        store = self._durability.store
        key = self._key(session_id)
        store.write_checkpoint(key, blob)
        store.reset_wal(key)
        session.wal_batches = 0
        self._server.telemetry.record_checkpoint(len(blob))
        return len(blob)

    def save(self) -> Dict[int, int]:
        """Checkpoint every live session; maps session id -> snapshot bytes."""
        return {sid: self.checkpoint(sid) for sid in sorted(self._sessions)}

    def _restore_one(self, session_id: int) -> Tuple[StreamSession, int]:
        """Rebuild one session from checkpoint + WAL tail; returns replay count."""
        durability = self._durability
        if durability is None:
            raise RuntimeError("server has no durability config; nothing to restore from")
        server = self._server
        store = durability.store
        key = self._key(session_id)
        blob = store.read_checkpoint(key)
        if blob is None:
            raise KeyError(f"no checkpoint stored for streaming session {session_id}")
        shard = server.scheduler.place()
        try:
            solver, session_meta = deserialize_session(blob, executor=server.pool[shard])
        except DurabilityError:
            server.telemetry.record_corrupt_checkpoint()
            raise
        try:
            base_seq = int(session_meta["durable_seq"])
        except (KeyError, TypeError, ValueError) as exc:
            server.telemetry.record_corrupt_checkpoint()
            raise SchemaError("session checkpoint is missing its durable_seq") from exc

        replay = replay_wal(store.read_wal(key))
        if not replay.clean:
            # A torn or corrupt tail is the expected shape of a crash: note
            # it, replay the valid prefix, and move on.
            server.telemetry.record_wal_truncation()
        replayed = 0
        next_seq = base_seq
        for payload in replay.payloads:
            try:
                seq, rows, targets = decode_wal_batch(payload)
            except DurabilityError:
                server.telemetry.record_wal_truncation()
                break
            if seq < base_seq:
                continue  # already inside the checkpoint: exactly-once replay
            solver.ingest(rows, targets)
            replayed += 1
            next_seq = seq + 1

        cache_key: Optional[Tuple] = None
        if solver.state.operator is not None:
            cache_key = stream_session_cache_key(session_id, solver.n + 1, solver.k, solver.seed)
            server.cache.put(cache_key, CacheEntry(operator=solver.state.operator, shard=shard))
        session = StreamSession(
            session_id=session_id,
            solver=solver,
            shard=shard,
            cache_key=cache_key,
            queries=int(session_meta.get("queries", 0)),
            durable_seq=next_seq,
        )
        self._sessions[session_id] = session
        self._touch(session)
        self._passivated.discard(session_id)
        server.telemetry.set_passivated_sessions(len(self._passivated))
        server._next_id = max(server._next_id, session_id + 1)
        server.telemetry.record_restore(replayed)
        # Re-checkpoint immediately: the restored state becomes the new
        # baseline and any torn tail is cleared from the store.
        self.checkpoint(session_id)
        return session, replayed

    def restore(self, session_id: int) -> StreamSession:
        """Restore one session from its durable state (checkpoint + WAL)."""
        if session_id in self._sessions:
            return self._sessions[session_id]
        session, _replayed = self._restore_one(session_id)
        return session

    def restore_all(self) -> RestoreReport:
        """Restore every durable session the store knows; never raises.

        Unrecoverable sessions (corrupt checkpoint, foreign record) land in
        ``RestoreReport.failed`` with their typed error -- the fallback is a
        running server without that session, not a wrong answer.
        """
        if self._durability is None:
            raise RuntimeError("server has no durability config; nothing to restore from")
        report = RestoreReport()
        prefix = "session-"
        for key in self._durability.store.keys():
            if not key.startswith(prefix):
                continue
            try:
                session_id = int(key[len(prefix):])
            except ValueError:
                continue
            if session_id in self._sessions:
                continue
            try:
                _session, replayed = self._restore_one(session_id)
            except DurabilityError as exc:
                report.failed[session_id] = f"{type(exc).__name__}: {exc}"
            except KeyError as exc:
                report.failed[session_id] = f"KeyError: {exc}"
            else:
                report.restored[session_id] = replayed
        return report

    # ------------------------------------------------------------------
    # durability: TTL / eviction
    # ------------------------------------------------------------------
    def evict(self, session_id: int, *, reason: str = "manual") -> None:
        """Evict a live session, releasing its memory and cache pin.

        With durability the session is *passivated* -- final checkpoint,
        then resurrect-on-touch; without it the eviction is terminal and a
        later touch raises ``KeyError`` exactly like a closed session.
        """
        session = self._get(session_id)
        if self._durability is not None:
            self.checkpoint(session_id)
            self._passivated.add(session_id)
        self._sessions.pop(session_id, None)
        if session.cache_key is not None:
            self._server.cache.discard(session.cache_key)
        telemetry = self._server.telemetry
        telemetry.record_session_evicted(reason)
        telemetry.set_passivated_sessions(len(self._passivated))

    def sweep_expired(self) -> int:
        """Evict every session idle past the server's TTL; returns the count.

        Idleness is measured on the session's own shard clock (the simulated
        timeline all serving latencies live on), from its last open, append
        or query.
        """
        ttl = self._server.config.session_ttl_seconds
        if ttl is None:
            return 0
        expired = [
            s.session_id
            for s in self._sessions.values()
            if self._server.pool[s.shard].elapsed - s.last_used > ttl
        ]
        for session_id in expired:
            self.evict(session_id, reason="ttl")
        return len(expired)

    @property
    def passivated(self) -> Tuple[int, ...]:
        """Ids of evicted-but-durable sessions (resurrectable on touch)."""
        return tuple(sorted(self._passivated))

    # ------------------------------------------------------------------
    def session(self, session_id: int) -> StreamSession:
        """The live session object (for tests and introspection)."""
        return self._get(session_id)
