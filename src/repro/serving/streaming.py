"""Streaming sessions on the :class:`~repro.serving.server.SketchServer`.

Batch requests hand the server a whole problem; a *streaming session* hands
it a stream.  ``open_stream`` pins a :class:`~repro.streaming.solver.StreamingSolver`
to a shard (chosen by the same scheduler that places batches),
``append_rows`` folds arriving batches into the session's window sketch on
that shard's simulated clock, ``query_solution`` serves the lazily re-solved
window solution (planner-routed, fallback chains and all), and
``close_stream`` returns the session's final statistics.

Session state is *session-keyed in the operator cache*: the window sketch
operator is registered under a cache key whose solver field is
``"stream-session:<id>"``, so live sessions are visible in cache stats next
to the batch operators, a session's operator can never be confused with
batch traffic of the same shape, and closing the session removes exactly
its own entry (:meth:`~repro.serving.cache.OperatorCache.discard`).

Per-session telemetry (rows/sec ingest, re-solve counts, staleness at query
time, drift events) lands both on the session's own stats and in the
server-wide :class:`~repro.serving.telemetry.ServingTelemetry` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.serving.cache import CacheEntry, operator_cache_key
from repro.streaming.drift import DriftEvent
from repro.streaming.solver import IngestReport, StreamingSolver
from repro.streaming.state import STREAM_CAPACITY

__all__ = [
    "IngestReport",
    "StreamSession",
    "StreamSolutionResponse",
    "StreamingSessionManager",
    "stream_session_cache_key",
]


def stream_session_cache_key(session_id: int, n: int, k: int, seed: int, dtype=np.float64) -> Tuple:
    """Operator-cache key pinning one session's window sketch.

    Reuses :func:`~repro.serving.cache.operator_cache_key` with the solver
    field carrying the session identity, so session entries live in the same
    LRU as batch operators but can never alias them.
    """
    return operator_cache_key(
        "countsketch",
        STREAM_CAPACITY,
        n,
        k,
        seed,
        dtype,
        solver=f"stream-session:{session_id}",
    )


@dataclass
class StreamSession:
    """One live streaming session: its engine, shard binding and counters.

    ``cache_key`` is ``None`` for sessions whose window summary carries no
    operator state to pin (``mode="fd"``).
    """

    session_id: int
    solver: StreamingSolver
    shard: int
    cache_key: Optional[Tuple]
    queries: int = 0

    def stats(self) -> Dict[str, float]:
        """The session's own telemetry (engine counters plus serving keys)."""
        out = self.solver.stats()
        out["session_id"] = float(self.session_id)
        out["shard"] = float(self.shard)
        out["queries"] = float(self.queries)
        return out


@dataclass
class StreamSolutionResponse:
    """Answer to one ``query_solution`` request.

    ``staleness_rows`` is how many rows arrived after the solve that
    produced ``x`` (0 right after a re-solve); ``resolved`` says whether
    this query itself triggered the lazy re-solve.  ``attempted`` is the
    planner's executed chain, so drift-triggered fallback behaviour is
    observable per query exactly as in batch serving.
    """

    session_id: int
    x: Optional[np.ndarray]
    relative_residual: float
    planned_solver: str
    executed_solver: str
    attempted: Tuple[str, ...]
    fallbacks: int
    cond_estimate: float
    trigger: str
    window_rows: int
    staleness_rows: int
    resolved: bool
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    extra: Dict[str, object] = field(default_factory=dict)


class StreamingSessionManager:
    """Owns every live :class:`StreamSession` of one server."""

    def __init__(self, server) -> None:
        self._server = server
        self._sessions: Dict[int, StreamSession] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def _get(self, session_id: int) -> StreamSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown or closed streaming session {session_id}")
        return session

    # ------------------------------------------------------------------
    def open(
        self,
        n: int,
        *,
        mode: str = "sliding",
        k: Optional[int] = None,
        bucket_rows: int = 1024,
        window_buckets: int = 4,
        decay: float = 0.999,
        policy: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
        detector=True,
        seed: Optional[int] = None,
    ) -> int:
        """Open a session; returns its id (the server's request-id stream)."""
        server = self._server
        config = server.config
        if policy is None:
            # A fixed-policy server still streams adaptively: streaming
            # exists to re-route when windows drift.
            policy = config.policy if config.policy != "fixed" else "cheapest_accurate"
        shard = server.scheduler.place()
        solver = StreamingSolver(
            n,
            k=k,
            mode=mode,
            bucket_rows=bucket_rows,
            window_buckets=window_buckets,
            decay=decay,
            policy=policy,
            accuracy_target=(
                accuracy_target if accuracy_target is not None else config.accuracy_target
            ),
            latency_budget=(
                latency_budget if latency_budget is not None else config.latency_budget
            ),
            oversampling=config.oversampling,
            seed=seed if seed is not None else config.seed,
            detector=detector,
            executor=server.pool[shard],
        )
        session_id = server._next_id
        server._next_id += 1
        key: Optional[Tuple] = None
        if solver.state.operator is not None:
            # Operator-less window summaries (mode="fd" is deterministic)
            # have no sketch state to pin; everything else lives in the
            # cache under the session key for its lifetime.
            key = stream_session_cache_key(session_id, n + 1, solver.k, solver.seed)
            server.cache.put(key, CacheEntry(operator=solver.state.operator, shard=shard))
        session = StreamSession(session_id=session_id, solver=solver, shard=shard, cache_key=key)
        self._sessions[session_id] = session
        server.telemetry.record_stream_open()
        return session_id

    # ------------------------------------------------------------------
    def append(
        self, session_id: int, rows: np.ndarray, targets: np.ndarray, *, root=None
    ) -> IngestReport:
        """Fold one arriving batch into the session's window sketch.

        ``root`` is an optional trace root to nest the session spans under
        (the concurrent runtime passes the one opened at admission, with the
        queue context already on it); without one, a standalone
        ``stream_ingest`` trace is started and ended here.  The ingest/
        re-solve intervals are reconstructed from the engine's own
        accounting on the shard clock, so the spans cost nothing on the
        simulated timeline.
        """
        session = self._get(session_id)
        server = self._server
        tracer = server.tracer
        own_root = root is None and tracer.enabled
        report = session.solver.ingest(rows, targets)
        self._refresh_cache_entry(session)
        telemetry = server.telemetry
        telemetry.record_stream_ingest(report.rows, report.simulated_seconds)
        if report.drift is not None:
            telemetry.record_stream_drift()
        if report.resolved:
            telemetry.record_stream_resolve(seconds=report.resolve_seconds)
        if tracer.enabled:
            # Reconstruct the interval from the shard clock: the engine
            # charged ingest (fold) first, then any eager re-solve.
            end = server.pool[session.shard].elapsed
            resolve_s = float(report.resolve_seconds) if report.resolved else 0.0
            ingest_end = end - resolve_s
            start = ingest_end - float(report.simulated_seconds)
            if own_root:
                root = tracer.start_trace(
                    "stream_ingest", start, session_id=session_id, lane="stream"
                )
            ingest_span = tracer.start_span(
                "ingest", root, start, rows=int(report.rows), shard=session.shard
            )
            if report.drift is not None:
                tracer.event(
                    "drift", ingest_span, ingest_end, kind=report.drift.kind,
                )
            ingest_span.finish(ingest_end, batch_residual=report.batch_residual)
            if report.resolved:
                tracer.start_span("resolve", root, ingest_end).finish(
                    end, trigger="ingest"
                )
            if own_root:
                tracer.end_trace(root, end)
        return report

    def _refresh_cache_entry(self, session: StreamSession) -> None:
        """Keep the session's cache entry warm and pointing at a live sketch.

        Two things can go stale between ingests: LRU pressure from batch
        traffic can evict the session key (it is never ``get()``'d on the
        request path), and a sliding ring's rotation or a drift reset can
        retire the sketch object the entry was built from.  Every ingest
        therefore re-pins the key and re-points the entry at the state's
        current live sketch (same hashed identity, so the entry's
        ``state_key`` contract is untouched).
        """
        if session.cache_key is None:
            return  # operator-less summary (fd mode): nothing pinned
        cache = self._server.cache
        entry = cache.peek(session.cache_key)
        if entry is None:
            cache.put(
                session.cache_key,
                CacheEntry(operator=session.solver.state.operator, shard=session.shard),
            )
            return
        entry.operator = session.solver.state.operator
        cache.touch(session.cache_key)

    # ------------------------------------------------------------------
    def query(self, session_id: int, *, root=None) -> StreamSolutionResponse:
        """Serve the session's current solution (lazy re-solve if stale).

        ``root`` as in :meth:`append`: a runtime-provided trace root, or
        ``None`` to start a standalone ``stream_query`` trace here.
        """
        session = self._get(session_id)
        server = self._server
        solver = session.solver
        tracer = server.tracer
        own_root = root is None and tracer.enabled
        resolves_before = solver.resolve_count
        solution = solver.solution()
        resolved = solver.resolve_count > resolves_before
        compute_seconds = solution.simulated_seconds if resolved else 0.0
        if resolved:
            server.telemetry.record_stream_resolve(seconds=compute_seconds)
        # The solution vector travels back from the shard to the front end.
        x_bytes = float(solver.n) * np.dtype(np.float64).itemsize
        comm_seconds = server.scheduler.charge_transfer("stream_solution", x_bytes)
        session.queries += 1
        server.telemetry.record_stream_query(solution.staleness_rows)
        if tracer.enabled:
            end = server.pool[session.shard].elapsed
            start = end - compute_seconds
            if own_root:
                root = tracer.start_trace(
                    "stream_query", start, session_id=session_id, lane="stream"
                )
            if resolved:
                tracer.start_span(
                    "resolve", root, start, solver=solution.executed_solver
                ).finish(end, trigger=solution.trigger)
            tracer.event(
                "query", root, end,
                staleness_rows=int(solution.staleness_rows), resolved=resolved,
            )
            tracer.start_span("respond", root, end).finish(
                end + comm_seconds, comm_seconds=comm_seconds
            )
            if own_root:
                tracer.end_trace(root, end + comm_seconds)
        return StreamSolutionResponse(
            session_id=session_id,
            x=solution.x,
            relative_residual=solution.relative_residual,
            planned_solver=solution.planned_solver,
            executed_solver=solution.executed_solver,
            attempted=solution.attempted,
            fallbacks=solution.fallbacks,
            cond_estimate=solution.cond_estimate,
            trigger=solution.trigger,
            window_rows=solution.window_rows,
            staleness_rows=solution.staleness_rows,
            resolved=resolved,
            simulated_seconds=compute_seconds + comm_seconds,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=session.shard,
            extra={
                "failed": float(solution.failed),
                "attempted": "->".join(solution.attempted),
                "policy": solution.policy,
            },
        )

    # ------------------------------------------------------------------
    def close(self, session_id: int) -> Dict[str, float]:
        """Close a session, unpin its cache entry, return its final stats."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            raise KeyError(f"unknown or closed streaming session {session_id}")
        stats = session.stats()
        if session.cache_key is not None:
            self._server.cache.discard(session.cache_key)
        self._server.telemetry.record_stream_close()
        return stats

    # ------------------------------------------------------------------
    def session(self, session_id: int) -> StreamSession:
        """The live session object (for tests and introspection)."""
        return self._get(session_id)
