"""LRU cache of sketch operators, keyed on the parameters that define them.

The CSVec lineage of the CountSketch (hash-seeded row maps and signs) means a
sketch operator's entire random state is a pure function of
``(kind, d, n, k, seed, dtype)`` -- see
:meth:`repro.core.base.SketchOperator.cache_key`.  A serving layer should
therefore never regenerate an operator for a shape it has already seen: the
planning work (CSR assembly for the SpMM CountSketch, the dense second-stage
Gaussian of the multisketch, SRHT sign/sample vectors) is paid once and
reused across every request that shares the key.

The cache also remembers *where* each operator lives: operators are bound to
the shard executor they were generated on, so the scheduler routes batches to
the owning shard (cache-affinity scheduling) instead of rebuilding state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.base import SketchOperator
from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.gpu.executor import GPUExecutor
from repro.linalg.registry import resolve_embedding_dim as _registry_embedding_dim
from repro.serving.requests import normalize_kind


def resolve_embedding_dim(kind: str, d: int, n: int, oversampling: float = 2.0) -> int:
    """Embedding dimension the server uses for a ``d x n`` problem.

    Follows the paper's Section 6.2 defaults (``c n`` for Gaussian / SRHT /
    multisketch, ``c n^2`` clipped to ``d`` for the CountSketch) with the
    constant ``c`` configurable end-to-end: a
    :class:`~repro.serving.server.ServerConfig` forwards its ``oversampling``
    here, and this delegates to the registry's single resolution point
    (:func:`repro.linalg.registry.resolve_embedding_dim`).
    """
    return _registry_embedding_dim(normalize_kind(kind), d, n, oversampling)


def operator_cache_key(
    kind: str,
    d: int,
    n: int,
    k: int,
    seed: Optional[int],
    dtype=np.float64,
    solver: str = "",
    problem: str = "",
) -> Tuple:
    """The serving cache key: ``(kind, d, n, k, seed, dtype, solver, problem)``.

    Two operators built from equal keys produce bit-identical sketches, so a
    cached operator can stand in for a freshly built one on any request.
    ``solver`` is the *planned solver family* the operator serves: distinct
    families keep distinct entries (and therefore distinct shard bindings),
    so e.g. a hot sketch-and-solve operator and the rand_cholQR
    preconditioner for the same shape scale independently across the pool.
    ``problem`` extends the key by problem class (``""`` for plain least
    squares, ``"ridge"`` / ``"lowrank"`` for the
    :mod:`repro.problems` endpoints): ridge operators embed the
    *augmented* ``(d + n)``-row system and range-finder operators are
    ``n``-input Gaussian test matrices, so the extra field keeps them from
    ever aliasing a least-squares operator of coincidentally equal shape.
    """
    return (
        normalize_kind(kind),
        int(d),
        int(n),
        int(k),
        seed,
        np.dtype(dtype).str,
        solver,
        problem,
    )


def build_operator(
    kind: str,
    d: int,
    n: int,
    *,
    executor: GPUExecutor,
    seed: Optional[int] = 0,
    k: Optional[int] = None,
    dtype=np.float64,
    oversampling: float = 2.0,
) -> SketchOperator:
    """Construct (and eagerly generate) the operator a cache key describes."""
    kind = normalize_kind(kind)
    if k is None:
        k = resolve_embedding_dim(kind, d, n, oversampling)
    if kind == "gaussian":
        op: SketchOperator = GaussianSketch(d, k, executor=executor, seed=seed, dtype=dtype)
    elif kind == "countsketch":
        op = CountSketch(d, k, executor=executor, seed=seed, dtype=dtype)
    elif kind == "srht":
        op = SRHT(d, k, executor=executor, seed=seed, dtype=dtype)
    else:  # multisketch
        op = count_gauss(d, n, k2=k, executor=executor, seed=seed, dtype=dtype)
    # Generate immediately so the one-off "Sketch gen" cost lands on the
    # build (cache miss), not on the first request that uses the operator.
    op.generate()
    return op


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for the operator cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found a cached operator (0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CacheEntry:
    """A cached operator, the shard it is bound to, and its replicas.

    ``state_key`` is the operator's own identity
    (:meth:`~repro.core.base.SketchOperator.cache_key`), recorded at build
    time; two entries with equal state keys hold interchangeable operators
    regardless of which serving key produced them.

    ``replicas`` maps additional shard indices to same-state operators the
    scheduler rebuilt there to spread a hot key across the pool (sketch
    state is a pure function of the key, so a replica is a local rebuild
    from the seed, not a state transfer).
    """

    operator: SketchOperator
    shard: int
    uses: int = 0
    state_key: Tuple = ()
    replicas: Dict[int, SketchOperator] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.state_key:
            self.state_key = self.operator.cache_key()

    def shard_set(self) -> Tuple[int, ...]:
        """Every shard holding a copy of this operator (primary first)."""
        return (self.shard,) + tuple(self.replicas)

    def operator_for(self, shard: int) -> SketchOperator:
        """The copy bound to ``shard`` (primary or replica)."""
        if shard == self.shard:
            return self.operator
        return self.replicas[shard]

    def add_replica(self, shard: int, operator: SketchOperator) -> None:
        """Register a same-state copy living on another shard."""
        if operator.cache_key() != self.state_key:
            raise ValueError("replica state does not match the cached operator")
        self.replicas[shard] = operator


class OperatorCache:
    """Bounded LRU cache mapping :func:`operator_cache_key` to operators.

    Parameters
    ----------
    capacity:
        Maximum number of live operators.  The oldest (least recently used)
        entry is evicted when a new one would exceed the bound; eviction
        only drops the handle -- a future request with the same key simply
        rebuilds the state from the seed, which is cheap for the hash-seeded
        families.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        #: Optional ``callable(event, key)`` observability hook, fired (under
        #: the cache lock) with ``"hit"``/``"miss"`` on lookups and
        #: ``"store"``/``"evict"`` on insertion -- the server points this at
        #: its metrics registry so cache behaviour is scrapeable per event.
        #: The listener must not call back into the cache.
        self.listener = None
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        # One lock covers lookup, insertion and eviction: the eviction loop
        # in put() reads len() and pops in separate bytecodes, so two
        # unlocked concurrent puts could both evict for the same slot (lost
        # entries, double-counted evictions) and a get() racing a
        # move_to_end() could corrupt the OrderedDict's internal list.  The
        # runtime's worker threads all funnel through here.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        """Cache keys from least to most recently used."""
        with self._lock:
            return list(self._entries.keys())

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[CacheEntry]:
        """Look up an operator; counts a hit or a miss and refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._notify("miss", key)
                return None
            self.stats.hits += 1
            entry.uses += 1
            self._entries.move_to_end(key)
            self._notify("hit", key)
            return entry

    def _notify(self, event: str, key: Tuple) -> None:
        if self.listener is not None:
            self.listener(event, key)

    def peek(self, key: Tuple) -> Optional[CacheEntry]:
        """Look up without touching the stats or the LRU order (for tests)."""
        with self._lock:
            return self._entries.get(key)

    def touch(self, key: Tuple) -> bool:
        """Refresh an entry's LRU position without counting a hit or miss.

        The streaming layer calls this on every session ingest: a live
        session's operator stays warm for as long as rows keep arriving,
        without its keep-alives distorting the request-path hit rate.
        Returns whether the entry was present.
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._entries.move_to_end(key)
            return True

    def put(self, key: Tuple, entry: CacheEntry) -> CacheEntry:
        """Insert an entry, evicting the least recently used one if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = entry
                return entry
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._notify("evict", key)
            self._entries[key] = entry
            self._notify("store", key)
            return entry

    def discard(self, key: Tuple) -> bool:
        """Drop one entry without touching the stats; returns whether it existed.

        Used by the streaming layer when a session closes: session-keyed
        operators are pinned for the session's lifetime only and must not
        linger as dead LRU weight afterwards.
        """
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every cached operator (stats are kept)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OperatorCache(size={len(self)}/{self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )
