"""Request and response types for the sketch-and-solve serving layer.

A request is a host-side problem (NumPy arrays) plus routing metadata; a
response carries the solution, accuracy and accounting for exactly one
request, even when the server fused many requests into one device batch.
Everything here is a plain dataclass so responses can be logged, asserted on
in tests, and rendered by the harness without touching device state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.linalg.planner import normalize_policy
from repro.linalg.registry import canonical_solver_name

__all__ = [
    "AdmissionError",
    "DeadlineExceededError",
    "LANES",
    "LowRankResponse",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "QueueFullError",
    "SketchResponse",
    "SolveRequest",
    "SolveResponse",
    "normalize_kind",
    "normalize_lane",
    "normalize_policy",
    "normalize_solver",
]

#: Admission-queue lanes, one per problem class the runtime serves.  Order
#: is the *priority* order the dispatcher walks when weights tie: interactive
#: least-squares traffic first, ridge next, streaming ingest last (ingest is
#: throughput work -- it must not starve solve traffic, and the weighted
#: dispatch guarantees it cannot be starved either).
LANES = ("solve", "ridge", "stream")

#: Request priorities within a lane (smaller dispatches first).
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


def normalize_lane(lane: str) -> str:
    """Canonical admission-lane name (``"solve"``, ``"ridge"`` or ``"stream"``)."""
    l = lane.lower()
    if l in ("solve", "lstsq", "least_squares", "interactive"):
        return "solve"
    if l in ("ridge", "regularized"):
        return "ridge"
    if l in ("stream", "streaming", "ingest"):
        return "stream"
    raise ValueError(f"unknown admission lane '{lane}' (expected one of {LANES})")


class AdmissionError(RuntimeError):
    """A request the runtime refused to solve, with the reason typed.

    Attributes
    ----------
    lane:
        Admission lane the request was bound for.
    request_id:
        Server request id when one was assigned (-1 before admission).
    """

    reason = "admission"

    def __init__(self, message: str, *, lane: str = "solve", request_id: int = -1) -> None:
        super().__init__(message)
        self.lane = lane
        self.request_id = request_id


class QueueFullError(AdmissionError):
    """Raised at submit time when the bounded admission queue is full.

    Backpressure, not failure: the caller may retry after in-flight work
    drains.  ``queue_depth`` records the depth observed at rejection.
    """

    reason = "queue_full"

    def __init__(self, message: str, *, lane: str = "solve", queue_depth: int = 0) -> None:
        super().__init__(message, lane=lane)
        self.queue_depth = queue_depth


class DeadlineExceededError(AdmissionError):
    """Raised on a future whose request was shed instead of solved late.

    The dispatcher sheds a request when its projected completion (queue wait
    already accrued plus the planned solver's estimated service time) can no
    longer meet its ``latency_budget`` -- the contract is "reject, don't
    violate".  ``projected_seconds`` / ``budget_seconds`` record the decision.
    """

    reason = "deadline"

    def __init__(
        self,
        message: str,
        *,
        lane: str = "solve",
        request_id: int = -1,
        projected_seconds: float = 0.0,
        budget_seconds: float = 0.0,
    ) -> None:
        super().__init__(message, lane=lane, request_id=request_id)
        self.projected_seconds = projected_seconds
        self.budget_seconds = budget_seconds


def normalize_kind(kind: str) -> str:
    """Canonical sketch-family name used in cache keys and reports."""
    k = kind.lower()
    if k in ("gaussian", "gauss"):
        return "gaussian"
    if k in ("countsketch", "count", "sparse"):
        return "countsketch"
    if k in ("srht",):
        return "srht"
    if k in ("multisketch", "multi", "count_gauss"):
        return "multisketch"
    raise ValueError(f"unknown sketch kind '{kind}'")


def normalize_solver(solver: str) -> str:
    """Canonical registry name of a solver.

    Every solver registered in :mod:`repro.linalg.registry` is servable:
    ``normal_equations``, ``sketch_and_solve``, ``qr``, ``rand_cholqr`` and
    ``sketch_precond_lsqr`` (plus their accepted spellings).
    """
    return canonical_solver_name(solver)


@dataclass
class SolveRequest:
    """One least-squares request ``min_x ||b - A x||`` awaiting service.

    Attributes
    ----------
    request_id:
        Server-assigned monotonically increasing id.
    a / b:
        Host arrays: ``A`` is ``d x n`` (tall), ``b`` is a length-``d`` vector.
    kind:
        Sketch family to solve with (canonical name).
    solver:
        Registered solver name (see :mod:`repro.linalg.registry`).  Under a
        ``"fixed"`` server policy this is the solver that runs; under the
        adaptive policies it is advisory and the planner routes.
    accuracy_target:
        Worst acceptable relative residual for this request (``None`` means
        the server's configured default).  Feeds the planner's admissibility
        check.
    latency_budget:
        Optional cap on estimated simulated seconds for this request, used
        by the ``"adaptive"`` policy.  The concurrent runtime additionally
        treats it as the request's *deadline*: a queued request whose
        projected completion exceeds the budget is shed with
        :class:`DeadlineExceededError` instead of being solved late.
    priority:
        Dispatch priority within the request's admission lane
        (:data:`PRIORITY_HIGH` / :data:`PRIORITY_NORMAL` /
        :data:`PRIORITY_LOW`; smaller dispatches first).  Ignored by the
        synchronous server, which serves in submission order.
    """

    request_id: int
    a: np.ndarray
    b: np.ndarray
    kind: str = "multisketch"
    solver: str = "sketch_and_solve"
    accuracy_target: Optional[float] = None
    latency_budget: Optional[float] = None
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a)
        self.b = np.asarray(self.b)
        if self.a.ndim != 2:
            raise ValueError("A must be a 2-D matrix")
        if self.a.shape[0] <= self.a.shape[1]:
            raise ValueError("A must be tall (d > n)")
        if self.b.ndim != 1 or self.b.shape[0] != self.a.shape[0]:
            raise ValueError("b must be a vector with one entry per row of A")
        self.kind = normalize_kind(self.kind)
        self.solver = normalize_solver(self.solver)

    @property
    def d(self) -> int:
        """Number of rows of the problem."""
        return self.a.shape[0]

    @property
    def n(self) -> int:
        """Number of columns of the problem."""
        return self.a.shape[1]

    def group_key(self) -> Tuple:
        """Micro-batching key: requests with equal keys fuse into one solve.

        Fusing into a multi-RHS solve requires *the same coefficient matrix*,
        so the key includes the identity of ``a`` (requests hold a reference,
        which keeps ``id(a)`` stable while the request is pending) alongside
        the shape/dtype and the routing parameters -- including the accuracy
        target and latency budget, because the planner routes a fused batch
        as a unit and must not average away one rider's requirements.
        """
        return (
            id(self.a),
            self.a.shape,
            self.a.dtype.str,
            self.kind,
            self.solver,
            self.accuracy_target,
            self.latency_budget,
            self.priority,
        )


@dataclass
class SolveResponse:
    """Outcome of one :class:`SolveRequest`.

    ``simulated_seconds`` is the request's *latency*: the simulated device
    time of the fused batch it rode in plus the cross-shard transfer time for
    returning its slice of the result.  Requests fused into the same batch
    therefore share a latency, which is exactly how a micro-batching server
    behaves (a request pays for its whole batch).
    """

    request_id: int
    x: Optional[np.ndarray]
    relative_residual: float
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    batch_size: int
    cache_hit: bool
    kind: str
    solver: str
    method: str = ""
    extra: Dict[str, object] = field(default_factory=dict)
    #: Server policy that routed this request ("fixed" unless configured).
    policy: str = "fixed"
    #: Solver the planner executed (may differ from ``solver`` under
    #: adaptive routing or after a fallback rescue).
    executed_solver: str = ""
    #: Number of fallback hops the batch took before succeeding.
    fallbacks: int = 0
    #: Problem class the request belonged to ("least_squares" or "ridge");
    #: ridge responses carry the lambda in ``extra["regularization"]``.
    problem: str = "least_squares"


@dataclass
class LowRankResponse:
    """Outcome of an ``approx_lowrank(A, rank)`` request.

    ``left @ right`` is the rank-``rank`` approximation (see
    :class:`repro.problems.lowrank.LowRankResult` for the per-method factor
    semantics); ``relative_error`` is its Frobenius error relative to
    ``||A||_F``.  ``cache_hit`` reports whether the range finder's Gaussian
    test operator came out of the operator cache (always False for the
    deterministic Frequent Directions path, which has no operator state).
    """

    request_id: int
    left: Optional[np.ndarray]
    right: Optional[np.ndarray]
    rank: int
    method: str
    relative_error: float
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    cache_hit: bool
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class SketchResponse:
    """Outcome of a ``sketch(A)`` request: the sketched matrix ``S A``."""

    request_id: int
    sketch: Optional[np.ndarray]
    k: int
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    cache_hit: bool
    kind: str
