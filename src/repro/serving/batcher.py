"""Micro-batching: coalesce same-problem solve requests into fused batches.

Serving traffic for least squares is dominated by many right-hand sides
against few coefficient matrices (scoring observations against a shared
design matrix).  Solving them one at a time pays the ``S A`` matrix sketch
and the GEQRF once *per request*; fused into a multi-RHS solve they are paid
once *per batch*, with the per-request work shrinking to one extra sketched
column and one extra TRSM column -- the amortisation the serving layer's
throughput comes from (see :func:`repro.linalg.lstsq.sketch_and_solve`'s
multi-RHS path).

Only requests sharing the *same* coefficient matrix (by identity), dtype,
sketch kind and solver are fused -- that is the mathematical requirement for
a multi-RHS solve.  Requests that merely share a shape still benefit from
the operator cache, just not from fusion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.requests import SolveRequest


@dataclass
class MicroBatch:
    """A group of fused solve requests sharing one coefficient matrix."""

    requests: List[SolveRequest]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a micro-batch needs at least one request")
        first = self.requests[0]
        for req in self.requests[1:]:
            if req.group_key() != first.group_key():
                raise ValueError("all requests in a micro-batch must share a group key")

    @property
    def size(self) -> int:
        """Number of fused requests."""
        return len(self.requests)

    @property
    def a(self) -> np.ndarray:
        """The shared coefficient matrix."""
        return self.requests[0].a

    @property
    def kind(self) -> str:
        """Sketch family of the batch."""
        return self.requests[0].kind

    @property
    def solver(self) -> str:
        """Solver of the batch."""
        return self.requests[0].solver

    def rhs_block(self) -> np.ndarray:
        """Stack the right-hand sides into the ``d x m`` block ``B``."""
        return np.column_stack([req.b for req in self.requests])


class MicroBatcher:
    """Accumulates solve requests and drains them as fused micro-batches.

    Parameters
    ----------
    max_batch:
        Upper bound on requests fused into one batch.  Groups larger than
        this are split into consecutive chunks; the bound keeps the RHS block
        (and the TRSM) from growing past the regime where fusion helps.
    """

    def __init__(self, max_batch: int = 32) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.max_batch = int(max_batch)
        self._groups: "OrderedDict[Tuple, List[SolveRequest]]" = OrderedDict()
        self._pending = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of requests waiting to be drained."""
        return self._pending

    @property
    def pending_groups(self) -> int:
        """Number of distinct fusion groups currently pending."""
        return len(self._groups)

    def add(self, request: SolveRequest) -> None:
        """Enqueue a request into its fusion group."""
        self._groups.setdefault(request.group_key(), []).append(request)
        self._pending += 1

    # ------------------------------------------------------------------
    def pop_batch(self, max_batch: Optional[int] = None) -> Optional[MicroBatch]:
        """Pop one micro-batch without draining the whole queue.

        The concurrent runtime's dispatcher pulls work incrementally -- one
        batch per worker wake-up -- instead of draining everything at once
        the way :meth:`drain` does.  The group chosen is the
        highest-priority one (smallest ``priority`` of its first request),
        ties broken by arrival order; at most ``max_batch`` (defaulting to
        the batcher's own bound) requests are taken, leaving the remainder
        queued as the same group.  Returns ``None`` when nothing is pending.
        """
        if not self._groups:
            return None
        limit = self.max_batch if max_batch is None else int(max_batch)
        if limit <= 0:
            raise ValueError("max_batch must be positive")
        key = min(self._groups, key=lambda k: self._groups[k][0].priority)
        reqs = self._groups[key]
        if len(reqs) <= limit:
            del self._groups[key]
            taken = reqs
        else:
            taken = reqs[:limit]
            self._groups[key] = reqs[limit:]
        self._pending -= len(taken)
        return MicroBatch(taken)

    # ------------------------------------------------------------------
    def drain(self) -> List[MicroBatch]:
        """Return all pending requests as micro-batches and clear the queue.

        Groups are emitted in arrival order of their first request; groups
        larger than ``max_batch`` are split into consecutive chunks so a hot
        matrix cannot starve the rest of the queue behind one giant TRSM.
        """
        batches: List[MicroBatch] = []
        for reqs in self._groups.values():
            for start in range(0, len(reqs), self.max_batch):
                batches.append(MicroBatch(reqs[start : start + self.max_batch]))
        self._groups.clear()
        self._pending = 0
        return batches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MicroBatcher(pending={self._pending}, groups={len(self._groups)})"
