"""Serving telemetry: latency percentiles, throughput and counters.

Latencies here are *simulated* seconds from the GPU cost model and the
alpha-beta communication model, so the numbers are deterministic and the
percentile report answers the question the ROADMAP's north star asks --
what p99 would this serving configuration sustain on the paper's hardware --
without a physical GPU in the loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass
class LatencySummary:
    """Percentile summary of per-request latency (simulated seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
        }


def _summarise(latencies: List[float]) -> Optional[LatencySummary]:
    """Percentile summary of a latency list (None when empty)."""
    if not latencies:
        return None
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return LatencySummary(
        count=arr.size,
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        mean=float(arr.mean()),
        max=float(arr.max()),
    )


class ServingTelemetry:
    """Accumulates per-request and per-batch measurements for one server.

    All recorders take an internal lock, so a concurrent runtime's worker
    threads can report into one instance without corrupting counters; the
    lock is uncontended (and cheap) for the synchronous server.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._batch_seconds: List[float] = []
        self._solver_latencies: Dict[str, List[float]] = {}
        self._fallback_hops: Dict[str, int] = {}
        self.requests_served = 0
        self.sketch_requests = 0
        self.batches_executed = 0
        self.fallback_batches = 0
        self.failed_requests = 0
        # Concurrent-runtime counters (see repro.serving.runtime).
        self._lane_latencies: Dict[str, List[float]] = {}
        self._queue_depths: List[int] = []
        self._sheds_by_reason: Dict[str, int] = {}
        self._sheds_by_lane: Dict[str, int] = {}
        self.requests_shed = 0
        self.requests_admitted = 0
        self.admission_rejects = 0
        # Streaming-session counters (see repro.serving.streaming).
        self.streams_opened = 0
        self.streams_closed = 0
        self.stream_rows = 0
        self.stream_batches = 0
        self.stream_resolves = 0
        self.stream_drift_events = 0
        self.stream_ingest_seconds = 0.0
        self.stream_resolve_seconds = 0.0
        self._stream_staleness: List[float] = []

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, solver: Optional[str] = None) -> None:
        """Record one served solve request's latency.

        ``solver`` (the solver that actually executed, after any planner
        fallback) additionally lands the latency in that solver's own
        histogram, so the per-solver p50/p99 the planner's routing produces
        are directly observable.
        """
        with self._lock:
            self._latencies.append(float(latency_seconds))
            self.requests_served += 1
            if solver:
                self._solver_latencies.setdefault(solver, []).append(float(latency_seconds))

    def record_fallback(self, from_solver: str, to_solver: str) -> None:
        """Record one fallback hop a batch took (planned -> executed)."""
        with self._lock:
            self._fallback_hops[f"{from_solver}->{to_solver}"] = (
                self._fallback_hops.get(f"{from_solver}->{to_solver}", 0) + 1
            )
            self.fallback_batches += 1

    def record_failure(self, count: int = 1) -> None:
        """Record requests whose whole fallback chain failed."""
        with self._lock:
            self.failed_requests += int(count)

    def record_sketch(self, latency_seconds: float) -> None:
        """Record one served sketch request's latency."""
        with self._lock:
            self._latencies.append(float(latency_seconds))
            self.sketch_requests += 1

    def record_batch(self, size: int, seconds: float) -> None:
        """Record one executed micro-batch."""
        with self._lock:
            self._batch_sizes.append(int(size))
            self._batch_seconds.append(float(seconds))
            self.batches_executed += 1

    # ------------------------------------------------------------------
    # concurrent runtime (admission queue, lanes, shedding)
    # ------------------------------------------------------------------
    def record_admission(self, lane: str) -> None:
        """Record one request admitted into the bounded queue."""
        with self._lock:
            self.requests_admitted += 1
            self._sheds_by_lane.setdefault(lane, 0)  # lane becomes visible at 0 sheds

    def record_admission_reject(self, lane: str) -> None:
        """Record one request bounced at admission (queue full)."""
        with self._lock:
            self.admission_rejects += 1

    def record_queue_depth(self, depth: int) -> None:
        """Sample the admission-queue depth (taken at submit and dispatch)."""
        with self._lock:
            self._queue_depths.append(int(depth))

    def record_shed(self, lane: str, reason: str, count: int = 1) -> None:
        """Record requests shed by the dispatcher (deadline, shutdown, ...)."""
        with self._lock:
            self.requests_shed += int(count)
            self._sheds_by_reason[reason] = self._sheds_by_reason.get(reason, 0) + int(count)
            self._sheds_by_lane[lane] = self._sheds_by_lane.get(lane, 0) + int(count)

    def record_lane_latency(self, lane: str, latency_seconds: float) -> None:
        """Record one completed request's latency under its admission lane.

        Lane latencies are *queue-inclusive* (admission to completion on the
        simulated clock), unlike the per-solver histograms which measure
        service time only -- the difference between the two is the queueing
        delay the elastic policy exists to keep bounded.
        """
        with self._lock:
            self._lane_latencies.setdefault(lane, []).append(float(latency_seconds))

    def lane_latency_summary(self, lane: str) -> Optional[LatencySummary]:
        """Queue-inclusive latency percentiles for one lane (None if unused)."""
        with self._lock:
            return _summarise(list(self._lane_latencies.get(lane, [])))

    def lanes_seen(self) -> List[str]:
        """Lanes with at least one completed request."""
        with self._lock:
            return list(self._lane_latencies)

    def shed_counts(self) -> Dict[str, int]:
        """Per-reason shed counters."""
        with self._lock:
            return dict(self._sheds_by_reason)

    def sheds_by_lane(self) -> Dict[str, int]:
        """Per-lane shed counters."""
        with self._lock:
            return dict(self._sheds_by_lane)

    def queue_depth_max(self) -> int:
        """Deepest admission queue observed (0 when never sampled)."""
        with self._lock:
            return max(self._queue_depths, default=0)

    def queue_depth_mean(self) -> float:
        """Mean sampled admission-queue depth (0 when never sampled)."""
        with self._lock:
            if not self._queue_depths:
                return 0.0
            return float(np.mean(self._queue_depths))

    def recent_p95(self, window: int = 64) -> Optional[float]:
        """p95 of the most recent ``window`` request latencies.

        This is the latency signal the elastic policy scales on: recent
        enough to track the current load phase rather than the whole
        history.  ``None`` before any request completes.
        """
        with self._lock:
            if not self._latencies:
                return None
            tail = self._latencies[-int(window):]
        return float(np.percentile(np.asarray(tail, dtype=np.float64), 95.0))

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def record_stream_open(self) -> None:
        """Record one opened streaming session."""
        self.streams_opened += 1

    def record_stream_close(self) -> None:
        """Record one closed streaming session."""
        self.streams_closed += 1

    def record_stream_ingest(self, rows: int, seconds: float) -> None:
        """Record one ingested batch (row count and simulated ingest time)."""
        self.stream_batches += 1
        self.stream_rows += int(rows)
        self.stream_ingest_seconds += float(seconds)

    def record_stream_resolve(self, count: int = 1, seconds: float = 0.0) -> None:
        """Record streaming re-solves (lazy query or drift triggered).

        ``seconds`` is the re-solve's simulated compute time, so eager
        (drift/warmup) solves inside an ingest are costed the same way as
        query-time ones instead of vanishing from the accounting.
        """
        self.stream_resolves += int(count)
        self.stream_resolve_seconds += float(seconds)

    def record_stream_drift(self, count: int = 1) -> None:
        """Record drift-detector firings across all sessions."""
        self.stream_drift_events += int(count)

    def record_stream_query(self, staleness_rows: int) -> None:
        """Record one solution query and the staleness it was served at."""
        self._stream_staleness.append(float(staleness_rows))

    def stream_ingest_rows_per_second(self) -> float:
        """Sustained ingest rate over all sessions (simulated seconds)."""
        if self.stream_ingest_seconds <= 0.0:
            return 0.0
        return self.stream_rows / self.stream_ingest_seconds

    def stream_mean_staleness(self) -> float:
        """Average rows-behind-the-stream at query time (0 when no queries)."""
        if not self._stream_staleness:
            return 0.0
        return float(np.mean(self._stream_staleness))

    # ------------------------------------------------------------------
    def latency_summary(self) -> Optional[LatencySummary]:
        """p50/p95/p99 latency over everything served so far (None when idle)."""
        with self._lock:
            return _summarise(list(self._latencies))

    def solver_latency_summary(self, solver: str) -> Optional[LatencySummary]:
        """Latency percentiles for one executed solver (None if never used)."""
        with self._lock:
            return _summarise(list(self._solver_latencies.get(solver, [])))

    def solvers_seen(self) -> List[str]:
        """Executed-solver names with at least one recorded request."""
        with self._lock:
            return list(self._solver_latencies)

    def fallback_counts(self) -> Dict[str, int]:
        """``"from->to"`` fallback-hop counters."""
        with self._lock:
            return dict(self._fallback_hops)

    def mean_batch_size(self) -> float:
        """Average fused batch size (0 when no batch ran)."""
        with self._lock:
            if not self._batch_sizes:
                return 0.0
            return float(np.mean(self._batch_sizes))

    def throughput(self, makespan_seconds: float) -> float:
        """Requests per simulated second given the pool's makespan."""
        total = self.requests_served + self.sketch_requests
        if makespan_seconds <= 0.0:
            return 0.0
        return total / makespan_seconds

    # ------------------------------------------------------------------
    def snapshot(self, makespan_seconds: Optional[float] = None) -> Dict[str, float]:
        """One flat dict with every headline number (for reports and tests)."""
        out: Dict[str, float] = {
            "requests_served": float(self.requests_served),
            "sketch_requests": float(self.sketch_requests),
            "batches_executed": float(self.batches_executed),
            "mean_batch_size": self.mean_batch_size(),
        }
        summary = self.latency_summary()
        if summary is not None:
            out.update(summary.as_dict())
        out["fallback_batches"] = float(self.fallback_batches)
        out["failed_requests"] = float(self.failed_requests)
        if self.requests_admitted or self.requests_shed or self.admission_rejects:
            out["requests_admitted"] = float(self.requests_admitted)
            out["requests_shed"] = float(self.requests_shed)
            out["admission_rejects"] = float(self.admission_rejects)
            out["queue_depth_max"] = float(self.queue_depth_max())
            out["queue_depth_mean"] = self.queue_depth_mean()
            for reason, count in self.shed_counts().items():
                out[f"shed_{reason}"] = float(count)
            for lane in self.lanes_seen():
                s = self.lane_latency_summary(lane)
                if s is None:
                    continue
                out[f"lane_{lane}_requests"] = float(s.count)
                out[f"lane_{lane}_p50_seconds"] = s.p50
                out[f"lane_{lane}_p95_seconds"] = s.p95
                out[f"lane_{lane}_p99_seconds"] = s.p99
            for lane, count in self.sheds_by_lane().items():
                out[f"lane_{lane}_shed"] = float(count)
        if self.streams_opened or self.streams_closed or self.stream_batches:
            out["streams_opened"] = float(self.streams_opened)
            out["streams_closed"] = float(self.streams_closed)
            out["stream_rows_ingested"] = float(self.stream_rows)
            out["stream_batches"] = float(self.stream_batches)
            out["stream_resolves"] = float(self.stream_resolves)
            out["stream_resolve_seconds"] = self.stream_resolve_seconds
            out["stream_ingest_seconds"] = self.stream_ingest_seconds
            out["stream_drift_events"] = float(self.stream_drift_events)
            out["stream_ingest_rows_per_second"] = self.stream_ingest_rows_per_second()
            out["stream_mean_staleness_rows"] = self.stream_mean_staleness()
        for solver in self.solvers_seen():
            s = self.solver_latency_summary(solver)
            if s is None:
                continue
            out[f"solver_{solver}_requests"] = float(s.count)
            out[f"solver_{solver}_p50_seconds"] = s.p50
            out[f"solver_{solver}_p99_seconds"] = s.p99
        if makespan_seconds is not None:
            out["makespan_seconds"] = float(makespan_seconds)
            out["requests_per_second"] = self.throughput(makespan_seconds)
        return out

    def reset(self) -> None:
        """Clear every measurement."""
        self._latencies.clear()
        self._batch_sizes.clear()
        self._batch_seconds.clear()
        self._solver_latencies.clear()
        self._fallback_hops.clear()
        self.requests_served = 0
        self.sketch_requests = 0
        self.batches_executed = 0
        self.fallback_batches = 0
        self.failed_requests = 0
        self.streams_opened = 0
        self.streams_closed = 0
        self.stream_rows = 0
        self.stream_batches = 0
        self.stream_resolves = 0
        self.stream_drift_events = 0
        self.stream_ingest_seconds = 0.0
        self.stream_resolve_seconds = 0.0
        self._stream_staleness.clear()
        self._lane_latencies.clear()
        self._queue_depths.clear()
        self._sheds_by_reason.clear()
        self._sheds_by_lane.clear()
        self.requests_shed = 0
        self.requests_admitted = 0
        self.admission_rejects = 0
