"""Serving telemetry: latency percentiles, throughput and counters.

Latencies here are *simulated* seconds from the GPU cost model and the
alpha-beta communication model, so the numbers are deterministic and the
percentile report answers the question the ROADMAP's north star asks --
what p99 would this serving configuration sustain on the paper's hardware --
without a physical GPU in the loop.

Since the observability PR, :class:`ServingTelemetry` is a facade over a
:class:`~repro.obs.metrics.MetricsRegistry`: every recorder lands in a
named counter/gauge/histogram with label sets, so the same numbers the
``snapshot()`` contract has always reported are also scrapeable through
:func:`repro.obs.export.to_prometheus` and the JSON exporter.  Latency
samples now live in **bounded** ring+P² histograms instead of unbounded
Python lists -- a long-lived server's telemetry footprint is fixed, while
``recent_p95()`` (the elastic-scaling signal) keeps its exact last-window
semantics and whole-stream p50/p95/p99 stay available past the ring via
the P² sketches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


@dataclass
class LatencySummary:
    """Percentile summary of per-request latency (simulated seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
        }


def _summarise(hist: Histogram) -> Optional[LatencySummary]:
    """Percentile summary of a histogram (None when empty).

    Exact while the sample count fits the histogram's ring; beyond that
    p50/p95/p99 come from the whole-stream P² sketches and mean/max from
    the exact running aggregates.
    """
    if hist.count == 0:
        return None
    return LatencySummary(
        count=int(hist.count),
        p50=float(hist.percentile(50.0)),
        p95=float(hist.percentile(95.0)),
        p99=float(hist.percentile(99.0)),
        mean=float(hist.mean),
        max=float(hist.max),
    )


class ServingTelemetry:
    """Accumulates per-request and per-batch measurements for one server.

    All recorders (including the streaming-session ones and ``reset()``)
    take an internal lock, so a concurrent runtime's worker threads can
    report into one instance without corrupting counters; the lock is
    uncontended (and cheap) for the synchronous server.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to record into
        (a private one is created when omitted).  Exposed as
        ``self.registry`` for the exporters.
    sample_capacity:
        Ring size for every latency/depth histogram.  Must be at least
        the largest window ``recent_p95()`` is asked for.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_capacity: int = 4096,
    ) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry(sample_capacity)
        self.sample_capacity = int(sample_capacity)
        r = self.registry
        cap = self.sample_capacity
        # Request-path histograms (bounded: ring of ``cap`` + P² sketches).
        self._latencies = r.histogram("serving_request_latency_seconds", capacity=cap)
        self._batch_sizes = r.histogram("serving_batch_size", capacity=cap)
        self._batch_seconds = r.histogram("serving_batch_seconds", capacity=cap)
        self._solver_latencies: Dict[str, Histogram] = {}
        self._fallback_hops: Dict[str, Counter] = {}
        self._c_requests = r.counter("serving_requests_total")
        self._c_sketches = r.counter("serving_sketch_requests_total")
        self._c_batches = r.counter("serving_batches_total")
        self._c_fallback_batches = r.counter("serving_fallback_batches_total")
        self._c_failures = r.counter("serving_failed_requests_total")
        # Concurrent-runtime series (see repro.serving.runtime).
        self._lane_latencies: Dict[str, Histogram] = {}
        self._queue_depths = r.histogram("runtime_queue_depth", capacity=cap)
        self._g_queue_depth = r.gauge("runtime_queue_depth_current")
        self._g_active_shards = r.gauge("runtime_active_shards")
        self._sheds_by_reason: Dict[str, Counter] = {}
        self._sheds_by_lane: Dict[str, Counter] = {}
        self._c_shed = r.counter("runtime_requests_shed_total")
        self._c_admitted = r.counter("runtime_requests_admitted_total")
        self._c_admission_rejects = r.counter("runtime_admission_rejects_total")
        # Streaming-session series (see repro.serving.streaming).
        self._c_streams_opened = r.counter("stream_sessions_opened_total")
        self._c_streams_closed = r.counter("stream_sessions_closed_total")
        self._c_stream_rows = r.counter("stream_rows_total")
        self._c_stream_batches = r.counter("stream_batches_total")
        self._c_stream_resolves = r.counter("stream_resolves_total")
        self._c_stream_drift = r.counter("stream_drift_events_total")
        self._c_stream_ingest_seconds = r.counter("stream_ingest_seconds_total")
        self._c_stream_resolve_seconds = r.counter("stream_resolve_seconds_total")
        self._stream_staleness = r.histogram("stream_staleness_rows", capacity=cap)
        # Frequency-analytics series (see repro.serving.frequency).
        self._c_freq_opened = r.counter("frequency_sessions_opened_total")
        self._c_freq_closed = r.counter("frequency_sessions_closed_total")
        self._c_freq_items = r.counter("frequency_items_total")
        self._c_freq_batches = r.counter("frequency_batches_total")
        self._c_freq_queries = r.counter("frequency_queries_total")
        self._c_freq_query_seconds = r.counter("frequency_query_seconds_total")
        self._c_freq_ingest_seconds = r.counter("frequency_ingest_seconds_total")
        self._freq_queries_by_kind: Dict[str, Counter] = {}
        # Durability series (see repro.durability / repro.serving.streaming).
        self._c_checkpoints = r.counter("durability_checkpoints_total")
        self._c_checkpoint_bytes = r.counter("durability_checkpoint_bytes_total")
        self._c_wal_appends = r.counter("durability_wal_appends_total")
        self._c_wal_bytes = r.counter("durability_wal_bytes_total")
        self._c_restores = r.counter("durability_restores_total")
        self._c_replayed_batches = r.counter("durability_replayed_batches_total")
        self._c_corrupt_checkpoints = r.counter("durability_corrupt_checkpoints_total")
        self._c_wal_truncations = r.counter("durability_wal_truncations_total")
        self._c_sessions_evicted = r.counter("stream_sessions_evicted_total")
        self._g_passivated = r.gauge("durability_passivated_sessions")

    # ------------------------------------------------------------------
    # derived counter attributes (read-only views over the registry)
    # ------------------------------------------------------------------
    @property
    def requests_served(self) -> int:
        return int(self._c_requests.value)

    @property
    def sketch_requests(self) -> int:
        return int(self._c_sketches.value)

    @property
    def batches_executed(self) -> int:
        return int(self._c_batches.value)

    @property
    def fallback_batches(self) -> int:
        return int(self._c_fallback_batches.value)

    @property
    def failed_requests(self) -> int:
        return int(self._c_failures.value)

    @property
    def requests_shed(self) -> int:
        return int(self._c_shed.value)

    @property
    def requests_admitted(self) -> int:
        return int(self._c_admitted.value)

    @property
    def admission_rejects(self) -> int:
        return int(self._c_admission_rejects.value)

    @property
    def streams_opened(self) -> int:
        return int(self._c_streams_opened.value)

    @property
    def streams_closed(self) -> int:
        return int(self._c_streams_closed.value)

    @property
    def stream_rows(self) -> int:
        return int(self._c_stream_rows.value)

    @property
    def stream_batches(self) -> int:
        return int(self._c_stream_batches.value)

    @property
    def stream_resolves(self) -> int:
        return int(self._c_stream_resolves.value)

    @property
    def stream_drift_events(self) -> int:
        return int(self._c_stream_drift.value)

    @property
    def stream_ingest_seconds(self) -> float:
        return float(self._c_stream_ingest_seconds.value)

    @property
    def stream_resolve_seconds(self) -> float:
        return float(self._c_stream_resolve_seconds.value)

    @property
    def checkpoints_written(self) -> int:
        return int(self._c_checkpoints.value)

    @property
    def checkpoint_bytes(self) -> int:
        return int(self._c_checkpoint_bytes.value)

    @property
    def wal_appends(self) -> int:
        return int(self._c_wal_appends.value)

    @property
    def wal_bytes(self) -> int:
        return int(self._c_wal_bytes.value)

    @property
    def restores(self) -> int:
        return int(self._c_restores.value)

    @property
    def replayed_batches(self) -> int:
        return int(self._c_replayed_batches.value)

    @property
    def corrupt_checkpoints(self) -> int:
        return int(self._c_corrupt_checkpoints.value)

    @property
    def wal_truncations(self) -> int:
        return int(self._c_wal_truncations.value)

    @property
    def sessions_evicted(self) -> int:
        return int(self._c_sessions_evicted.value)

    @property
    def passivated_sessions(self) -> int:
        return int(self._g_passivated.value)

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, solver: Optional[str] = None) -> None:
        """Record one served solve request's latency.

        ``solver`` (the solver that actually executed, after any planner
        fallback) additionally lands the latency in that solver's own
        histogram, so the per-solver p50/p99 the planner's routing produces
        are directly observable.
        """
        with self._lock:
            self._latencies.observe(float(latency_seconds))
            self._c_requests.inc()
            if solver:
                hist = self._solver_latencies.get(solver)
                if hist is None:
                    hist = self.registry.histogram(
                        "serving_solver_latency_seconds",
                        capacity=self.sample_capacity,
                        solver=solver,
                    )
                    self._solver_latencies[solver] = hist
                hist.observe(float(latency_seconds))

    def record_requests(self, latencies: Iterable[float]) -> None:
        """Bulk-record served request latencies (vectorised ring ingest)."""
        arr = np.asarray(list(latencies) if not isinstance(latencies, np.ndarray) else latencies)
        with self._lock:
            self._latencies.observe_many(arr)
            self._c_requests.inc(arr.size)

    def record_fallback(self, from_solver: str, to_solver: str) -> None:
        """Record one fallback hop a batch took (planned -> executed)."""
        hop = f"{from_solver}->{to_solver}"
        with self._lock:
            counter = self._fallback_hops.get(hop)
            if counter is None:
                counter = self.registry.counter(
                    "serving_fallback_hops_total", src=from_solver, dst=to_solver
                )
                self._fallback_hops[hop] = counter
            counter.inc()
            self._c_fallback_batches.inc()

    def record_failure(self, count: int = 1) -> None:
        """Record requests whose whole fallback chain failed."""
        with self._lock:
            self._c_failures.inc(int(count))

    def record_sketch(self, latency_seconds: float) -> None:
        """Record one served sketch request's latency."""
        with self._lock:
            self._latencies.observe(float(latency_seconds))
            self._c_sketches.inc()

    def record_batch(self, size: int, seconds: float) -> None:
        """Record one executed micro-batch."""
        with self._lock:
            self._batch_sizes.observe(int(size))
            self._batch_seconds.observe(float(seconds))
            self._c_batches.inc()

    # ------------------------------------------------------------------
    # concurrent runtime (admission queue, lanes, shedding)
    # ------------------------------------------------------------------
    def _shed_counter_locked(self, lane: str) -> Counter:
        counter = self._sheds_by_lane.get(lane)
        if counter is None:
            counter = self.registry.counter("runtime_shed_total", lane=lane)
            self._sheds_by_lane[lane] = counter
        return counter

    def record_admission(self, lane: str) -> None:
        """Record one request admitted into the bounded queue."""
        with self._lock:
            self._c_admitted.inc()
            self.registry.counter("runtime_admitted_total", lane=lane).inc()
            self._shed_counter_locked(lane)  # lane becomes visible at 0 sheds

    def record_admission_reject(self, lane: str) -> None:
        """Record one request bounced at admission (queue full)."""
        with self._lock:
            self._c_admission_rejects.inc()
            self.registry.counter("runtime_admission_rejects_by_lane_total", lane=lane).inc()

    def record_queue_depth(self, depth: int) -> None:
        """Sample the admission-queue depth (taken at submit and dispatch)."""
        with self._lock:
            self._queue_depths.observe(int(depth))
            self._g_queue_depth.set(int(depth))

    def set_active_shards(self, count: int) -> None:
        """Publish the elastic pool's current active-shard count."""
        with self._lock:
            self._g_active_shards.set(int(count))

    def record_shed(self, lane: str, reason: str, count: int = 1) -> None:
        """Record requests shed by the dispatcher (deadline, shutdown, ...)."""
        with self._lock:
            self._c_shed.inc(int(count))
            by_reason = self._sheds_by_reason.get(reason)
            if by_reason is None:
                by_reason = self.registry.counter("runtime_shed_by_reason_total", reason=reason)
                self._sheds_by_reason[reason] = by_reason
            by_reason.inc(int(count))
            self._shed_counter_locked(lane).inc(int(count))

    def record_lane_latency(self, lane: str, latency_seconds: float) -> None:
        """Record one completed request's latency under its admission lane.

        Lane latencies are *queue-inclusive* (admission to completion on the
        simulated clock), unlike the per-solver histograms which measure
        service time only -- the difference between the two is the queueing
        delay the elastic policy exists to keep bounded.
        """
        with self._lock:
            hist = self._lane_latencies.get(lane)
            if hist is None:
                hist = self.registry.histogram(
                    "runtime_lane_latency_seconds",
                    capacity=self.sample_capacity,
                    lane=lane,
                )
                self._lane_latencies[lane] = hist
            hist.observe(float(latency_seconds))

    def lane_latency_summary(self, lane: str) -> Optional[LatencySummary]:
        """Queue-inclusive latency percentiles for one lane (None if unused)."""
        with self._lock:
            hist = self._lane_latencies.get(lane)
        if hist is None:
            return None
        return _summarise(hist)

    def lanes_seen(self) -> List[str]:
        """Lanes with at least one completed request."""
        with self._lock:
            return list(self._lane_latencies)

    def shed_counts(self) -> Dict[str, int]:
        """Per-reason shed counters."""
        with self._lock:
            return {reason: int(c.value) for reason, c in self._sheds_by_reason.items()}

    def sheds_by_lane(self) -> Dict[str, int]:
        """Per-lane shed counters."""
        with self._lock:
            return {lane: int(c.value) for lane, c in self._sheds_by_lane.items()}

    def queue_depth_max(self) -> int:
        """Deepest admission queue observed (0 when never sampled)."""
        with self._lock:
            return int(self._queue_depths.max)

    def queue_depth_mean(self) -> float:
        """Mean sampled admission-queue depth (0 when never sampled)."""
        with self._lock:
            return float(self._queue_depths.mean)

    def recent_p95(self, window: int = 64) -> Optional[float]:
        """p95 of the most recent ``window`` request latencies.

        This is the latency signal the elastic policy scales on: recent
        enough to track the current load phase rather than the whole
        history.  ``None`` before any request completes.  Exact for any
        ``window <= sample_capacity`` (the ring always holds the tail).
        """
        with self._lock:
            return self._latencies.recent_percentile(95.0, int(window))

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def record_stream_open(self) -> None:
        """Record one opened streaming session."""
        with self._lock:
            self._c_streams_opened.inc()

    def record_stream_close(self) -> None:
        """Record one closed streaming session."""
        with self._lock:
            self._c_streams_closed.inc()

    def record_stream_ingest(self, rows: int, seconds: float) -> None:
        """Record one ingested batch (row count and simulated ingest time)."""
        with self._lock:
            self._c_stream_batches.inc()
            self._c_stream_rows.inc(int(rows))
            self._c_stream_ingest_seconds.inc(float(seconds))

    def record_stream_resolve(self, count: int = 1, seconds: float = 0.0) -> None:
        """Record streaming re-solves (lazy query or drift triggered).

        ``seconds`` is the re-solve's simulated compute time, so eager
        (drift/warmup) solves inside an ingest are costed the same way as
        query-time ones instead of vanishing from the accounting.
        """
        with self._lock:
            self._c_stream_resolves.inc(int(count))
            self._c_stream_resolve_seconds.inc(float(seconds))

    def record_stream_drift(self, count: int = 1) -> None:
        """Record drift-detector firings across all sessions."""
        with self._lock:
            self._c_stream_drift.inc(int(count))

    def record_stream_query(self, staleness_rows: int) -> None:
        """Record one solution query and the staleness it was served at."""
        with self._lock:
            self._stream_staleness.observe(float(staleness_rows))

    # ------------------------------------------------------------------
    # frequency-analytics sessions
    # ------------------------------------------------------------------
    @property
    def frequency_sessions_opened(self) -> int:
        return int(self._c_freq_opened.value)

    @property
    def frequency_sessions_closed(self) -> int:
        return int(self._c_freq_closed.value)

    @property
    def frequency_items(self) -> int:
        return int(self._c_freq_items.value)

    @property
    def frequency_batches(self) -> int:
        return int(self._c_freq_batches.value)

    @property
    def frequency_queries(self) -> int:
        return int(self._c_freq_queries.value)

    @property
    def frequency_query_seconds(self) -> float:
        return float(self._c_freq_query_seconds.value)

    @property
    def frequency_ingest_seconds(self) -> float:
        return float(self._c_freq_ingest_seconds.value)

    def record_frequency_open(self) -> None:
        """Record one opened frequency-analytics session."""
        with self._lock:
            self._c_freq_opened.inc()

    def record_frequency_close(self) -> None:
        """Record one closed frequency-analytics session."""
        with self._lock:
            self._c_freq_closed.inc()

    def record_frequency_ingest(self, items: int, seconds: float) -> None:
        """Record one ingested item batch (count and simulated fold time)."""
        with self._lock:
            self._c_freq_batches.inc()
            self._c_freq_items.inc(int(items))
            self._c_freq_ingest_seconds.inc(float(seconds))

    def record_frequency_query(self, kind: str, seconds: float) -> None:
        """Record one answered frequency query under its query type.

        ``kind`` is one of the catalog's query types (``point`` /
        ``heavy_hitters`` / ``norm`` / ``range``); each gets its own
        labelled counter so the query mix is observable per type.
        """
        with self._lock:
            self._c_freq_queries.inc()
            self._c_freq_query_seconds.inc(float(seconds))
            counter = self._freq_queries_by_kind.get(kind)
            if counter is None:
                counter = self.registry.counter(
                    "frequency_queries_by_kind_total", kind=kind
                )
                self._freq_queries_by_kind[kind] = counter
            counter.inc()

    def frequency_query_counts(self) -> Dict[str, int]:
        """Per-kind frequency query counters."""
        with self._lock:
            return {kind: int(c.value) for kind, c in self._freq_queries_by_kind.items()}

    # ------------------------------------------------------------------
    # durability (checkpoint / WAL / restore / eviction)
    # ------------------------------------------------------------------
    def record_checkpoint(self, nbytes: int) -> None:
        """Record one session snapshot written to the checkpoint store."""
        with self._lock:
            self._c_checkpoints.inc()
            self._c_checkpoint_bytes.inc(int(nbytes))

    def record_wal_append(self, nbytes: int) -> None:
        """Record one batch framed into a session's write-ahead log."""
        with self._lock:
            self._c_wal_appends.inc()
            self._c_wal_bytes.inc(int(nbytes))

    def record_restore(self, replayed_batches: int) -> None:
        """Record one session restored (checkpoint + replayed WAL tail)."""
        with self._lock:
            self._c_restores.inc()
            self._c_replayed_batches.inc(int(replayed_batches))

    def record_corrupt_checkpoint(self) -> None:
        """Record a checkpoint that failed its typed decode (no fallback yet)."""
        with self._lock:
            self._c_corrupt_checkpoints.inc()

    def record_wal_truncation(self) -> None:
        """Record a WAL whose tail was dropped at replay (torn or corrupt)."""
        with self._lock:
            self._c_wal_truncations.inc()

    def record_session_evicted(self, reason: str) -> None:
        """Record one session evicted (``reason``: ttl / capacity / manual)."""
        with self._lock:
            self._c_sessions_evicted.inc()
            self.registry.counter(
                "stream_sessions_evicted_by_reason_total", reason=reason
            ).inc()

    def set_passivated_sessions(self, count: int) -> None:
        """Publish how many evicted-but-durable sessions await resurrection."""
        with self._lock:
            self._g_passivated.set(int(count))

    def eviction_counts(self) -> Dict[str, int]:
        """Per-reason eviction counts (reasons with evictions since reset)."""
        breakdown = self.registry.labelled_values(
            "stream_sessions_evicted_by_reason_total", "reason"
        )
        return {reason: int(v) for reason, v in breakdown.items() if v > 0}

    def stream_ingest_rows_per_second(self) -> float:
        """Sustained ingest rate over all sessions (simulated seconds)."""
        seconds = self.stream_ingest_seconds
        if seconds <= 0.0:
            return 0.0
        return self.stream_rows / seconds

    def stream_mean_staleness(self) -> float:
        """Average rows-behind-the-stream at query time (0 when no queries)."""
        with self._lock:
            return float(self._stream_staleness.mean)

    # ------------------------------------------------------------------
    def latency_summary(self) -> Optional[LatencySummary]:
        """p50/p95/p99 latency over everything served so far (None when idle)."""
        return _summarise(self._latencies)

    def solver_latency_summary(self, solver: str) -> Optional[LatencySummary]:
        """Latency percentiles for one executed solver (None if never used)."""
        with self._lock:
            hist = self._solver_latencies.get(solver)
        if hist is None:
            return None
        return _summarise(hist)

    def solvers_seen(self) -> List[str]:
        """Executed-solver names with at least one recorded request."""
        with self._lock:
            return list(self._solver_latencies)

    def fallback_counts(self) -> Dict[str, int]:
        """``"from->to"`` fallback-hop counters."""
        with self._lock:
            return {hop: int(c.value) for hop, c in self._fallback_hops.items()}

    def mean_batch_size(self) -> float:
        """Average fused batch size (0 when no batch ran)."""
        with self._lock:
            return float(self._batch_sizes.mean)

    def throughput(self, makespan_seconds: float) -> float:
        """Requests per simulated second given the pool's makespan."""
        total = self.requests_served + self.sketch_requests
        if makespan_seconds <= 0.0:
            return 0.0
        return total / makespan_seconds

    # ------------------------------------------------------------------
    def snapshot(self, makespan_seconds: Optional[float] = None) -> Dict[str, float]:
        """One flat dict with every headline number (for reports and tests)."""
        out: Dict[str, float] = {
            "requests_served": float(self.requests_served),
            "sketch_requests": float(self.sketch_requests),
            "batches_executed": float(self.batches_executed),
            "mean_batch_size": self.mean_batch_size(),
        }
        summary = self.latency_summary()
        if summary is not None:
            out.update(summary.as_dict())
        out["fallback_batches"] = float(self.fallback_batches)
        out["failed_requests"] = float(self.failed_requests)
        if self.requests_admitted or self.requests_shed or self.admission_rejects:
            out["requests_admitted"] = float(self.requests_admitted)
            out["requests_shed"] = float(self.requests_shed)
            out["admission_rejects"] = float(self.admission_rejects)
            out["queue_depth_max"] = float(self.queue_depth_max())
            out["queue_depth_mean"] = self.queue_depth_mean()
            for reason, count in self.shed_counts().items():
                out[f"shed_{reason}"] = float(count)
            for lane in self.lanes_seen():
                s = self.lane_latency_summary(lane)
                if s is None:
                    continue
                out[f"lane_{lane}_requests"] = float(s.count)
                out[f"lane_{lane}_p50_seconds"] = s.p50
                out[f"lane_{lane}_p95_seconds"] = s.p95
                out[f"lane_{lane}_p99_seconds"] = s.p99
            for lane, count in self.sheds_by_lane().items():
                out[f"lane_{lane}_shed"] = float(count)
        if self.streams_opened or self.streams_closed or self.stream_batches:
            out["streams_opened"] = float(self.streams_opened)
            out["streams_closed"] = float(self.streams_closed)
            out["stream_rows_ingested"] = float(self.stream_rows)
            out["stream_batches"] = float(self.stream_batches)
            out["stream_resolves"] = float(self.stream_resolves)
            out["stream_resolve_seconds"] = self.stream_resolve_seconds
            out["stream_ingest_seconds"] = self.stream_ingest_seconds
            out["stream_drift_events"] = float(self.stream_drift_events)
            out["stream_ingest_rows_per_second"] = self.stream_ingest_rows_per_second()
            out["stream_mean_staleness_rows"] = self.stream_mean_staleness()
        if self.frequency_sessions_opened or self.frequency_batches or self.frequency_queries:
            out["frequency_sessions_opened"] = float(self.frequency_sessions_opened)
            out["frequency_sessions_closed"] = float(self.frequency_sessions_closed)
            out["frequency_items_ingested"] = float(self.frequency_items)
            out["frequency_batches"] = float(self.frequency_batches)
            out["frequency_queries"] = float(self.frequency_queries)
            out["frequency_query_seconds"] = self.frequency_query_seconds
            out["frequency_ingest_seconds"] = self.frequency_ingest_seconds
            for kind, count in self.frequency_query_counts().items():
                out[f"frequency_{kind}_queries"] = float(count)
        if self.checkpoints_written or self.wal_appends or self.restores or self.sessions_evicted:
            out["durability_checkpoints"] = float(self.checkpoints_written)
            out["durability_checkpoint_bytes"] = float(self.checkpoint_bytes)
            out["durability_wal_appends"] = float(self.wal_appends)
            out["durability_wal_bytes"] = float(self.wal_bytes)
            out["durability_restores"] = float(self.restores)
            out["durability_replayed_batches"] = float(self.replayed_batches)
            out["durability_corrupt_checkpoints"] = float(self.corrupt_checkpoints)
            out["durability_wal_truncations"] = float(self.wal_truncations)
            out["durability_passivated_sessions"] = float(self.passivated_sessions)
            out["stream_sessions_evicted"] = float(self.sessions_evicted)
            for reason, count in self.eviction_counts().items():
                out[f"stream_evicted_{reason}"] = float(count)
        for solver in self.solvers_seen():
            s = self.solver_latency_summary(solver)
            if s is None:
                continue
            out[f"solver_{solver}_requests"] = float(s.count)
            out[f"solver_{solver}_p50_seconds"] = s.p50
            out[f"solver_{solver}_p99_seconds"] = s.p99
        if makespan_seconds is not None:
            out["makespan_seconds"] = float(makespan_seconds)
            out["requests_per_second"] = self.throughput(makespan_seconds)
        return out

    def reset(self) -> None:
        """Clear every measurement (under the lock: workers may be recording).

        Registry registrations survive -- a scrape endpoint keeps its
        series at zero -- but the per-name handle maps are cleared so
        ``lanes_seen()``/``solvers_seen()`` report empty again.
        """
        with self._lock:
            self.registry.reset()
            self._solver_latencies.clear()
            self._fallback_hops.clear()
            self._lane_latencies.clear()
            self._sheds_by_reason.clear()
            self._sheds_by_lane.clear()
            self._freq_queries_by_kind.clear()
