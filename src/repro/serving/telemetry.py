"""Serving telemetry: latency percentiles, throughput and counters.

Latencies here are *simulated* seconds from the GPU cost model and the
alpha-beta communication model, so the numbers are deterministic and the
percentile report answers the question the ROADMAP's north star asks --
what p99 would this serving configuration sustain on the paper's hardware --
without a physical GPU in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass
class LatencySummary:
    """Percentile summary of per-request latency (simulated seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
        }


def _summarise(latencies: List[float]) -> Optional[LatencySummary]:
    """Percentile summary of a latency list (None when empty)."""
    if not latencies:
        return None
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return LatencySummary(
        count=arr.size,
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        mean=float(arr.mean()),
        max=float(arr.max()),
    )


class ServingTelemetry:
    """Accumulates per-request and per-batch measurements for one server."""

    def __init__(self) -> None:
        self._latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._batch_seconds: List[float] = []
        self._solver_latencies: Dict[str, List[float]] = {}
        self._fallback_hops: Dict[str, int] = {}
        self.requests_served = 0
        self.sketch_requests = 0
        self.batches_executed = 0
        self.fallback_batches = 0
        self.failed_requests = 0
        # Streaming-session counters (see repro.serving.streaming).
        self.streams_opened = 0
        self.streams_closed = 0
        self.stream_rows = 0
        self.stream_batches = 0
        self.stream_resolves = 0
        self.stream_drift_events = 0
        self.stream_ingest_seconds = 0.0
        self.stream_resolve_seconds = 0.0
        self._stream_staleness: List[float] = []

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, solver: Optional[str] = None) -> None:
        """Record one served solve request's latency.

        ``solver`` (the solver that actually executed, after any planner
        fallback) additionally lands the latency in that solver's own
        histogram, so the per-solver p50/p99 the planner's routing produces
        are directly observable.
        """
        self._latencies.append(float(latency_seconds))
        self.requests_served += 1
        if solver:
            self._solver_latencies.setdefault(solver, []).append(float(latency_seconds))

    def record_fallback(self, from_solver: str, to_solver: str) -> None:
        """Record one fallback hop a batch took (planned -> executed)."""
        self._fallback_hops[f"{from_solver}->{to_solver}"] = (
            self._fallback_hops.get(f"{from_solver}->{to_solver}", 0) + 1
        )
        self.fallback_batches += 1

    def record_failure(self, count: int = 1) -> None:
        """Record requests whose whole fallback chain failed."""
        self.failed_requests += int(count)

    def record_sketch(self, latency_seconds: float) -> None:
        """Record one served sketch request's latency."""
        self._latencies.append(float(latency_seconds))
        self.sketch_requests += 1

    def record_batch(self, size: int, seconds: float) -> None:
        """Record one executed micro-batch."""
        self._batch_sizes.append(int(size))
        self._batch_seconds.append(float(seconds))
        self.batches_executed += 1

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def record_stream_open(self) -> None:
        """Record one opened streaming session."""
        self.streams_opened += 1

    def record_stream_close(self) -> None:
        """Record one closed streaming session."""
        self.streams_closed += 1

    def record_stream_ingest(self, rows: int, seconds: float) -> None:
        """Record one ingested batch (row count and simulated ingest time)."""
        self.stream_batches += 1
        self.stream_rows += int(rows)
        self.stream_ingest_seconds += float(seconds)

    def record_stream_resolve(self, count: int = 1, seconds: float = 0.0) -> None:
        """Record streaming re-solves (lazy query or drift triggered).

        ``seconds`` is the re-solve's simulated compute time, so eager
        (drift/warmup) solves inside an ingest are costed the same way as
        query-time ones instead of vanishing from the accounting.
        """
        self.stream_resolves += int(count)
        self.stream_resolve_seconds += float(seconds)

    def record_stream_drift(self, count: int = 1) -> None:
        """Record drift-detector firings across all sessions."""
        self.stream_drift_events += int(count)

    def record_stream_query(self, staleness_rows: int) -> None:
        """Record one solution query and the staleness it was served at."""
        self._stream_staleness.append(float(staleness_rows))

    def stream_ingest_rows_per_second(self) -> float:
        """Sustained ingest rate over all sessions (simulated seconds)."""
        if self.stream_ingest_seconds <= 0.0:
            return 0.0
        return self.stream_rows / self.stream_ingest_seconds

    def stream_mean_staleness(self) -> float:
        """Average rows-behind-the-stream at query time (0 when no queries)."""
        if not self._stream_staleness:
            return 0.0
        return float(np.mean(self._stream_staleness))

    # ------------------------------------------------------------------
    def latency_summary(self) -> Optional[LatencySummary]:
        """p50/p95/p99 latency over everything served so far (None when idle)."""
        return _summarise(self._latencies)

    def solver_latency_summary(self, solver: str) -> Optional[LatencySummary]:
        """Latency percentiles for one executed solver (None if never used)."""
        return _summarise(self._solver_latencies.get(solver, []))

    def solvers_seen(self) -> List[str]:
        """Executed-solver names with at least one recorded request."""
        return list(self._solver_latencies)

    def fallback_counts(self) -> Dict[str, int]:
        """``"from->to"`` fallback-hop counters."""
        return dict(self._fallback_hops)

    def mean_batch_size(self) -> float:
        """Average fused batch size (0 when no batch ran)."""
        if not self._batch_sizes:
            return 0.0
        return float(np.mean(self._batch_sizes))

    def throughput(self, makespan_seconds: float) -> float:
        """Requests per simulated second given the pool's makespan."""
        total = self.requests_served + self.sketch_requests
        if makespan_seconds <= 0.0:
            return 0.0
        return total / makespan_seconds

    # ------------------------------------------------------------------
    def snapshot(self, makespan_seconds: Optional[float] = None) -> Dict[str, float]:
        """One flat dict with every headline number (for reports and tests)."""
        out: Dict[str, float] = {
            "requests_served": float(self.requests_served),
            "sketch_requests": float(self.sketch_requests),
            "batches_executed": float(self.batches_executed),
            "mean_batch_size": self.mean_batch_size(),
        }
        summary = self.latency_summary()
        if summary is not None:
            out.update(summary.as_dict())
        out["fallback_batches"] = float(self.fallback_batches)
        out["failed_requests"] = float(self.failed_requests)
        if self.streams_opened or self.streams_closed or self.stream_batches:
            out["streams_opened"] = float(self.streams_opened)
            out["streams_closed"] = float(self.streams_closed)
            out["stream_rows_ingested"] = float(self.stream_rows)
            out["stream_batches"] = float(self.stream_batches)
            out["stream_resolves"] = float(self.stream_resolves)
            out["stream_resolve_seconds"] = self.stream_resolve_seconds
            out["stream_ingest_seconds"] = self.stream_ingest_seconds
            out["stream_drift_events"] = float(self.stream_drift_events)
            out["stream_ingest_rows_per_second"] = self.stream_ingest_rows_per_second()
            out["stream_mean_staleness_rows"] = self.stream_mean_staleness()
        for solver in self.solvers_seen():
            s = self.solver_latency_summary(solver)
            if s is None:
                continue
            out[f"solver_{solver}_requests"] = float(s.count)
            out[f"solver_{solver}_p50_seconds"] = s.p50
            out[f"solver_{solver}_p99_seconds"] = s.p99
        if makespan_seconds is not None:
            out["makespan_seconds"] = float(makespan_seconds)
            out["requests_per_second"] = self.throughput(makespan_seconds)
        return out

    def reset(self) -> None:
        """Clear every measurement."""
        self._latencies.clear()
        self._batch_sizes.clear()
        self._batch_seconds.clear()
        self._solver_latencies.clear()
        self._fallback_hops.clear()
        self.requests_served = 0
        self.sketch_requests = 0
        self.batches_executed = 0
        self.fallback_batches = 0
        self.failed_requests = 0
        self.streams_opened = 0
        self.streams_closed = 0
        self.stream_rows = 0
        self.stream_batches = 0
        self.stream_resolves = 0
        self.stream_drift_events = 0
        self.stream_ingest_seconds = 0.0
        self.stream_resolve_seconds = 0.0
        self._stream_staleness.clear()
