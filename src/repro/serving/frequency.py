"""Frequency-analytics sessions on the :class:`~repro.serving.server.SketchServer`.

The first query family the stack serves beyond solves: a frequency session
pins a planned :mod:`repro.core.frequency` engine (flat or hierarchical, as
:func:`~repro.problems.frequency.plan_frequency_sketch` decides) to a
scheduler-chosen shard, ``append_items`` folds arriving ``(id, weight)``
batches into it on that shard's simulated clock, and the query endpoints --
``query_heavy_hitters`` / ``query_norm`` / ``query_range`` /
``query_point`` -- answer from the sketch alone.

**Bit-for-bit serving contract.**  The manager never post-processes the
engine's answers: a served query returns exactly what the corresponding
library call (:meth:`~repro.core.frequency.FrequencySketch.heavy_hitters`,
:meth:`~repro.core.frequency.FrequencySketch.l2_estimate`, ...) returns on
an identically-seeded, identically-fed sketch.  The acceptance benchmark
asserts this equality through the whole session path.

**Durability.**  With a :class:`~repro.durability.store.DurabilityConfig`
on the server, sessions are durable objects exactly like streaming-solver
sessions: every append is framed into a WAL *before* it is folded, every
``checkpoint_interval_batches`` appends the engine's ``state_dict`` is
snapshotted (one :func:`~repro.durability.codec.encode_record` per
session, level tables as raw arrays) and the WAL truncated, and
:meth:`restore_all` replays checkpoints + WAL tails exactly-once after a
crash.  Restored sketches are bit-identical, so answers served after a
restore match answers served before it.

Telemetry lands in the ``frequency_*`` series of
:class:`~repro.serving.telemetry.ServingTelemetry`; traces nest ingest and
query spans under runtime-provided roots like the streaming lane does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.frequency import FrequencySketch, HierarchicalFrequencySketch
from repro.durability.codec import (
    DurabilityError,
    SchemaError,
    decode_record,
    encode_record,
)
from repro.durability.wal import frame, replay_wal
from repro.problems.frequency import (
    FrequencyPlan,
    build_frequency_sketch,
    plan_frequency_sketch,
)
from repro.serving.streaming import RestoreReport

__all__ = [
    "FrequencyIngestReport",
    "FrequencyQueryResponse",
    "FrequencySession",
    "FrequencySessionManager",
]

#: Record kinds of the frequency durability payloads.
_CHECKPOINT_KIND = "frequency-session"
_WAL_KIND = "frequency-wal"

FrequencyEngine = Union[FrequencySketch, HierarchicalFrequencySketch]


@dataclass
class FrequencyIngestReport:
    """Outcome of one ``append_items`` call."""

    session_id: int
    items: int
    items_seen: int
    simulated_seconds: float
    shard: int


@dataclass
class FrequencyQueryResponse:
    """Answer to one frequency query through the session path.

    ``value`` carries the query's library-exact answer: a list of
    ``(id, estimate)`` pairs for heavy-hitter queries, a float for norm and
    range queries, an estimate array for point queries.
    """

    session_id: int
    kind: str
    value: object
    simulated_seconds: float
    compute_seconds: float
    comm_seconds: float
    shard: int
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class FrequencySession:
    """One live frequency session: engine, plan, shard binding, counters."""

    session_id: int
    engine: FrequencyEngine
    plan: FrequencyPlan
    shard: int
    seed: int
    batches: int = 0
    queries: int = 0
    last_used: float = 0.0
    wal_batches: int = 0
    durable_seq: int = 0

    def stats(self) -> Dict[str, float]:
        """The session's own counters (serving keys + plan operating point)."""
        return {
            "session_id": float(self.session_id),
            "shard": float(self.shard),
            "items_seen": float(self.engine.items_seen),
            "batches": float(self.batches),
            "queries": float(self.queries),
            "phi": float(self.plan.phi),
            "eps": float(self.plan.eps),
            "width": float(self.plan.width),
            "depth": float(self.plan.depth),
            "hierarchical": float(self.plan.hierarchical),
            "levels": float(self.plan.levels),
        }


class FrequencySessionManager:
    """Owns every live :class:`FrequencySession` of one server."""

    def __init__(self, server) -> None:
        self._server = server
        self._sessions: Dict[int, FrequencySession] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def _get(self, session_id: int) -> FrequencySession:
        session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown or closed frequency session {session_id}")
        return session

    def session(self, session_id: int) -> FrequencySession:
        """The live session object (for the runtime and tests)."""
        return self._get(session_id)

    @property
    def _durability(self):
        return self._server.config.durability

    @staticmethod
    def _key(session_id: int) -> str:
        return f"freq-session-{session_id}"

    def _touch(self, session: FrequencySession) -> None:
        session.last_used = self._server.pool[session.shard].elapsed

    # ------------------------------------------------------------------
    def open(
        self,
        domain: int,
        *,
        phi: float = 0.05,
        delta: float = 1e-3,
        branch: int = 16,
        need_ranges: bool = False,
        max_width: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> int:
        """Open a frequency session; returns its id (the server's id stream).

        The sketch is sized by :func:`plan_frequency_sketch` for the
        requested ``(phi, delta)`` operating point and built on a
        scheduler-chosen shard's executor, so every update and query is
        charged to that shard's simulated clock like any other request.
        """
        server = self._server
        plan = plan_frequency_sketch(
            domain,
            phi,
            delta,
            branch=branch,
            need_ranges=need_ranges,
            max_width=max_width,
        )
        shard = server.scheduler.place()
        use_seed = int(seed if seed is not None else server.config.seed)
        engine = build_frequency_sketch(
            plan, executor=server.pool[shard], seed=use_seed
        )
        session_id = server._next_id
        server._next_id += 1
        session = FrequencySession(
            session_id=session_id, engine=engine, plan=plan, shard=shard, seed=use_seed
        )
        self._sessions[session_id] = session
        self._touch(session)
        server.telemetry.record_frequency_open()
        if self._durability is not None:
            # Baseline checkpoint: the plan and seed live in the snapshot,
            # so WAL-only batches are recoverable from the very first append.
            self.checkpoint(session_id)
        return session_id

    # ------------------------------------------------------------------
    def append(
        self, session_id: int, ids, weights=None, *, root=None
    ) -> FrequencyIngestReport:
        """Fold one ``(ids, weights)`` batch into the session's sketch.

        ``root`` is an optional trace root (the runtime passes the one it
        opened at admission); without one a standalone ``frequency_ingest``
        trace is started here.  With durability, the batch is framed into
        the session's WAL before it is folded.
        """
        session = self._get(session_id)
        server = self._server
        tracer = server.tracer
        own_root = root is None and tracer.enabled
        ids_arr = np.atleast_1d(np.asarray(ids, dtype=np.int64)).ravel()
        w_arr = (
            None
            if weights is None
            else np.asarray(weights, dtype=np.float64).ravel()
        )
        durability = self._durability
        if durability is not None and ids_arr.size:
            payload = encode_record(
                _WAL_KIND,
                {"seq": session.durable_seq},
                {
                    "ids": ids_arr,
                    "weights": w_arr if w_arr is not None else np.zeros(0),
                },
            )
            durability.store.append_wal(self._key(session_id), frame(payload))
            session.durable_seq += 1
            session.wal_batches += 1
            server.telemetry.record_wal_append(len(payload))

        shard_clock = server.pool[session.shard]
        start = shard_clock.elapsed
        session.engine.update(ids_arr, w_arr)
        end = shard_clock.elapsed
        session.batches += 1
        self._touch(session)
        if (
            durability is not None
            and session.wal_batches >= durability.checkpoint_interval_batches
        ):
            self.checkpoint(session_id)
        server.telemetry.record_frequency_ingest(int(ids_arr.size), end - start)
        if tracer.enabled:
            if own_root:
                root = tracer.start_trace(
                    "frequency_ingest", start, session_id=session_id, lane="stream"
                )
            tracer.start_span(
                "freq_ingest", root, start, items=int(ids_arr.size), shard=session.shard
            ).finish(end)
            if own_root:
                tracer.end_trace(root, end)
        return FrequencyIngestReport(
            session_id=session_id,
            items=int(ids_arr.size),
            items_seen=int(session.engine.items_seen),
            simulated_seconds=end - start,
            shard=session.shard,
        )

    # ------------------------------------------------------------------
    def _respond(
        self,
        session: FrequencySession,
        kind: str,
        value,
        start: float,
        end: float,
        answer_bytes: float,
        root,
        own_root: bool,
        **extra,
    ) -> FrequencyQueryResponse:
        """Shared query epilogue: comm charge, telemetry, tracing, response."""
        server = self._server
        comm_seconds = server.scheduler.charge_transfer(
            f"frequency_{kind}", answer_bytes
        )
        session.queries += 1
        self._touch(session)
        compute_seconds = end - start
        server.telemetry.record_frequency_query(kind, compute_seconds + comm_seconds)
        tracer = server.tracer
        if tracer.enabled:
            if own_root:
                root = tracer.start_trace(
                    f"frequency_{kind}", start, session_id=session.session_id, lane="stream"
                )
            tracer.start_span(
                f"freq_{kind}", root, start, shard=session.shard, **extra
            ).finish(end)
            tracer.start_span("respond", root, end).finish(
                end + comm_seconds, comm_seconds=comm_seconds
            )
            if own_root:
                tracer.end_trace(root, end + comm_seconds)
        return FrequencyQueryResponse(
            session_id=session.session_id,
            kind=kind,
            value=value,
            simulated_seconds=compute_seconds + comm_seconds,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            shard=session.shard,
            extra=dict(extra),
        )

    def query_heavy_hitters(
        self,
        session_id: int,
        *,
        k: Optional[int] = None,
        phi: Optional[float] = None,
        root=None,
    ) -> FrequencyQueryResponse:
        """Serve the session's heavy hitters at level ``phi``.

        Hierarchical engines answer by dyadic descent (``top_k``; ``k``
        defaults to ``ceil(1 / phi)``, the largest possible number of
        ``phi``-heavy items); flat engines answer by the ``findHH`` scan
        with an optional top-``k`` truncation.  ``value`` is the engine's
        ``(id, estimate)`` list, bit-for-bit.
        """
        session = self._get(session_id)
        use_phi = float(phi if phi is not None else session.plan.phi)
        engine = session.engine
        shard_clock = self._server.pool[session.shard]
        start = shard_clock.elapsed
        if isinstance(engine, HierarchicalFrequencySketch):
            use_k = int(k if k is not None else int(np.ceil(1.0 / use_phi)))
            value: List[Tuple[int, float]] = engine.top_k(use_k, use_phi)
        else:
            value = engine.heavy_hitters(use_phi)
            if k is not None:
                value = value[: int(k)]
        end = shard_clock.elapsed
        answer_bytes = 16.0 * max(1, len(value))
        return self._respond(
            session, "heavy_hitters", value, start, end, answer_bytes,
            root, root is None and self._server.tracer.enabled,
            phi=use_phi, hits=len(value),
        )

    def query_norm(self, session_id: int, *, root=None) -> FrequencyQueryResponse:
        """Serve the session's l2-norm estimate (``value`` is a float)."""
        session = self._get(session_id)
        shard_clock = self._server.pool[session.shard]
        start = shard_clock.elapsed
        value = session.engine.l2_estimate()
        end = shard_clock.elapsed
        return self._respond(
            session, "norm", value, start, end, 8.0,
            root, root is None and self._server.tracer.enabled,
        )

    def query_range(
        self, session_id: int, lo: int, hi: int, *, root=None
    ) -> FrequencyQueryResponse:
        """Serve the estimated total weight of ids in ``[lo, hi)``.

        Requires a hierarchical engine (open the session with
        ``need_ranges=True`` or an address-space domain); a flat session
        raises ``RuntimeError`` -- a typed refusal, not a silent scan.
        """
        session = self._get(session_id)
        if not isinstance(session.engine, HierarchicalFrequencySketch):
            raise RuntimeError(
                f"frequency session {session_id} was opened without range "
                f"support; open with need_ranges=True for dyadic range queries"
            )
        shard_clock = self._server.pool[session.shard]
        start = shard_clock.elapsed
        value = session.engine.range_query(lo, hi)
        end = shard_clock.elapsed
        return self._respond(
            session, "range", value, start, end, 8.0,
            root, root is None and self._server.tracer.enabled,
            lo=int(lo), hi=int(hi),
        )

    def query_point(
        self, session_id: int, ids, *, root=None
    ) -> FrequencyQueryResponse:
        """Serve point estimates for the given ids (``value`` is an array)."""
        session = self._get(session_id)
        shard_clock = self._server.pool[session.shard]
        start = shard_clock.elapsed
        value = session.engine.point_query(ids)
        end = shard_clock.elapsed
        return self._respond(
            session, "point", value, start, end, 8.0 * max(1, value.size),
            root, root is None and self._server.tracer.enabled,
            count=int(value.size),
        )

    # ------------------------------------------------------------------
    def close(self, session_id: int) -> Dict[str, float]:
        """Close a session and return its final stats (durable state deleted)."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            raise KeyError(f"unknown or closed frequency session {session_id}")
        stats = session.stats()
        if self._durability is not None:
            self._durability.store.delete(self._key(session_id))
        self._server.telemetry.record_frequency_close()
        return stats

    # ------------------------------------------------------------------
    # durability: checkpoint / restore
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_engine_state(engine: FrequencyEngine) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Split an engine's ``state_dict`` into JSON meta + raw arrays."""
        state = engine.state_dict()
        if isinstance(engine, HierarchicalFrequencySketch):
            arrays: Dict[str, np.ndarray] = {}
            levels_meta = []
            for i, sub in enumerate(state["levels"]):
                sub = dict(sub)
                table = sub.pop("table")
                if table is not None:
                    arrays[f"level_{i}"] = table
                levels_meta.append(sub)
            return {"hierarchical": True, "branch": state["branch"], "levels": levels_meta}, arrays
        state = dict(state)
        table = state.pop("table")
        arrays = {"table": table} if table is not None else {}
        state["hierarchical"] = False
        return state, arrays

    @staticmethod
    def _decode_engine_state(engine: FrequencyEngine, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild and load the ``state_dict`` the encoder split apart."""
        if meta.get("hierarchical"):
            if not isinstance(engine, HierarchicalFrequencySketch):
                raise SchemaError("hierarchical snapshot for a flat frequency engine")
            levels = []
            for i, sub in enumerate(meta["levels"]):
                sub = dict(sub)
                sub["table"] = arrays.get(f"level_{i}")
                levels.append(sub)
            engine.load_state({"branch": meta["branch"], "levels": levels})
        else:
            if isinstance(engine, HierarchicalFrequencySketch):
                raise SchemaError("flat snapshot for a hierarchical frequency engine")
            state = dict(meta)
            state.pop("hierarchical", None)
            state["table"] = arrays.get("table")
            engine.load_state(state)

    def checkpoint(self, session_id: int) -> int:
        """Snapshot one session and truncate its WAL; returns blob size."""
        if self._durability is None:
            raise RuntimeError("server has no durability config; nothing to checkpoint to")
        session = self._get(session_id)
        state_meta, arrays = self._encode_engine_state(session.engine)
        plan = session.plan
        blob = encode_record(
            _CHECKPOINT_KIND,
            {
                "session_id": session.session_id,
                "durable_seq": session.durable_seq,
                "queries": session.queries,
                "batches": session.batches,
                "seed": session.seed,
                "plan": {
                    "domain": plan.domain,
                    "phi": plan.phi,
                    "delta": plan.delta,
                    "branch": plan.branch,
                    "need_ranges": plan.hierarchical,
                    "max_width": plan.width,
                },
                "state": state_meta,
            },
            arrays,
        )
        store = self._durability.store
        key = self._key(session_id)
        store.write_checkpoint(key, blob)
        store.reset_wal(key)
        session.wal_batches = 0
        self._server.telemetry.record_checkpoint(len(blob))
        return len(blob)

    def save(self) -> Dict[int, int]:
        """Checkpoint every live session; maps session id -> snapshot bytes."""
        return {sid: self.checkpoint(sid) for sid in sorted(self._sessions)}

    def _restore_one(self, session_id: int) -> Tuple[FrequencySession, int]:
        """Rebuild one session from checkpoint + WAL tail; returns replay count."""
        durability = self._durability
        if durability is None:
            raise RuntimeError("server has no durability config; nothing to restore from")
        server = self._server
        store = durability.store
        key = self._key(session_id)
        blob = store.read_checkpoint(key)
        if blob is None:
            raise KeyError(f"no checkpoint stored for frequency session {session_id}")
        try:
            record = decode_record(blob, expect_kind=_CHECKPOINT_KIND)
        except DurabilityError:
            server.telemetry.record_corrupt_checkpoint()
            raise
        meta = record.meta
        try:
            base_seq = int(meta["durable_seq"])
            plan_meta = dict(meta["plan"])
            seed = int(meta["seed"])
        except (KeyError, TypeError, ValueError) as exc:
            server.telemetry.record_corrupt_checkpoint()
            raise SchemaError("frequency checkpoint is missing required metadata") from exc

        plan = plan_frequency_sketch(
            int(plan_meta["domain"]),
            float(plan_meta["phi"]),
            float(plan_meta["delta"]),
            branch=int(plan_meta["branch"]),
            need_ranges=bool(plan_meta["need_ranges"]),
            max_width=int(plan_meta["max_width"]),
        )
        shard = server.scheduler.place()
        engine = build_frequency_sketch(plan, executor=server.pool[shard], seed=seed)
        self._decode_engine_state(engine, dict(meta["state"]), record.arrays)

        replay = replay_wal(store.read_wal(key))
        if not replay.clean:
            server.telemetry.record_wal_truncation()
        replayed = 0
        next_seq = base_seq
        for payload in replay.payloads:
            try:
                wal = decode_record(payload, expect_kind=_WAL_KIND)
                seq = int(wal.meta["seq"])
            except (DurabilityError, KeyError, TypeError, ValueError):
                server.telemetry.record_wal_truncation()
                break
            if seq < base_seq:
                continue  # already inside the checkpoint: exactly-once replay
            ids = wal.arrays["ids"]
            weights = wal.arrays.get("weights")
            if weights is not None and weights.size == 0:
                weights = None
            engine.update(ids, weights)
            replayed += 1
            next_seq = seq + 1

        session = FrequencySession(
            session_id=session_id,
            engine=engine,
            plan=plan,
            shard=shard,
            seed=seed,
            batches=int(meta.get("batches", 0)) + replayed,
            queries=int(meta.get("queries", 0)),
            durable_seq=next_seq,
        )
        self._sessions[session_id] = session
        self._touch(session)
        server._next_id = max(server._next_id, session_id + 1)
        server.telemetry.record_restore(replayed)
        self.checkpoint(session_id)
        return session, replayed

    def restore(self, session_id: int) -> FrequencySession:
        """Restore one session from its durable state (checkpoint + WAL)."""
        if session_id in self._sessions:
            return self._sessions[session_id]
        session, _replayed = self._restore_one(session_id)
        return session

    def restore_all(self) -> RestoreReport:
        """Restore every durable frequency session from checkpoint + WAL.

        Returns a :class:`~repro.serving.streaming.RestoreReport`:
        ``restored`` maps session ids to replayed WAL batches,
        unrecoverable sessions land in ``failed`` with their typed error
        string -- the fallback is a running server without that session,
        never a wrong answer.
        """
        if self._durability is None:
            raise RuntimeError("server has no durability config; nothing to restore from")
        report = RestoreReport()
        prefix = "freq-session-"
        for key in self._durability.store.keys():
            if not key.startswith(prefix):
                continue
            try:
                session_id = int(key[len(prefix):])
            except ValueError:
                continue
            if session_id in self._sessions:
                continue
            try:
                _session, replayed = self._restore_one(session_id)
            except (DurabilityError, KeyError) as exc:
                report.failed[session_id] = f"{type(exc).__name__}: {exc}"
                continue
            report.restored[session_id] = replayed
        return report
