"""Concurrent serving runtime: admission control, lanes, shedding, elastic shards.

The synchronous :class:`~repro.serving.server.SketchServer` answers one call
at a time; this module turns it into a *runtime* that serves overlapping
traffic the way the ROADMAP's "heavy traffic from millions of users" demands:

* **Bounded admission queue** -- :meth:`AsyncSketchServer.submit` /
  :meth:`~AsyncSketchServer.submit_ridge` / streaming ingest all enqueue into
  one bounded queue; when it is full the caller gets a typed
  :class:`~repro.serving.requests.QueueFullError` immediately (backpressure)
  instead of unbounded buffering.
* **Per-problem-class priority lanes** -- least-squares, ridge and streaming
  work wait in separate lanes drained by weighted round-robin
  (:data:`~repro.serving.requests.LANES`), so a flood of ``append_rows``
  ingest cannot starve solve traffic and vice versa.
* **Deadline-aware load shedding** -- a request whose projected completion
  (queue delay already accrued plus the planner's service-time estimate) can
  no longer meet its ``latency_budget`` is *shed* with
  :class:`~repro.serving.requests.DeadlineExceededError` rather than solved
  late; the shed shows up in telemetry (`shed_deadline`, per-lane counters).
* **Worker pool** -- ``workers`` threads dispatch concurrently over the
  :class:`~repro.gpu.pool.ExecutorPool`: while one worker drives the
  bandwidth-bound sketch application of a fresh batch, another runs the
  compute-bound triangular solve of the previous one on a different shard.
  Per-shard locks keep each simulated clock single-writer; planning and
  placement happen under one dispatch lock, execution runs outside it.
* **Elastic shard scaling** -- an
  :class:`~repro.serving.scheduler.ElasticShardPolicy` grows the active
  shard set when queue depth or p95 latency breach their thresholds and
  shrinks it as load drains, every transition recorded as a
  :class:`~repro.serving.scheduler.ScaleEvent`.

Latencies in lane telemetry are *queue-inclusive* on the simulated clock:
admission stamps the request with the earliest instant any active shard
could start it, and completion is the executing shard's clock after the
solve -- so queueing delay, the thing admission control exists to bound, is
visible in ``lane_*_p95_seconds``.

Quick start::

    from repro.serving import AsyncSketchServer, ElasticShardPolicy

    runtime = AsyncSketchServer(
        shards=2, workers=4, queue_depth=64,
        elastic=ElasticShardPolicy(min_shards=1, max_shards=8),
    )
    futures = [runtime.submit(A, b, latency_budget=0.05) for b in batch]
    xs = [f.result() for f in futures]     # raises DeadlineExceededError if shed
    runtime.drain()
    print(runtime.stats()["requests_per_second"], runtime.active_shards)
    runtime.stop()
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.requests import (
    LANES,
    PRIORITY_NORMAL,
    AdmissionError,
    DeadlineExceededError,
    QueueFullError,
    SolveRequest,
    SolveResponse,
)
from repro.obs.trace import Span
from repro.serving.batcher import MicroBatcher
from repro.serving.scheduler import ElasticShardPolicy
from repro.serving.server import ServerConfig, SketchServer

__all__ = [
    "AsyncSketchServer",
    "RuntimeConfig",
    "RuntimeFuture",
]


@dataclass
class RuntimeConfig:
    """Configuration of the concurrent runtime (on top of a ServerConfig).

    Attributes
    ----------
    workers:
        Dispatcher threads.  More workers than active shards is useless
        (per-shard locks serialise same-shard work); the default sizes the
        pool to the elastic maximum so scale-ups are immediately usable.
    queue_depth:
        Bound on requests waiting across all lanes.  Admission past the
        bound raises :class:`~repro.serving.requests.QueueFullError`.
    lane_weights:
        Weighted round-robin share per admission lane.  The defaults give
        solve traffic half the dispatch slots, so bulk ridge or streaming
        ingest can never starve interactive solves -- and each lane has a
        nonzero weight, so nothing starves, full stop.
    elastic:
        Optional :class:`~repro.serving.scheduler.ElasticShardPolicy`.
        When set, the executor pool is provisioned at ``max_shards`` and
        the active set breathes between ``min_shards`` and ``max_shards``;
        when ``None`` the active set is fixed at the server's ``shards``.
    """

    workers: int = 4
    queue_depth: int = 64
    lane_weights: Dict[str, int] = field(
        default_factory=lambda: {"solve": 4, "ridge": 2, "stream": 2}
    )
    elastic: Optional[ElasticShardPolicy] = None

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        unknown = set(self.lane_weights) - set(LANES)
        if unknown:
            raise ValueError(f"unknown lanes in lane_weights: {sorted(unknown)}")
        for lane in LANES:
            if self.lane_weights.get(lane, 0) <= 0:
                raise ValueError(f"lane '{lane}' needs a positive weight (anti-starvation)")


_RUNTIME_FIELDS = {f.name for f in fields(RuntimeConfig)}


class RuntimeFuture:
    """Handle to one admitted request; resolves to a response or a typed error.

    ``result()`` blocks until the dispatcher finishes (or sheds) the request
    and either returns the response or raises the
    :class:`~repro.serving.requests.AdmissionError` subclass explaining why
    the request was not served.
    """

    def __init__(self, lane: str, request_id: int) -> None:
        self.lane = lane
        self.request_id = request_id
        self._event = threading.Event()
        self._response = None
        self._error: Optional[BaseException] = None

    # -- dispatcher side ------------------------------------------------
    def _resolve(self, response) -> None:
        self._response = response
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # -- caller side ----------------------------------------------------
    def done(self) -> bool:
        """Whether the request has completed or been shed."""
        return self._event.is_set()

    @property
    def shed(self) -> bool:
        """Whether the request was shed (only meaningful once done)."""
        return isinstance(self._error, AdmissionError)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The typed error the request failed with, or None on success."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        return self._error

    def result(self, timeout: Optional[float] = None):
        """Block for the response; raises the typed error if the request was shed."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        if self._error is not None:
            raise self._error
        return self._response

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.done():
            state = "shed" if self.shed else "done"
        return f"RuntimeFuture(lane='{self.lane}', id={self.request_id}, {state})"


@dataclass
class _LaneItem:
    """One non-batchable work item (ridge solve, stream append/query)."""

    kind: str  # "ridge" | "append" | "query"
    priority: int
    seq: int
    admitted_at: float
    future: RuntimeFuture
    payload: Tuple = ()
    root: Optional[Span] = None  # the request's trace root (None when tracing is off)

    def sort_key(self) -> Tuple[int, int]:
        return (self.priority, self.seq)


class AsyncSketchServer:
    """Concurrent front end over a :class:`~repro.serving.server.SketchServer`.

    Construction accepts a :class:`~repro.serving.server.ServerConfig` (or
    its keyword overrides) mixed with :class:`RuntimeConfig` keywords::

        AsyncSketchServer(shards=2, policy="cheapest_accurate",
                          workers=4, queue_depth=32,
                          elastic=ElasticShardPolicy(max_shards=8))

    The wrapped server is exposed as :attr:`server` but must not be driven
    through its synchronous ``submit``/``flush`` API while the runtime is
    running -- all traffic goes through the admission queue.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runtime: Optional[RuntimeConfig] = None,
        **overrides,
    ) -> None:
        runtime_overrides = {k: overrides.pop(k) for k in list(overrides) if k in _RUNTIME_FIELDS}
        if runtime is None:
            runtime = RuntimeConfig(**runtime_overrides)
        elif runtime_overrides:
            raise ValueError("pass either a RuntimeConfig or keyword overrides, not both")
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServerConfig or keyword overrides, not both")

        if runtime.elastic is not None:
            elastic = runtime.elastic
            pool_size = max(config.shards, elastic.max_shards)
            initial = min(max(config.shards, elastic.min_shards), elastic.max_shards)
            config = replace(config, shards=pool_size, active_shards=initial)
        self.config = config
        self.runtime_config = runtime
        self.server = SketchServer(config)

        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._shard_locks = [threading.Lock() for _ in range(self.server.pool.size)]
        self._stop = False
        self._paused = False
        self._in_flight = 0
        self._seq = 0
        self._completed_since_scale = 0
        # Epoch baseline for admission timestamps: refreshed from the pool
        # clocks only when the runtime is observed idle, so every request of
        # a burst is stamped with the same simulated arrival instant no
        # matter how the submitter and worker threads interleave (see
        # _admit_locked).
        self._admission_base = 0.0
        # EWMA of recent per-dispatch service estimates (calibrated when the
        # server's calibration mode is "active"): the service-time term of
        # the proactive elastic policy's predicted queue-drain time.
        self._service_ewma: Optional[float] = None

        # Lanes: fused solve requests live in a MicroBatcher (so the
        # runtime keeps the multi-RHS amortisation); ridge and streaming
        # items are plain priority-FIFO deques.  Streaming additionally
        # keeps per-session FIFOs with at most one item of a session in
        # flight, so ingest order within a session is preserved even with
        # many workers.
        self._solve_lane = MicroBatcher(max_batch=config.max_batch)
        self._solve_admitted: Dict[int, float] = {}
        self._trace_roots: Dict[int, Span] = {}
        self._ridge_lane: List[_LaneItem] = []
        self._stream_queues: Dict[int, Deque[_LaneItem]] = {}
        self._stream_ready: Deque[int] = deque()
        self._stream_busy: set = set()
        self._futures: Dict[int, RuntimeFuture] = {}

        weights = runtime.lane_weights
        self._lane_cycle: List[str] = [
            lane for lane in LANES for _ in range(int(weights.get(lane, 0)))
        ]
        self._cycle_idx = 0

        self._threads: List[threading.Thread] = []
        self.start()

    # ------------------------------------------------------------------
    # passthroughs
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The wrapped server's telemetry (lane/shed/queue metrics land here)."""
        return self.server.telemetry

    @property
    def tracer(self):
        """The wrapped server's tracer (request span trees land here)."""
        return self.server.tracer

    @property
    def metrics(self):
        """The wrapped server's metrics registry (the scrape surface)."""
        return self.server.metrics

    @property
    def calibration(self):
        """The wrapped server's cost-calibration estimator (None when off)."""
        return self.server.calibration

    @property
    def scheduler(self):
        """The wrapped server's shard scheduler (scale events live here)."""
        return self.server.scheduler

    @property
    def pool(self):
        """The wrapped server's executor pool."""
        return self.server.pool

    @property
    def active_shards(self) -> int:
        """Current size of the elastic active shard set."""
        return self.server.scheduler.active_shards

    @property
    def pending(self) -> int:
        """Work items admitted but not yet dispatched."""
        with self._lock:
            return self._queue_depth_locked()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._stop = False
            self._threads = [
                threading.Thread(
                    target=self._worker_loop, name=f"sketch-worker-{i}", daemon=True
                )
                for i in range(self.runtime_config.workers)
            ]
        for t in self._threads:
            t.start()

    def pause(self) -> None:
        """Hold dispatching: admissions continue, workers idle.

        Lets a burst be admitted atomically before any of it dispatches --
        the saturation benchmarks use this to make queue-depth behaviour
        deterministic, and an operator can use it to freeze a misbehaving
        runtime without losing the queue.
        """
        with self._work:
            self._paused = True

    def resume(self) -> None:
        """Release a :meth:`pause`; queued work dispatches immediately."""
        with self._work:
            self._paused = False
            self._work.notify_all()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the worker pool.

        ``drain=True`` (default) serves everything already admitted first;
        ``drain=False`` sheds the backlog with a typed ``shutdown`` error.
        A paused runtime stays paused until the backlog's fate is decided,
        so ``drain=False`` sheds everything instead of racing the workers.
        """
        if drain:
            self.resume()  # a paused runtime could never drain
            self.drain(timeout=timeout)
        with self._work:
            if not drain:
                self._shed_backlog_locked("shutdown")
            self._stop = True
            self._paused = False
            self._work.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "AsyncSketchServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until the queue is empty and no dispatch is in flight.

        After the backlog clears, the elastic policy is evaluated with the
        now-empty queue until it holds, so an idle runtime settles back to
        ``min_shards`` (the scale-*down* half of the load-spike contract).
        """
        with self._work:
            ok = self._work.wait_for(
                lambda: self._queue_depth_locked() == 0 and self._in_flight == 0,
                timeout=timeout,
            )
            if not ok:
                raise TimeoutError("drain timed out with work still pending")
            elastic = self.runtime_config.elastic
            if elastic is not None:
                while True:
                    p95 = self.telemetry.recent_p95()
                    target, reason = elastic.decide(self.active_shards, 0, p95)
                    if target >= self.active_shards:
                        # Only step *down* at drain time: a stale p95 breach
                        # must not pin an idle runtime at max_shards.
                        break
                    self.scheduler.set_active(
                        target, reason=f"drain: {reason}", queue_depth=0,
                        p95_seconds=p95 if p95 is not None else 0.0,
                    )

    def checkpoint(self, *, drain: bool = True, timeout: Optional[float] = None) -> Dict[int, int]:
        """Drain-then-checkpoint: a consistent durable snapshot of every session.

        The lifecycle is drain (serve everything already admitted, so no
        acknowledged append is missing from the snapshot), pause dispatch,
        wait out any straggling in-flight work, checkpoint every live
        session through :meth:`SketchServer.save`, then resume.  Returns
        ``{session_id: snapshot bytes}``.  With ``drain=False`` the backlog
        is left queued and only already-applied state is snapshotted --
        still consistent (the WAL already holds every acknowledged append),
        just with more tail to replay after a crash.
        """
        if drain:
            self.resume()  # a paused runtime could never drain
            self.drain(timeout=timeout)
        self.pause()
        try:
            with self._work:
                ok = self._work.wait_for(lambda: self._in_flight == 0, timeout=timeout)
                if not ok:
                    raise TimeoutError("checkpoint timed out with dispatches in flight")
            return self.server.save()
        finally:
            self.resume()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _queue_depth_locked(self) -> int:
        stream_pending = sum(len(q) for q in self._stream_queues.values())
        return self._solve_lane.pending + len(self._ridge_lane) + stream_pending

    def _virtual_now_locked(self) -> float:
        """Admission timestamp: the earliest instant any active shard is free."""
        return self.server.pool.min_load(among=self.scheduler.active_set())

    def _admit_locked(self, lane: str) -> float:
        """Common admission gate; returns the admission timestamp.

        The timestamp is an *epoch baseline*, not a live clock read: it is
        refreshed from :meth:`_virtual_now_locked` only when the runtime is
        idle (empty queue, nothing in flight) and reused for every request
        admitted while work remains outstanding.  A live read would make the
        stamp depend on how far the worker threads happened to have
        progressed at the wall-clock instant of admission -- a
        submitter-vs-worker race that let wall-clock-only effects (tracing
        span construction, GC pauses, OS scheduling) perturb the *simulated*
        queue-inclusive latencies.  With the epoch stamp, a burst's
        latencies are a deterministic function of admission order, which is
        what the "observability is zero simulated cost" contract needs.
        """
        if self._stop:
            raise RuntimeError("runtime is stopped")
        depth = self._queue_depth_locked()
        if depth >= self.runtime_config.queue_depth:
            self.telemetry.record_admission_reject(lane)
            raise QueueFullError(
                f"admission queue full ({depth}/{self.runtime_config.queue_depth})",
                lane=lane,
                queue_depth=depth,
            )
        self.telemetry.record_admission(lane)
        self.telemetry.record_queue_depth(depth + 1)
        if depth == 0 and self._in_flight == 0:
            self._admission_base = self._virtual_now_locked()
        return self._admission_base

    def _start_root_locked(
        self, lane: str, admitted_at: float, request_id: int, **attrs
    ) -> Optional[Span]:
        """Open a request's trace root at its admission timestamp.

        The root carries the queue context (admission event + depth) that
        the serving layer cannot see; the dispatcher later threads it into
        the server so plan/batch/solve spans nest under it, and whoever
        decides the request's fate (response, shed, error) ends the trace.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return None
        root = tracer.start_trace(
            "request", admitted_at, request_id=request_id, lane=lane, **attrs
        )
        tracer.event(
            "admission", root, admitted_at,
            queue_depth=self._queue_depth_locked() + 1,
        )
        return root

    def _end_root_shed(self, root: Optional[Span], reason: str, at: float) -> None:
        """Terminal ``shed`` span + trace end for a request that won't run."""
        tracer = self.tracer
        if root is None or not tracer.enabled:
            return
        tracer.event("shed", root, at, status="shed", reason=reason)
        tracer.end_trace(root, at, status="shed")

    def _end_root_error(self, root: Optional[Span], error: BaseException, at: float) -> None:
        """Terminal trace end for a request whose dispatch raised."""
        tracer = self.tracer
        if root is None or not tracer.enabled:
            return
        tracer.end_trace(root, at, status="error", error=type(error).__name__)

    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> RuntimeFuture:
        """Admit one least-squares request; returns its :class:`RuntimeFuture`.

        Raises :class:`~repro.serving.requests.QueueFullError` when the
        admission queue is at its bound.  ``latency_budget`` doubles as the
        deadline the dispatcher sheds against.
        """
        # Validate before admitting: a malformed request must raise without
        # touching the admission counters or the queue-depth samples.
        request = SolveRequest(
            request_id=-1,
            a=a,
            b=b,
            kind=kind if kind is not None else self.config.kind,
            solver=solver if solver is not None else self.config.solver,
            accuracy_target=accuracy_target,
            latency_budget=latency_budget,
            priority=priority,
        )
        with self._work:
            admitted_at = self._admit_locked("solve")
            request.request_id = self.server._next_id
            self.server._next_id += 1
            future = RuntimeFuture("solve", request.request_id)
            self._futures[request.request_id] = future
            self._solve_admitted[request.request_id] = admitted_at
            root = self._start_root_locked(
                "solve", admitted_at, request.request_id, kind=request.kind
            )
            if root is not None:
                self._trace_roots[request.request_id] = root
            self._solve_lane.add(request)
            self._work.notify()
        return future

    def solve(self, a: np.ndarray, b: np.ndarray, **options) -> SolveResponse:
        """Convenience: submit one request and block for its response."""
        return self.submit(a, b, **options).result()

    def submit_ridge(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lam: float,
        *,
        kind: Optional[str] = None,
        solver: Optional[str] = None,
        accuracy_target: Optional[float] = None,
        latency_budget: Optional[float] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> RuntimeFuture:
        """Admit one ridge request into the ``ridge`` lane."""
        # Same shape/lambda checks _plan_ridge applies, run *before*
        # admission so bad input raises here without skewing telemetry.
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or a.shape[0] <= a.shape[1]:
            raise ValueError("A must be a tall (d > n) matrix")
        if b.shape[0] != a.shape[0]:
            raise ValueError("b must have one entry per row of A")
        if lam <= 0.0:
            raise ValueError("submit_ridge needs a positive lam; use submit() otherwise")
        with self._work:
            admitted_at = self._admit_locked("ridge")
            future = RuntimeFuture("ridge", self.server._next_id)
            self.server._next_id += 1
            item = _LaneItem(
                kind="ridge",
                priority=int(priority),
                seq=self._seq,
                admitted_at=admitted_at,
                future=future,
                root=self._start_root_locked("ridge", admitted_at, future.request_id),
                payload=(
                    a,
                    b,
                    float(lam),
                    {
                        "kind": kind,
                        "solver": solver,
                        "accuracy_target": accuracy_target,
                        "latency_budget": latency_budget,
                    },
                ),
            )
            self._seq += 1
            self._ridge_lane.append(item)
            self._ridge_lane.sort(key=_LaneItem.sort_key)
            self._work.notify()
        return future

    # ------------------------------------------------------------------
    # streaming through the queue
    # ------------------------------------------------------------------
    def open_stream(self, n: int, **options) -> int:
        """Open a streaming session (control plane: immediate, not queued)."""
        with self._lock:
            return self.server.open_stream(n, **options)

    def append_rows(
        self, session_id: int, rows: np.ndarray, targets: np.ndarray
    ) -> RuntimeFuture:
        """Admit one ingest batch into the ``stream`` lane.

        Batches of one session dispatch strictly in admission order (the
        window algebra is order-sensitive for decayed/sliding modes), but
        different sessions interleave freely across workers and shards.
        The future resolves to the session's
        :class:`~repro.streaming.solver.IngestReport`.
        """
        return self._submit_stream("append", session_id, (np.asarray(rows), np.asarray(targets)))

    def query_solution(self, session_id: int) -> RuntimeFuture:
        """Admit one solution query for a session (``stream`` lane)."""
        return self._submit_stream("query", session_id, ())

    # ------------------------------------------------------------------
    # frequency sessions through the queue (same lane as streaming)
    # ------------------------------------------------------------------
    def open_frequency_stream(self, domain: int, **options) -> int:
        """Open a frequency session (control plane: immediate, not queued)."""
        with self._lock:
            return self.server.open_frequency_stream(domain, **options)

    def append_items(self, session_id: int, ids, weights=None) -> RuntimeFuture:
        """Admit one ``(ids, weights)`` batch into the ``stream`` lane.

        Frequency sessions share the streaming lane's per-session FIFO
        discipline: one session's batches and queries dispatch in admission
        order, different sessions interleave freely.  The future resolves to
        a :class:`~repro.serving.frequency.FrequencyIngestReport`.
        """
        return self._submit_stream("freq_append", session_id, (ids, weights))

    def query_heavy_hitters(
        self, session_id: int, *, k: Optional[int] = None, phi: Optional[float] = None
    ) -> RuntimeFuture:
        """Admit one heavy-hitter query (``stream`` lane); resolves to the
        session's :class:`~repro.serving.frequency.FrequencyQueryResponse`."""
        return self._submit_stream("freq_hh", session_id, (k, phi))

    def query_norm(self, session_id: int) -> RuntimeFuture:
        """Admit one l2-norm query for a frequency session (``stream`` lane)."""
        return self._submit_stream("freq_norm", session_id, ())

    def query_range(self, session_id: int, lo: int, hi: int) -> RuntimeFuture:
        """Admit one dyadic range query for a frequency session."""
        return self._submit_stream("freq_range", session_id, (int(lo), int(hi)))

    def query_point(self, session_id: int, ids) -> RuntimeFuture:
        """Admit one point-frequency query for a frequency session."""
        return self._submit_stream("freq_point", session_id, (ids,))

    def close_frequency_stream(self, session_id: int) -> Dict[str, float]:
        """Close a frequency session after its queued work drains."""
        with self._work:
            self._work.wait_for(
                lambda: not self._stream_queues.get(session_id)
                and session_id not in self._stream_busy
            )
            self._stream_queues.pop(session_id, None)
            return self.server.close_frequency_stream(session_id)

    def _submit_stream(self, kind: str, session_id: int, payload: Tuple) -> RuntimeFuture:
        with self._work:
            if (
                session_id not in self.server.streams
                and session_id not in self.server.frequencies
            ):
                raise KeyError(f"unknown or closed streaming session {session_id}")
            admitted_at = self._admit_locked("stream")
            future = RuntimeFuture("stream", session_id)
            item = _LaneItem(
                kind=kind,
                priority=PRIORITY_NORMAL,
                seq=self._seq,
                admitted_at=admitted_at,
                future=future,
                payload=(session_id,) + payload,
                root=self._start_root_locked(
                    "stream", admitted_at, session_id, op=kind
                ),
            )
            self._seq += 1
            queue = self._stream_queues.setdefault(session_id, deque())
            queue.append(item)
            if session_id not in self._stream_busy and len(queue) == 1:
                self._stream_ready.append(session_id)
            self._work.notify()
        return future

    def close_stream(self, session_id: int) -> Dict[str, float]:
        """Close a session after its queued work drains; returns final stats."""
        with self._work:
            self._work.wait_for(
                lambda: not self._stream_queues.get(session_id)
                and session_id not in self._stream_busy
            )
            self._stream_queues.pop(session_id, None)
            return self.server.close_stream(session_id)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _has_work_locked(self) -> bool:
        return (
            self._solve_lane.pending > 0
            or bool(self._ridge_lane)
            or bool(self._stream_ready)
        )

    def _next_work_locked(self):
        """Weighted round-robin over the lanes; returns a dispatchable unit."""
        n = len(self._lane_cycle)
        for step in range(n):
            lane = self._lane_cycle[(self._cycle_idx + step) % n]
            if lane == "solve" and self._solve_lane.pending > 0:
                self._cycle_idx = (self._cycle_idx + step + 1) % n
                return ("solve", self._solve_lane.pop_batch())
            if lane == "ridge" and self._ridge_lane:
                self._cycle_idx = (self._cycle_idx + step + 1) % n
                return ("ridge", self._ridge_lane.pop(0))
            if lane == "stream" and self._stream_ready:
                self._cycle_idx = (self._cycle_idx + step + 1) % n
                session_id = self._stream_ready.popleft()
                item = self._stream_queues[session_id].popleft()
                self._stream_busy.add(session_id)
                return ("stream", item)
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._stop and (self._paused or not self._has_work_locked()):
                    self._work.wait()
                if self._stop and not self._has_work_locked():
                    self._work.notify_all()
                    return
                unit = self._next_work_locked()
                if unit is None:  # pragma: no cover - racing pop, retry
                    continue
                self._in_flight += 1
            try:
                lane, work = unit
                if lane == "solve":
                    self._dispatch_solve(work)
                elif lane == "ridge":
                    self._dispatch_ridge(work)
                else:
                    self._dispatch_stream(work)
            finally:
                with self._work:
                    self._in_flight -= 1
                    self.telemetry.record_queue_depth(self._queue_depth_locked())
                    self._maybe_scale_locked()
                    self._work.notify_all()

    # -- solve lane -----------------------------------------------------
    def _solve_comm_estimate(self, batch) -> float:
        """Result-return transfer seconds the batch's latency will include."""
        n = batch.a.shape[1]
        return self.scheduler.estimate_transfer(
            float(n) * batch.size * batch.a.dtype.itemsize
        )

    def _dispatch_solve(self, batch) -> None:
        roots: Dict[int, Span] = {}
        try:
            with self._lock:
                admitted_at = min(
                    self._solve_admitted.pop(req.request_id) for req in batch.requests
                )
                for req in batch.requests:
                    root = self._trace_roots.pop(req.request_id, None)
                    if root is not None:
                        roots[req.request_id] = root
                planned = self.server._plan_batch(batch)
                budget = batch.requests[0].latency_budget
                if budget is not None:
                    # Earliest effective start (queued work included) +
                    # service estimate + result-return transfer: the same
                    # three terms the completed request's queue-inclusive
                    # latency is built from, so a saturated queue rejects
                    # late requests instead of solving them past budget.
                    start = self.scheduler.min_effective_load()
                    projected = (
                        max(0.0, start - admitted_at)
                        + float(planned[0].costs.get(planned[0].solver, 0.0))
                        + self._solve_comm_estimate(batch)
                    )
                    if projected > budget:
                        self._shed_solve_locked(batch, projected, budget, roots)
                        return
                placed = self.server._plan_and_place(batch, planned)
                reservation = placed.estimated_service_seconds
                self._note_service_estimate_locked(reservation)
                self.scheduler.reserve(placed.shard, reservation)
            try:
                with self._shard_locks[placed.shard]:
                    responses = self.server._run_placed(
                        batch, placed, admitted_at=admitted_at, roots=roots
                    )
            finally:
                self.scheduler.release(placed.shard, reservation)
            with self._lock:
                for resp in responses:
                    self.telemetry.record_lane_latency("solve", resp.simulated_seconds)
                    future = self._futures.pop(resp.request_id, None)
                    if future is not None:
                        future._resolve(resp)
        except Exception as exc:
            # A failed dispatch must never kill the worker or strand the
            # riders' futures: reject every one with the actual error.
            with self._lock:
                now = self._virtual_now_locked()
                for req in batch.requests:
                    self._solve_admitted.pop(req.request_id, None)
                    root = roots.pop(req.request_id, None) or self._trace_roots.pop(
                        req.request_id, None
                    )
                    self._end_root_error(root, exc, now)
                    future = self._futures.pop(req.request_id, None)
                    if future is not None:
                        future._reject(exc)

    def _shed_solve_locked(
        self,
        batch,
        projected: float,
        budget: float,
        roots: Optional[Dict[int, Span]] = None,
    ) -> None:
        self.telemetry.record_shed("solve", "deadline", count=batch.size)
        now = self._virtual_now_locked()
        for req in batch.requests:
            future = self._futures.pop(req.request_id, None)
            error = DeadlineExceededError(
                f"request {req.request_id} shed: projected completion "
                f"{projected:.3e}s exceeds budget {budget:.3e}s",
                lane="solve",
                request_id=req.request_id,
                projected_seconds=projected,
                budget_seconds=budget,
            )
            if roots is not None:
                self._end_root_shed(roots.pop(req.request_id, None), "deadline", now)
            if future is not None:
                future._reject(error)

    # -- ridge lane -----------------------------------------------------
    def _dispatch_ridge(self, item: _LaneItem) -> None:
        a, b, lam, options = item.payload
        try:
            with self._lock:
                plan_, spec, policy, kind = self.server._plan_ridge(a, b, lam, **options)
                budget = spec.latency_budget
                if budget is not None:
                    start = self.scheduler.min_effective_load()
                    comm = self.scheduler.estimate_transfer(
                        float(spec.n) * spec.nrhs * a.dtype.itemsize
                    )
                    projected = (
                        max(0.0, start - item.admitted_at)
                        + float(plan_.costs.get(plan_.solver, 0.0))
                        + comm
                    )
                    if projected > budget:
                        self.telemetry.record_shed("ridge", "deadline")
                        self._end_root_shed(item.root, "deadline", self._virtual_now_locked())
                        item.future._reject(
                            DeadlineExceededError(
                                f"ridge request shed: projected {projected:.3e}s "
                                f"exceeds budget {budget:.3e}s",
                                lane="ridge",
                                request_id=item.future.request_id,
                                projected_seconds=projected,
                                budget_seconds=budget,
                            )
                        )
                        return
                placed = self.server._place_ridge(plan_, spec, kind)
                reservation = placed.estimated_service_seconds
                self._note_service_estimate_locked(reservation)
                self.scheduler.reserve(placed.shard, reservation)
            try:
                with self._shard_locks[placed.shard]:
                    response = self.server._run_ridge(
                        a,
                        b,
                        lam,
                        placed,
                        policy=policy,
                        kind=kind,
                        solver=options.get("solver"),
                        admitted_at=item.admitted_at,
                        request_id=item.future.request_id,
                        root=item.root,
                    )
            finally:
                self.scheduler.release(placed.shard, reservation)
            self.telemetry.record_lane_latency("ridge", response.simulated_seconds)
            item.future._resolve(response)
        except Exception as exc:  # input validation errors reach the caller
            self._end_root_error(item.root, exc, item.admitted_at)
            item.future._reject(exc)

    # -- stream lane ----------------------------------------------------
    def _dispatch_stream(self, item: _LaneItem) -> None:
        session_id = item.payload[0]
        try:
            if item.kind.startswith("freq_"):
                session = self.server.frequencies.session(session_id)
            else:
                session = self.server.streams.session(session_id)
            with self._shard_locks[session.shard]:
                if item.kind == "append":
                    _, rows, targets = item.payload
                    result: object = self.server.append_rows(
                        session_id, rows, targets, root=item.root
                    )
                elif item.kind == "query":
                    result = self.server.query_solution(session_id, root=item.root)
                elif item.kind == "freq_append":
                    _, ids, weights = item.payload
                    result = self.server.append_items(
                        session_id, ids, weights, root=item.root
                    )
                elif item.kind == "freq_hh":
                    _, k, phi = item.payload
                    result = self.server.query_heavy_hitters(
                        session_id, k=k, phi=phi, root=item.root
                    )
                elif item.kind == "freq_norm":
                    result = self.server.query_norm(session_id, root=item.root)
                elif item.kind == "freq_range":
                    _, lo, hi = item.payload
                    result = self.server.query_range(session_id, lo, hi, root=item.root)
                elif item.kind == "freq_point":
                    _, ids = item.payload
                    result = self.server.query_point(session_id, ids, root=item.root)
                else:  # pragma: no cover - submit() only produces the kinds above
                    raise RuntimeError(f"unknown stream-lane kind {item.kind!r}")
            done_at = self.server.pool[session.shard].elapsed
            self.telemetry.record_lane_latency(
                "stream", max(0.0, done_at - item.admitted_at)
            )
            if item.root is not None:
                # The session manager nests ingest/resolve/query spans under
                # the runtime's root but never ends it; close it at the
                # shard clock (finish() extends over any later respond span).
                self.tracer.end_trace(item.root, done_at)
            item.future._resolve(result)
        except Exception as exc:
            self._end_root_error(item.root, exc, item.admitted_at)
            item.future._reject(exc)
        finally:
            with self._work:
                self._stream_busy.discard(session_id)
                queue = self._stream_queues.get(session_id)
                if queue:
                    self._stream_ready.append(session_id)
                    self._work.notify()

    # ------------------------------------------------------------------
    # elastic scaling
    # ------------------------------------------------------------------
    def _note_service_estimate_locked(self, seconds: float) -> None:
        """Fold one dispatch's service estimate into the drain-prediction EWMA."""
        if seconds <= 0.0:
            return
        if self._service_ewma is None:
            self._service_ewma = float(seconds)
        else:
            self._service_ewma = 0.7 * self._service_ewma + 0.3 * float(seconds)

    def _predicted_drain_locked(self, depth: int) -> Optional[float]:
        """Projected seconds to clear the backlog at current capacity."""
        if self._service_ewma is None or depth <= 0:
            return None
        return depth * self._service_ewma / max(self.active_shards, 1)

    def _maybe_scale_locked(self) -> None:
        elastic = self.runtime_config.elastic
        if elastic is None:
            return
        self._completed_since_scale += 1
        if self._completed_since_scale < elastic.cooldown_batches:
            return
        depth = self._queue_depth_locked()
        p95 = self.telemetry.recent_p95()
        drain_prediction = (
            self._predicted_drain_locked(depth) if elastic.proactive else None
        )
        if drain_prediction is not None:
            self.server.metrics.gauge("runtime_predicted_drain_seconds").set(drain_prediction)
        target, reason = elastic.decide(
            self.active_shards, depth, p95, predicted_drain_seconds=drain_prediction
        )
        if target != self.active_shards:
            self.scheduler.set_active(
                target,
                reason=reason,
                queue_depth=depth,
                p95_seconds=p95 if p95 is not None else 0.0,
            )
        self._completed_since_scale = 0

    # ------------------------------------------------------------------
    # shutdown shedding
    # ------------------------------------------------------------------
    def _shed_backlog_locked(self, reason: str) -> None:
        now = self._virtual_now_locked()
        for batch in self._solve_lane.drain():
            self.telemetry.record_shed("solve", reason, count=batch.size)
            for req in batch.requests:
                self._solve_admitted.pop(req.request_id, None)
                self._end_root_shed(
                    self._trace_roots.pop(req.request_id, None), reason, now
                )
                future = self._futures.pop(req.request_id, None)
                if future is not None:
                    future._reject(
                        AdmissionError(
                            f"request {req.request_id} shed: {reason}",
                            lane="solve",
                            request_id=req.request_id,
                        )
                    )
        for item in self._ridge_lane:
            self.telemetry.record_shed("ridge", reason)
            self._end_root_shed(item.root, reason, now)
            item.future._reject(AdmissionError(f"ridge request shed: {reason}", lane="ridge"))
        self._ridge_lane.clear()
        for session_id, queue in self._stream_queues.items():
            for item in queue:
                self.telemetry.record_shed("stream", reason)
                self._end_root_shed(item.root, reason, now)
                item.future._reject(
                    AdmissionError(f"stream work shed: {reason}", lane="stream")
                )
            queue.clear()
        self._stream_ready.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Server statistics plus the runtime's own headline numbers."""
        out = self.server.stats()
        with self._lock:
            out["queue_depth"] = float(self._queue_depth_locked())
            out["in_flight"] = float(self._in_flight)
        out["workers"] = float(self.runtime_config.workers)
        out["queue_bound"] = float(self.runtime_config.queue_depth)
        return out

    def scale_events(self):
        """The scheduler's recorded :class:`ScaleEvent` timeline."""
        return list(self.scheduler.scale_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncSketchServer(workers={self.runtime_config.workers}, "
            f"queue_depth={self.runtime_config.queue_depth}, "
            f"active_shards={self.active_shards}/{self.server.pool.size})"
        )
