"""Serving layer: batched, cached, sharded sketch-and-solve under load.

The ROADMAP's north star asks for a system that "serves heavy traffic from
millions of users"; this package is the layer that turns the reproduction's
sketch operators and solvers into such a service:

* :class:`~repro.serving.server.SketchServer` -- the front end accepting
  ``solve(A, b)`` and ``sketch(A)`` requests, plus the problem-class
  endpoints ``solve_ridge(A, b, lam)`` (planner-routed Tikhonov
  regression) and ``approx_lowrank(A, rank)`` (randomized range finder /
  Frequent Directions) backed by :mod:`repro.problems`.
* :class:`~repro.serving.batcher.MicroBatcher` -- coalesces same-matrix
  least-squares requests into fused multi-RHS solves (one ``S A`` sketch and
  one GEQRF per batch instead of per request).
* :class:`~repro.serving.cache.OperatorCache` -- LRU cache of sketch
  operators keyed on ``(kind, d, n, k, seed, dtype)``; sketch state is a pure
  function of its key (hash-seeded, cf. the CSVec lineage), so it is cached
  once and shared across every request with the same shape.
* :class:`~repro.serving.scheduler.ShardScheduler` -- places batches on an
  :class:`~repro.gpu.pool.ExecutorPool` of simulated GPU workers
  (cache-affinity first, least-loaded otherwise) and charges cross-shard
  traffic with the Section-7 alpha-beta model.
* :class:`~repro.serving.telemetry.ServingTelemetry` -- p50/p95/p99 latency,
  throughput, batch-size, hit-rate, per-solver histogram, fallback-count and
  streaming-session reporting.
* :class:`~repro.serving.runtime.AsyncSketchServer` -- the *concurrent
  runtime*: a bounded admission queue with per-problem-class priority lanes
  (weighted round-robin, so streaming ingest cannot starve solves),
  deadline-aware load shedding (typed
  :class:`~repro.serving.requests.QueueFullError` /
  :class:`~repro.serving.requests.DeadlineExceededError`), a worker pool
  overlapping sketch application and planner-routed solves across shards,
  and an :class:`~repro.serving.scheduler.ElasticShardPolicy` growing and
  shrinking the active shard set from queue-depth and p95 telemetry.
* :mod:`repro.serving.streaming` -- streaming sessions
  (``SketchServer.open_stream`` / ``append_rows`` / ``query_solution`` /
  ``close_stream``): a :class:`~repro.streaming.solver.StreamingSolver` per
  session, pinned to a shard, its window-sketch operator session-keyed in
  the operator cache, with per-session ingest/staleness/re-solve telemetry --
  and, when the config carries a
  :class:`~repro.durability.store.DurabilityConfig`, crash-safe: appends are
  write-ahead-logged before folding, sessions checkpoint periodically,
  ``SketchServer.save()``/``restore()`` round-trip the whole session set
  through the store, and TTL / ``max_sessions`` eviction policies bound
  live-session memory (durable sessions passivate and resurrect on touch).
* :mod:`repro.serving.frequency` -- frequency-analytics sessions
  (``SketchServer.open_frequency_stream`` / ``append_items`` /
  ``query_heavy_hitters`` / ``query_norm`` / ``query_range`` /
  ``query_point``): a planned flat or hierarchical frequency sketch
  (:mod:`repro.core.frequency`) per session, served bit-for-bit identical
  to direct library calls, WAL-before-fold durable like solver sessions,
  with ``frequency_*`` telemetry and the same async stream lane.

Every batch dispatches through the solver registry
(:mod:`repro.linalg.registry`): ``ServerConfig(policy=...)`` selects
``"fixed"`` (run the requested solver as-is), ``"cheapest_accurate"`` or
``"adaptive"`` -- the latter two probe each matrix's conditioning and route
to the cheapest registered solver whose stability floor meets the request's
accuracy target, walking the planner's fallback chain on breakdown.

Quick start::

    from repro.serving import SketchServer

    server = SketchServer(kind="multisketch", shards=2, max_batch=16,
                          policy="cheapest_accurate", accuracy_target=1e-8)
    for b in observations:              # many RHS against one design matrix
        server.submit(A, b)
    responses = server.flush()          # fused into multi-RHS solves
    print(server.stats()["requests_per_second"])
"""

from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.cache import (
    CacheEntry,
    CacheStats,
    OperatorCache,
    build_operator,
    operator_cache_key,
    resolve_embedding_dim,
)
from repro.serving.requests import (
    LANES,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AdmissionError,
    DeadlineExceededError,
    LowRankResponse,
    QueueFullError,
    SketchResponse,
    SolveRequest,
    SolveResponse,
    normalize_kind,
    normalize_lane,
    normalize_policy,
    normalize_solver,
)
from repro.serving.frequency import (
    FrequencyIngestReport,
    FrequencyQueryResponse,
    FrequencySession,
    FrequencySessionManager,
)
from repro.serving.runtime import AsyncSketchServer, RuntimeConfig, RuntimeFuture
from repro.serving.scheduler import ElasticShardPolicy, ScaleEvent, ShardScheduler
from repro.serving.server import PlacedBatch, ServerConfig, SketchServer, naive_solve_loop
from repro.serving.streaming import (
    IngestReport,
    RestoreReport,
    StreamSession,
    StreamSolutionResponse,
    StreamingSessionManager,
    stream_session_cache_key,
)
from repro.serving.telemetry import LatencySummary, ServingTelemetry

__all__ = [
    "AdmissionError",
    "AsyncSketchServer",
    "DeadlineExceededError",
    "ElasticShardPolicy",
    "LANES",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PlacedBatch",
    "QueueFullError",
    "RuntimeConfig",
    "RuntimeFuture",
    "ScaleEvent",
    "normalize_lane",
    "MicroBatch",
    "MicroBatcher",
    "CacheEntry",
    "CacheStats",
    "OperatorCache",
    "build_operator",
    "operator_cache_key",
    "resolve_embedding_dim",
    "LowRankResponse",
    "SketchResponse",
    "SolveRequest",
    "SolveResponse",
    "normalize_kind",
    "normalize_policy",
    "normalize_solver",
    "ShardScheduler",
    "ServerConfig",
    "SketchServer",
    "naive_solve_loop",
    "FrequencyIngestReport",
    "FrequencyQueryResponse",
    "FrequencySession",
    "FrequencySessionManager",
    "IngestReport",
    "RestoreReport",
    "StreamSession",
    "StreamSolutionResponse",
    "StreamingSessionManager",
    "stream_session_cache_key",
    "LatencySummary",
    "ServingTelemetry",
]
