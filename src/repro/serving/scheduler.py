"""Shard scheduling: spread micro-batches across a pool of GPU executors.

The scheduler owns an :class:`~repro.gpu.pool.ExecutorPool` and decides which
shard runs each micro-batch.  Two policies compose:

* **cache affinity** -- a batch whose operator is already cached runs on the
  shard that owns the operator (sketch state lives in device memory and is
  bound to its executor; moving it would cost more than queueing behind it);
* **least-loaded placement** -- a batch that needs a brand-new operator goes
  to the shard with the least accumulated simulated time, balancing load
  across distinct problem shapes.

Cross-shard traffic (shipping a batch's solution back to the front end,
replicating operator state) is charged with the same alpha-beta model the
distributed layer uses (:class:`repro.distributed.comm.CommCostModel`) and
recorded as :class:`repro.distributed.comm.CommRecord` entries, so serving
experiments report communication with the exact accounting of Section 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.distributed.comm import CommCostModel, CommRecord
from repro.gpu.pool import ExecutorPool


class ShardScheduler:
    """Places work on an executor pool and accounts cross-shard traffic.

    Parameters
    ----------
    pool:
        The executor pool to schedule onto.
    cost_model:
        Alpha-beta communication model for front-end <-> shard transfers;
        defaults to the distributed layer's defaults (10 us latency,
        25 GB/s links).
    """

    def __init__(self, pool: ExecutorPool, cost_model: Optional[CommCostModel] = None) -> None:
        self.pool = pool
        self.cost_model = cost_model if cost_model is not None else CommCostModel()
        self.records: List[CommRecord] = []
        self._batches_per_shard: List[int] = [0] * pool.size

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, preferred: Optional[int] = None) -> int:
        """Pick the shard for a batch.

        ``preferred`` (cache affinity) wins when given; otherwise the least
        loaded shard by simulated busy time is chosen.
        """
        if preferred is not None:
            if not (0 <= preferred < self.pool.size):
                raise ValueError(f"shard {preferred} out of range for pool of {self.pool.size}")
            shard = preferred
        else:
            shard = self.pool.least_loaded()
        self._batches_per_shard[shard] += 1
        return shard

    @property
    def batches_per_shard(self) -> List[int]:
        """Number of batches placed on each shard so far."""
        return list(self._batches_per_shard)

    # ------------------------------------------------------------------
    # cross-shard traffic accounting
    # ------------------------------------------------------------------
    def charge_transfer(self, name: str, nbytes: float) -> float:
        """Charge one front-end <-> shard point-to-point transfer.

        Modelled as ``alpha + bytes / beta`` -- one message over one link --
        and recorded so totals can be reported next to Section 7's numbers.
        Returns the simulated seconds charged.
        """
        seconds = self.cost_model.latency + float(nbytes) / self.cost_model.bandwidth
        self.records.append(CommRecord(name=name, bytes_moved=float(nbytes), seconds=seconds))
        return seconds

    def charge_replication(self, state_bytes: float, n_replicas: int) -> float:
        """Charge broadcasting operator state to ``n_replicas`` shards."""
        seconds = self.cost_model.broadcast_time(float(state_bytes), max(n_replicas, 1) + 1)
        self.records.append(
            CommRecord(name="operator_replication", bytes_moved=float(state_bytes), seconds=seconds)
        )
        return seconds

    def comm_seconds(self) -> float:
        """Total cross-shard communication seconds charged so far."""
        return float(sum(r.seconds for r in self.records))

    def comm_bytes(self) -> float:
        """Total cross-shard bytes moved so far."""
        return float(sum(r.bytes_moved for r in self.records))

    def comm_by_name(self) -> Dict[str, float]:
        """Seconds per transfer name."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.seconds
        return out

    # ------------------------------------------------------------------
    def loads(self) -> List[float]:
        """Per-shard simulated busy seconds (delegates to the pool)."""
        return self.pool.loads()

    def makespan(self) -> float:
        """Busiest shard's accumulated simulated seconds."""
        return self.pool.makespan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardScheduler(pool={self.pool!r}, comm_seconds={self.comm_seconds():.3e})"
