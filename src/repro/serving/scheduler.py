"""Shard scheduling: spread micro-batches across a pool of GPU executors.

The scheduler owns an :class:`~repro.gpu.pool.ExecutorPool` and decides which
shard runs each micro-batch.  Two policies compose:

* **cache affinity** -- a batch whose operator is already cached runs on the
  shard that owns the operator (sketch state lives in device memory and is
  bound to its executor; moving it would cost more than queueing behind it);
* **least-loaded placement** -- a batch that needs a brand-new operator goes
  to the shard with the least accumulated simulated time, balancing load
  across distinct problem shapes.

A third, *elastic* axis rides on top for the concurrent runtime: the
scheduler keeps an **active shard count** and only hands least-loaded work
to active shards.  :class:`ElasticShardPolicy` decides when to grow or
shrink that count from queue-depth and p95-latency telemetry, and every
transition is recorded as a :class:`ScaleEvent` so load tests can assert
the scale-up *and* the scale-back-down actually happened.

Cross-shard traffic (shipping a batch's solution back to the front end,
replicating operator state) is charged with the same alpha-beta model the
distributed layer uses (:class:`repro.distributed.comm.CommCostModel`) and
recorded as :class:`repro.distributed.comm.CommRecord` entries, so serving
experiments report communication with the exact accounting of Section 7.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributed.comm import CommCostModel, CommRecord
from repro.gpu.pool import ExecutorPool


@dataclass(frozen=True)
class ScaleEvent:
    """One elastic-scaling transition of the active shard set.

    ``at_seconds`` is the pool makespan when the decision was taken, so a
    sequence of events reads as a timeline on the simulated clock.
    """

    at_seconds: float
    from_shards: int
    to_shards: int
    reason: str
    queue_depth: int = 0
    p95_seconds: float = 0.0

    @property
    def direction(self) -> str:
        """``"up"`` or ``"down"``."""
        return "up" if self.to_shards > self.from_shards else "down"


@dataclass
class ElasticShardPolicy:
    """Grow/shrink the active shard count from load telemetry.

    The decision inputs are the two signals a serving runtime always has:
    the admission-queue depth (how much work is waiting) and the recent p95
    request latency (how badly the current capacity is keeping up).  The
    policy is deliberately asymmetric -- it doubles on pressure and steps
    down by one shard at a time -- because under-provisioning sheds user
    traffic while over-provisioning merely parks simulated silicon.

    Parameters
    ----------
    min_shards / max_shards:
        Bounds on the active count.
    queue_high:
        Scale *up* when the queue holds more than this many pending work
        items per active shard.
    queue_low:
        Scale *down* when the queue holds fewer than this many pending
        items per active shard (and the latency signal agrees).
    p95_budget:
        Optional latency target: p95 above it forces a scale-up even at
        modest queue depth, p95 must be under it before scaling down.
    cooldown_batches:
        Minimum completed dispatches between two evaluations, so one burst
        cannot thrash the active set up and down.
    proactive:
        When True the policy also reacts to *predicted* queue drain time
        (calibrated service estimate x depth / active shards, supplied by
        the runtime): scale up when the backlog is projected to take more
        than ``drain_budget`` seconds to clear even though the per-shard
        depth has not breached ``queue_high`` yet.  This is the
        closed-loop mode -- it acts on where the queue is *going* rather
        than where it already is, and it degrades to the reactive policy
        whenever no prediction is available.
    drain_budget:
        Projected drain seconds that trigger a proactive scale-up
        (required when ``proactive`` is set).
    """

    min_shards: int = 1
    max_shards: int = 8
    queue_high: float = 4.0
    queue_low: float = 1.0
    p95_budget: Optional[float] = None
    cooldown_batches: int = 4
    proactive: bool = False
    drain_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_shards <= 0:
            raise ValueError("min_shards must be positive")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must not exceed queue_high")
        if self.proactive and (self.drain_budget is None or self.drain_budget <= 0.0):
            raise ValueError("proactive mode needs a positive drain_budget")

    def decide(
        self,
        active: int,
        queue_depth: int,
        p95_seconds: Optional[float] = None,
        predicted_drain_seconds: Optional[float] = None,
    ) -> Tuple[int, str]:
        """Return ``(new_active, reason)``; ``new_active == active`` means hold."""
        per_shard = queue_depth / max(active, 1)
        latency_breach = (
            self.p95_budget is not None
            and p95_seconds is not None
            and p95_seconds > self.p95_budget
        )
        drain_breach = (
            self.proactive
            and predicted_drain_seconds is not None
            and self.drain_budget is not None
            and predicted_drain_seconds > self.drain_budget
        )
        if active < self.max_shards and (per_shard > self.queue_high or latency_breach or drain_breach):
            target = min(self.max_shards, max(active * 2, active + 1))
            if per_shard > self.queue_high:
                why = f"queue depth {queue_depth} over {self.queue_high:g}/shard"
            elif latency_breach:
                why = f"p95 {p95_seconds:.3e}s over budget {self.p95_budget:.3e}s"
            else:
                why = (
                    f"predicted drain {predicted_drain_seconds:.3e}s over "
                    f"budget {self.drain_budget:.3e}s"
                )
            return target, why
        latency_ok = (
            self.p95_budget is None
            or p95_seconds is None
            or p95_seconds <= self.p95_budget
        )
        drain_ok = not drain_breach
        if active > self.min_shards and per_shard < self.queue_low and latency_ok and drain_ok:
            return active - 1, f"queue depth {queue_depth} under {self.queue_low:g}/shard"
        return active, "hold"


class ShardScheduler:
    """Places work on an executor pool and accounts cross-shard traffic.

    Parameters
    ----------
    pool:
        The executor pool to schedule onto.
    cost_model:
        Alpha-beta communication model for front-end <-> shard transfers;
        defaults to the distributed layer's defaults (10 us latency,
        25 GB/s links).
    active_shards:
        Initial size of the *active* shard set (defaults to the whole
        pool).  Shards ``0..active_shards-1`` receive least-loaded
        placements; parked shards only run work explicitly pinned to them
        (cache affinity to state that already lives there).
    """

    def __init__(
        self,
        pool: ExecutorPool,
        cost_model: Optional[CommCostModel] = None,
        *,
        active_shards: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.cost_model = cost_model if cost_model is not None else CommCostModel()
        self.records: List[CommRecord] = []
        self.scale_events: List[ScaleEvent] = []
        self._batches_per_shard: List[int] = [0] * pool.size
        # Estimated seconds of work placed but not yet executed, per shard.
        # Simulated clocks only advance when kernels run, so without this a
        # burst of concurrent placements all sees the same stale loads and
        # piles onto one shard (thundering herd); reservations make
        # least-loaded placement queue-aware.
        self._reserved: List[float] = [0.0] * pool.size
        self._lock = threading.Lock()
        if active_shards is None:
            active_shards = pool.size
        if not (1 <= active_shards <= pool.size):
            raise ValueError(f"active_shards must be in [1, {pool.size}]")
        self._active = int(active_shards)
        #: Optional ``callable(count)`` fired after the active set resizes
        #: (outside the scheduler lock) -- the server points this at its
        #: telemetry gauge so the current shard count is scrapeable.
        self.on_scale = None

    # ------------------------------------------------------------------
    # elastic active set
    # ------------------------------------------------------------------
    @property
    def active_shards(self) -> int:
        """Current size of the active shard set."""
        return self._active

    def active_set(self) -> Tuple[int, ...]:
        """Indices of the shards currently receiving least-loaded work."""
        return tuple(range(self._active))

    def set_active(
        self,
        count: int,
        *,
        reason: str = "",
        queue_depth: int = 0,
        p95_seconds: float = 0.0,
    ) -> bool:
        """Resize the active set, recording a :class:`ScaleEvent` on change.

        Returns whether the count actually changed.  Shrinking never drops
        in-flight state: parked shards keep their executors and cached
        operators, they just stop receiving new least-loaded placements.
        """
        count = int(count)
        if not (1 <= count <= self.pool.size):
            raise ValueError(f"active shard count must be in [1, {self.pool.size}]")
        with self._lock:
            if count == self._active:
                return False
            event = ScaleEvent(
                at_seconds=self.pool.makespan(),
                from_shards=self._active,
                to_shards=count,
                reason=reason,
                queue_depth=queue_depth,
                p95_seconds=p95_seconds,
            )
            self._active = count
            self.scale_events.append(event)
        if self.on_scale is not None:
            self.on_scale(count)
        return True

    def scale_transitions(self) -> Dict[str, int]:
        """``{"up": ..., "down": ...}`` counts of recorded scale events."""
        with self._lock:
            ups = sum(1 for e in self.scale_events if e.direction == "up")
            downs = len(self.scale_events) - ups
        return {"up": ups, "down": downs}

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, preferred: Optional[int] = None, reserve_seconds: float = 0.0) -> int:
        """Pick the shard for a batch.

        ``preferred`` (cache affinity) wins when given -- even for a parked
        shard, because pinned device state (a session's window sketch, an
        unseeded operator) cannot move; otherwise the least loaded *active*
        shard by *effective* (executed plus reserved) simulated busy time
        is chosen.  ``reserve_seconds`` books the batch's estimated service
        time on the chosen shard; callers that overlap placement with
        execution pass the planner's estimate and :meth:`release` it when
        the batch completes.
        """
        with self._lock:
            if preferred is not None:
                if not (0 <= preferred < self.pool.size):
                    raise ValueError(
                        f"shard {preferred} out of range for pool of {self.pool.size}"
                    )
                shard = preferred
            else:
                loads = self.pool.loads()
                shard = min(
                    range(self._active), key=lambda s: loads[s] + self._reserved[s]
                )
            self._batches_per_shard[shard] += 1
            if reserve_seconds > 0.0:
                self._reserved[shard] += float(reserve_seconds)
            return shard

    def reserve(self, shard: int, seconds: float) -> None:
        """Book estimated in-flight work on a shard (see :meth:`place`)."""
        with self._lock:
            self._reserved[shard] += float(seconds)

    def release(self, shard: int, seconds: float) -> None:
        """Return a reservation once its batch has executed."""
        with self._lock:
            self._reserved[shard] = max(0.0, self._reserved[shard] - float(seconds))

    def effective_loads(self) -> List[float]:
        """Per-shard executed-plus-reserved simulated seconds."""
        loads = self.pool.loads()
        with self._lock:
            return [l + r for l, r in zip(loads, self._reserved)]

    def min_effective_load(self) -> float:
        """Earliest instant (effective) at which an active shard frees up."""
        loads = self.effective_loads()
        return min(loads[s] for s in range(self._active))

    @property
    def batches_per_shard(self) -> List[int]:
        """Number of batches placed on each shard so far."""
        return list(self._batches_per_shard)

    # ------------------------------------------------------------------
    # cross-shard traffic accounting
    # ------------------------------------------------------------------
    def estimate_transfer(self, nbytes: float) -> float:
        """Seconds one front-end <-> shard transfer *would* cost (not recorded).

        The runtime's deadline projection uses this for the result-return
        term, so a request is shed when queue wait + service + transfer
        would breach the budget -- the same three terms the completed
        request's queue-inclusive latency is built from.
        """
        return self.cost_model.latency + float(nbytes) / self.cost_model.bandwidth

    def charge_transfer(self, name: str, nbytes: float) -> float:
        """Charge one front-end <-> shard point-to-point transfer.

        Modelled as ``alpha + bytes / beta`` -- one message over one link --
        and recorded so totals can be reported next to Section 7's numbers.
        Returns the simulated seconds charged.
        """
        seconds = self.cost_model.latency + float(nbytes) / self.cost_model.bandwidth
        with self._lock:
            self.records.append(CommRecord(name=name, bytes_moved=float(nbytes), seconds=seconds))
        return seconds

    def charge_replication(self, state_bytes: float, n_replicas: int) -> float:
        """Charge broadcasting operator state to ``n_replicas`` shards."""
        seconds = self.cost_model.broadcast_time(float(state_bytes), max(n_replicas, 1) + 1)
        with self._lock:
            self.records.append(
                CommRecord(
                    name="operator_replication", bytes_moved=float(state_bytes), seconds=seconds
                )
            )
        return seconds

    def comm_seconds(self) -> float:
        """Total cross-shard communication seconds charged so far."""
        with self._lock:
            return float(sum(r.seconds for r in self.records))

    def comm_bytes(self) -> float:
        """Total cross-shard bytes moved so far."""
        with self._lock:
            return float(sum(r.bytes_moved for r in self.records))

    def comm_by_name(self) -> Dict[str, float]:
        """Seconds per transfer name."""
        out: Dict[str, float] = {}
        with self._lock:
            for r in self.records:
                out[r.name] = out.get(r.name, 0.0) + r.seconds
        return out

    # ------------------------------------------------------------------
    def loads(self) -> List[float]:
        """Per-shard simulated busy seconds (delegates to the pool)."""
        return self.pool.loads()

    def makespan(self) -> float:
        """Busiest shard's accumulated simulated seconds."""
        return self.pool.makespan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardScheduler(pool={self.pool!r}, comm_seconds={self.comm_seconds():.3e})"
