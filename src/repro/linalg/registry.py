"""Unified solver registry: one ``solve(spec)`` interface over every solver.

The paper's central comparison (Sections 6-7) is between solver *families* --
normal equations, sketch-and-solve (Algorithm 1), Householder QR,
rand_cholQR (Algorithm 5) and sketch-preconditioned LSQR -- yet each family
historically had its own free function with its own signature.  This module
puts them all behind one uniform interface so callers (the planner, the
serving layer, the harness) can treat "which solver" as data:

* :class:`SolveSpec` -- the request: problem shape, number of fused
  right-hand sides, Tikhonov regularization, conditioning estimate,
  accuracy target, latency budget, sketch family and oversampling.
* :class:`SolverCapabilities` -- what a registered solver declares about
  itself: the *problem class* it solves (plain least squares or ridge),
  batched-RHS support, whether it needs a sketch operator, its stability
  floor (``u * kappa(A)`` vs ``u * kappa(A)^2``, evaluated at the
  lambda-regularized effective conditioning for ridge solvers), its
  residual distortion, and a cost model grounded in
  :func:`repro.theory.complexity.solver_complexity`.
* :class:`RegisteredSolver` -- capabilities plus the adapter callable, with
  ``solve(a, b, spec)`` dispatching to the underlying implementation and a
  column-loop shim for any solver without a fused multi-RHS path.
* :func:`register_solver` / :func:`get_solver` / :func:`available_solvers` --
  the registry itself.

The five least-squares solvers register themselves below; the ridge solvers
live in :mod:`repro.problems.ridge` and register on import (the planner and
:func:`solve` trigger that import whenever a spec carries
``regularization > 0``).  The planner (:mod:`repro.linalg.planner`) builds a
:class:`~repro.linalg.planner.SolvePlan` on top of these declarations; the
serving layer (:mod:`repro.serving.server`) executes plans per micro-batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.base import SketchOperator, default_embedding_dim
from repro.gpu.arrays import DeviceArray
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor
from repro.linalg.iterative import sketch_preconditioned_lsqr
from repro.linalg.lstsq import (
    LeastSquaresResult,
    normal_equations,
    qr_solve,
    sketch_and_solve,
)
from repro.linalg.rand_cholqr import rand_cholqr_lstsq
from repro.theory.complexity import solver_complexity

ArrayLike = Union[np.ndarray, DeviceArray]

#: Double-precision unit roundoff, the ``u`` of the paper's stability bounds.
UNIT_ROUNDOFF = float(np.finfo(np.float64).eps)

#: Default safety constant in front of the ``u * kappa^e`` stability floors;
#: absorbs the dimension-dependent polynomials of the formal bounds.
STABILITY_SAFETY = 10.0


def ridge_effective_condition(
    cond: float, regularization: float, smax: float = 1.0
) -> float:
    """Condition number of the lambda-augmented system ``[A; sqrt(lam) I]``.

    Tikhonov regularization shifts every squared singular value by
    ``lam``, so the augmented matrix the ridge solvers factor has

    ``kappa_eff = sqrt((smax^2 + lam) / (smin^2 + lam))``

    with ``smin = smax / kappa(A)``.  This is why a ridge solver's stability
    floor is a function of *both* ``kappa`` and ``lam``: even a singular
    ``A`` is benign once ``lam`` dominates ``smin^2``, while a lambda far
    below ``smin^2`` leaves the effective conditioning at ``kappa(A)``.
    ``smax`` defaults to 1 (the scale of the planner's probe when no
    estimate is available); infinite ``cond`` (an exactly singular ``A``)
    is handled by the same formula with ``smin = 0``.
    """
    if regularization < 0.0:
        raise ValueError("regularization must be non-negative")
    if regularization == 0.0 or not np.isfinite(smax) or smax <= 0.0:
        return float(cond)
    smin = 0.0 if not np.isfinite(cond) else smax / float(cond)
    return float(
        np.sqrt((smax**2 + regularization) / (smin**2 + regularization))
    )


def resolve_embedding_dim(kind: str, d: int, n: int, oversampling: float = 2.0) -> int:
    """Embedding dimension for a ``d x n`` problem, oversampling included.

    The paper's Section-6.2 defaults with a configurable constant: ``c * n``
    for the subspace-embedding families (Gaussian / SRHT / multisketch) and
    ``c * n^2`` clipped to ``d`` for the CountSketch, with ``c`` =
    ``oversampling`` (2 in the paper).  This is the single resolution point
    the serving layer and the planner both go through, so changing the
    oversampling on a :class:`~repro.serving.server.ServerConfig` changes
    every operator the server builds.
    """
    if oversampling <= 1.0:
        raise ValueError("oversampling must exceed 1 for the sketch to embed")
    return min(default_embedding_dim(kind, n, oversampling), d)


@dataclass(frozen=True)
class SolveSpec:
    """One least-squares request, as the planner and registry see it.

    Attributes
    ----------
    d, n:
        Problem shape (``A`` is tall, ``d > n``).
    nrhs:
        Number of fused right-hand sides (1 for a vector ``b``).
    regularization:
        Tikhonov parameter ``lam`` of ``min_x ||b - A x||^2 + lam ||x||^2``.
        0 (the default) is plain least squares; any positive value makes
        this a *ridge* request, which only the ridge problem class's
        solvers (:mod:`repro.problems.ridge`) can serve.
    cond_estimate:
        Estimated ``kappa(A)`` (e.g. from
        :func:`repro.linalg.conditioning.estimate_condition`); ``None`` means
        unknown, which the planner treats conservatively.
    smax_estimate:
        Estimated largest singular value of ``A``; used together with
        ``cond_estimate`` and ``regularization`` to evaluate ridge
        stability floors at the *effective* (lambda-shifted) conditioning
        (:func:`ridge_effective_condition`).  Ignored for plain least
        squares.
    accuracy_target:
        Worst acceptable relative residual attributable to the *solver* on a
        near-consistent system -- the quantity Figure 8 sweeps.  A solver is
        admissible only if its stability floor ``C u kappa^e`` stays below
        this.
    max_distortion:
        Largest acceptable multiplicative residual suboptimality.  Exact
        solvers have distortion 1; sketch-and-solve declares the paper's
        ``(1 + eps)`` factor and is excluded when the request cannot
        tolerate it.
    latency_budget:
        Optional cap on estimated simulated seconds; the planner prefers
        solvers that fit, and degrades to the cheapest admissible one
        otherwise.
    kind:
        Sketch family for the sketch-based solvers.
    oversampling:
        Embedding-dimension constant threaded through to
        :func:`resolve_embedding_dim`.
    seed:
        Seed for operators the registry builds on the caller's behalf.
    """

    d: int
    n: int
    nrhs: int = 1
    regularization: float = 0.0
    cond_estimate: Optional[float] = None
    smax_estimate: Optional[float] = None
    accuracy_target: float = 1e-6
    max_distortion: float = float("inf")
    latency_budget: Optional[float] = None
    kind: str = "multisketch"
    oversampling: float = 2.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.d <= self.n:
            raise ValueError("SolveSpec describes tall problems (d > n)")
        if self.nrhs <= 0:
            raise ValueError("nrhs must be positive")
        if self.regularization < 0.0:
            raise ValueError("regularization (Tikhonov lambda) must be non-negative")
        if self.accuracy_target <= 0.0:
            raise ValueError("accuracy_target must be positive")

    @property
    def problem(self) -> str:
        """Problem class this spec describes: ``"least_squares"`` or ``"ridge"``."""
        return "ridge" if self.regularization > 0.0 else "least_squares"

    def effective_condition(self, cond: Optional[float] = None) -> Optional[float]:
        """Conditioning the solver actually faces under this spec.

        For plain least squares this is ``cond`` (or the spec's own
        estimate); for ridge it is the lambda-shifted
        :func:`ridge_effective_condition` of the augmented system.
        """
        if cond is None:
            cond = self.cond_estimate
        if cond is None:
            return None
        if self.regularization == 0.0:
            return float(cond)
        smax = self.smax_estimate if self.smax_estimate is not None else 1.0
        return ridge_effective_condition(cond, self.regularization, smax)

    @classmethod
    def from_problem(
        cls,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        **overrides,
    ) -> "SolveSpec":
        """Build a spec from concrete arrays (shape and nrhs are inferred)."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("A must be a 2-D matrix")
        nrhs = 1
        if b is not None:
            b = np.asarray(b)
            nrhs = b.shape[1] if b.ndim == 2 else 1
        overrides.setdefault("nrhs", nrhs)
        return cls(d=a.shape[0], n=a.shape[1], **overrides)

    @property
    def embedding_dim(self) -> int:
        """Sketch output dimension this spec resolves to."""
        return resolve_embedding_dim(self.kind, self.d, self.n, self.oversampling)

    def with_nrhs(self, nrhs: int) -> "SolveSpec":
        """Copy of this spec for a different batch width."""
        return replace(self, nrhs=int(nrhs))


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver declares about itself.

    ``stability_exponent`` encodes the accuracy floor: the best relative
    residual the solver can reach on a near-consistent system scales like
    ``safety * u * kappa(A) ** stability_exponent`` -- 2 for the normal
    equations (the Figure-8 breakdown mechanism), 1 for the un-refined
    preconditioned LSQR and for sketch-and-solve's reduced QR, and 0 (a flat
    ``O(u)`` floor up to hard breakdown) for Householder QR and rand_cholQR,
    matching both the paper's Figure 8 and the measured behaviour of this
    repository's implementations.  ``distortion`` is the multiplicative
    residual suboptimality on noisy systems (1.0 for exact solvers,
    ``1 + eps`` for sketch-and-solve).  ``max_stable_cond`` is the hard
    breakdown point beyond which the solver is expected to fail outright
    rather than merely lose accuracy.

    ``problem`` names the problem class the solver answers:
    ``"least_squares"`` (the five paper solvers) or ``"ridge"``
    (:mod:`repro.problems.ridge`).  A solver is never admissible for a
    spec of a different class -- a plain least-squares solver ignores
    ``spec.regularization`` and would silently answer the wrong question.
    """

    name: str
    batched_rhs: bool
    needs_sketch: bool
    stability_exponent: int
    distortion: float = 1.0
    max_stable_cond: float = 1.0 / UNIT_ROUNDOFF
    safety: float = STABILITY_SAFETY
    iterative: bool = False
    problem: str = "least_squares"
    description: str = ""

    def accuracy_floor(self, cond: float) -> float:
        """Best relative residual expected at condition number ``cond``."""
        return self.safety * UNIT_ROUNDOFF * float(cond) ** self.stability_exponent

    def admissible(self, spec: SolveSpec, cond: Optional[float] = None) -> bool:
        """Whether this solver can meet the spec at the given conditioning.

        ``cond`` is the raw ``kappa(A)`` estimate; a ridge spec's lambda
        shift is applied here via :meth:`SolveSpec.effective_condition`, so
        the floor is a function of both ``kappa`` and ``lam``.  A solver of
        a different problem class than the spec's is never admissible.
        Unknown conditioning (``None``) is treated optimistically; the
        planner substitutes its sketched estimate before asking.
        """
        if self.problem != spec.problem:
            return False
        if self.distortion > spec.max_distortion:
            return False
        cond = spec.effective_condition(cond)
        if cond is None:
            return True
        if cond >= self.max_stable_cond:
            return False
        return self.accuracy_floor(cond) <= spec.accuracy_target

    def flop_estimate(self, spec: SolveSpec) -> Dict[str, float]:
        """Leading-order arithmetic/traffic from the Table-1 cost model.

        This (and :meth:`cost_estimate`) is the closed-form *a-priori*
        reference for documentation, tests and asymptotic reasoning; the
        planner's live ranking uses
        :meth:`RegisteredSolver.estimate_seconds`, an analytic dry-run that
        additionally captures kernel-class efficiencies and launch
        overheads.
        """
        return solver_complexity(
            self.name,
            spec.d,
            spec.n,
            nrhs=spec.nrhs,
            embedding_dim=spec.embedding_dim if self.needs_sketch else None,
            sketch_kind=spec.kind,
        )

    def cost_estimate(self, spec: SolveSpec, device: DeviceSpec = H100_SXM5) -> float:
        """Estimated simulated seconds on ``device`` (roofline of the flops)."""
        cost = self.flop_estimate(spec)
        compute = cost["arithmetic"] / device.peak_flops(8)
        traffic = cost["read_writes"] * 8.0 / device.memory_bandwidth
        return max(compute, traffic)


#: Adapter signature: ``(a, b, spec, operator, executor) -> LeastSquaresResult``.
SolverAdapter = Callable[..., LeastSquaresResult]


@dataclass(frozen=True)
class RegisteredSolver:
    """A solver behind the uniform interface: capabilities + adapter."""

    capabilities: SolverCapabilities
    adapter: SolverAdapter

    @property
    def name(self) -> str:
        """Registry name of the solver."""
        return self.capabilities.name

    def solve(
        self,
        a: ArrayLike,
        b: ArrayLike,
        spec: Optional[SolveSpec] = None,
        *,
        operator: Optional[SketchOperator] = None,
        executor: Optional[GPUExecutor] = None,
    ) -> LeastSquaresResult:
        """Run the solver on ``(a, b)`` under ``spec``.

        Sketch-based solvers receive ``operator`` (or build one from the
        spec); direct solvers ignore it.  A block ``b`` against a solver
        without a fused path falls back to a column loop, so every
        registered solver honours the same multi-RHS contract.
        """
        if spec is None:
            spec = SolveSpec.from_problem(np.asarray(a) if not isinstance(a, DeviceArray) else a)
        b_arr = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        multi = b_arr is not None and b_arr.ndim == 2
        if multi and not self.capabilities.batched_rhs:
            return self._solve_columns(a, b, spec, operator=operator, executor=executor)
        return self.adapter(a, b, spec, operator=operator, executor=executor)

    def _solve_columns(
        self,
        a: ArrayLike,
        b: ArrayLike,
        spec: SolveSpec,
        *,
        operator: Optional[SketchOperator],
        executor: Optional[GPUExecutor],
    ) -> LeastSquaresResult:
        """Column-by-column shim for solvers without a fused multi-RHS path."""
        b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        results = [
            self.adapter(a, b_np[:, j], spec.with_nrhs(1), operator=operator, executor=executor)
            for j in range(b_np.shape[1])
        ]
        merged = results[0].breakdown
        for r in results[1:]:
            merged.extend(r.breakdown.records)
        xs = [r.x for r in results]
        columns = np.asarray([r.relative_residual for r in results])
        failed = any(r.failed for r in results)
        reasons = "; ".join(r.failure_reason for r in results if r.failure_reason)
        return LeastSquaresResult(
            method=results[0].method,
            x=None if failed or any(x is None for x in xs) else np.column_stack(xs),
            residual_norm=float(np.linalg.norm([r.residual_norm for r in results])),
            relative_residual=float(columns.max(initial=0.0)),
            breakdown=merged,
            total_seconds=merged.total(),
            failed=failed,
            failure_reason=reasons,
            extra={"nrhs": float(len(results)), "column_loop": 1.0},
            column_residuals=columns,
        )

    def estimate_seconds(self, spec: SolveSpec, device: DeviceSpec = H100_SXM5) -> float:
        """Expected simulated seconds for one solve under ``spec``.

        Runs the adapter once in *analytic* mode (shape-only device arrays,
        ``numeric=False``), so the estimate is exactly what the real solve
        will be charged by the roofline cost model -- kernel-class
        efficiencies and launch overheads included, operator generation
        excluded (the serving layer amortises it through the operator
        cache).  Results are memoised per ``(solver, shape, batch, sketch)``
        so the planner can be consulted per micro-batch for free.
        """
        key = (
            self.name,
            spec.d,
            spec.n,
            spec.nrhs,
            spec.kind if self.capabilities.needs_sketch else "",
            spec.embedding_dim if self.capabilities.needs_sketch else 0,
            id(device),
        )
        cached = _DRYRUN_COSTS.get(key)
        if cached is not None:
            return cached
        ex = GPUExecutor(device, numeric=False, seed=spec.seed, track_memory=False)
        a = ex.empty((spec.d, spec.n), label="A_plan")
        b = ex.empty((spec.d, spec.nrhs) if spec.nrhs > 1 else (spec.d,), label="b_plan")
        operator = self.build_operator(spec, executor=ex) if self.capabilities.needs_sketch else None
        result = self.adapter(a, b, spec, operator=operator, executor=ex)
        _DRYRUN_COSTS[key] = result.total_seconds
        return result.total_seconds

    def build_operator(
        self, spec: SolveSpec, executor: Optional[GPUExecutor] = None
    ) -> SketchOperator:
        """Construct the sketch operator this solver would use for ``spec``.

        Ridge solvers factor the lambda-augmented matrix ``[A; sqrt(lam) I]``
        (``(d + n) x n``), so their operators take ``d + n`` input rows; the
        embedding dimension is shared with the plain solvers so serving-side
        cache keys stay comparable across problem classes.
        """
        from repro.serving.cache import build_operator as _build  # local: avoid cycle

        if executor is None:
            executor = GPUExecutor(numeric=True, seed=spec.seed, track_memory=False)
        input_rows = spec.d + spec.n if self.capabilities.problem == "ridge" else spec.d
        return _build(
            spec.kind,
            input_rows,
            spec.n,
            executor=executor,
            seed=spec.seed,
            k=spec.embedding_dim,
        )


@dataclass(frozen=True)
class ProblemClass:
    """One problem family the stack can serve, as routing-level data.

    ``solver_backed`` problem classes answer requests through the solver
    registry and planner (least squares, ridge); sketch-backed ones
    (frequency analytics) answer through a query engine planned by their
    ``planner`` hook instead of a :class:`SolveSpec`.  ``queries`` names
    the query types the class exposes through the serving layer.
    """

    name: str
    description: str
    queries: Tuple[str, ...]
    solver_backed: bool = True


_PROBLEM_CLASSES: Dict[str, "ProblemClass"] = {}


def register_problem_class(problem: ProblemClass) -> ProblemClass:
    """Add (or replace) a problem class in the catalog; returns it."""
    _PROBLEM_CLASSES[problem.name] = problem
    return problem


def get_problem_class(name: str) -> ProblemClass:
    """Look up a problem class, triggering its registration import."""
    ensure_problem_solvers(name)
    try:
        return _PROBLEM_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown problem class '{name}'; registered: {sorted(_PROBLEM_CLASSES)}"
        ) from None


def problem_classes() -> Dict[str, "ProblemClass"]:
    """Name -> problem class catalog (registration order preserved)."""
    return dict(_PROBLEM_CLASSES)


register_problem_class(
    ProblemClass(
        name="least_squares",
        description="min_x ||b - A x||_2; the paper's five solver families",
        queries=("solve",),
    )
)
register_problem_class(
    ProblemClass(
        name="ridge",
        description="Tikhonov-regularized regression on the lambda-augmented system",
        queries=("solve",),
    )
)
register_problem_class(
    ProblemClass(
        name="frequency",
        description="stream frequency analytics on the hashed CountSketch "
        "(point / heavy-hitter / norm / range queries)",
        queries=("point", "heavy_hitters", "norm", "range"),
        solver_backed=False,
    )
)


_REGISTRY: Dict[str, RegisteredSolver] = {}

#: Memoised analytic dry-run costs (see :meth:`RegisteredSolver.estimate_seconds`).
_DRYRUN_COSTS: Dict[Tuple, float] = {}

#: Accepted spellings for each canonical registry name.
_ALIASES = {
    "normal_equations": ("normal_equations", "normal", "normal_eq", "cholesky"),
    "sketch_and_solve": ("sketch_and_solve", "sketch-and-solve", "sas"),
    "qr": ("qr", "qr_solve", "householder_qr"),
    "rand_cholqr": ("rand_cholqr", "rand_cholqr_lstsq", "randcholqr"),
    "sketch_precond_lsqr": (
        "sketch_precond_lsqr",
        "sketch_preconditioned_lsqr",
        "lsqr",
        "blendenpik",
    ),
}


def canonical_solver_name(name: str) -> str:
    """Map any accepted spelling to the canonical registry name.

    A name registered directly (e.g. by :mod:`repro.problems.ridge`) wins
    over the alias table, so new problem classes extend the namespace by
    registering solvers plus optional :func:`register_alias` spellings.
    """
    low = name.lower()
    if low in _REGISTRY:
        return low
    for canonical, spellings in _ALIASES.items():
        if low in spellings:
            return canonical
    ensure_problem_solvers("ridge")  # ridge names resolve even pre-import
    if low in _REGISTRY:
        return low
    raise ValueError(
        f"unknown solver '{name}'; registered: {sorted(_REGISTRY) or list(_ALIASES)}"
    )


def register_solver(solver: RegisteredSolver) -> RegisteredSolver:
    """Add (or replace) a solver in the registry; returns it for chaining."""
    _REGISTRY[solver.name] = solver
    return solver


def register_alias(canonical: str, *spellings: str) -> None:
    """Accept extra spellings for a registered solver name."""
    existing = _ALIASES.get(canonical, (canonical,))
    merged = tuple(dict.fromkeys(existing + tuple(s.lower() for s in spellings)))
    _ALIASES[canonical] = merged


def ensure_problem_solvers(problem: str) -> None:
    """Import the module that registers a problem class's solvers.

    The least-squares solvers register at the bottom of this module; other
    problem classes live in :mod:`repro.problems` and register on first
    use.  Called by :func:`solve` and the planner whenever a spec names a
    non-default problem, so callers never need to import
    :mod:`repro.problems` themselves.
    """
    if problem == "ridge":
        import repro.problems.ridge  # noqa: F401  (registers on import)
    elif problem == "frequency":
        import repro.problems.frequency  # noqa: F401  (registers on import)


def get_solver(name: str) -> RegisteredSolver:
    """Look up a registered solver by any accepted spelling."""
    return _REGISTRY[canonical_solver_name(name)]


def available_solvers() -> Tuple[str, ...]:
    """Canonical names of every registered solver, in registration order."""
    return tuple(_REGISTRY)


def solver_capabilities() -> Dict[str, SolverCapabilities]:
    """Name -> capability table (the planner's routing input)."""
    return {name: solver.capabilities for name, solver in _REGISTRY.items()}


# ---------------------------------------------------------------------------
# Adapters for the five paper solvers
# ---------------------------------------------------------------------------
def _ensure_operator(
    solver: RegisteredSolver,
    a: ArrayLike,
    spec: SolveSpec,
    operator: Optional[SketchOperator],
    executor: Optional[GPUExecutor],
) -> SketchOperator:
    if operator is not None:
        caps = operator.capabilities()
        if not caps["subspace_embedding"] and solver.name in (
            "rand_cholqr",
            "sketch_precond_lsqr",
        ):
            raise ValueError(
                f"{solver.name} preconditions with the sketch and requires a "
                f"subspace-embedding operator; {caps['family']} is not one"
            )
        return operator
    if executor is None and isinstance(a, DeviceArray):
        executor = getattr(a, "_executor", None)
    return solver.build_operator(spec, executor=executor)


def _adapt_normal_equations(a, b, spec, *, operator=None, executor=None):
    return normal_equations(a, b, executor=executor)


def _adapt_qr(a, b, spec, *, operator=None, executor=None):
    return qr_solve(a, b, executor=executor)


def _adapt_sketch_and_solve(a, b, spec, *, operator=None, executor=None):
    op = _ensure_operator(get_solver("sketch_and_solve"), a, spec, operator, executor)
    return sketch_and_solve(a, b, op, executor=op.executor)


def _adapt_rand_cholqr(a, b, spec, *, operator=None, executor=None):
    op = _ensure_operator(get_solver("rand_cholqr"), a, spec, operator, executor)
    return rand_cholqr_lstsq(a, b, op, executor=op.executor)


def _adapt_sketch_precond_lsqr(a, b, spec, *, operator=None, executor=None):
    op = _ensure_operator(get_solver("sketch_precond_lsqr"), a, spec, operator, executor)
    return sketch_preconditioned_lsqr(a, b, op, executor=op.executor)


register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="normal_equations",
            batched_rhs=True,
            needs_sketch=False,
            stability_exponent=2,
            max_stable_cond=1.0 / np.sqrt(UNIT_ROUNDOFF),
            description="Gram matrix + POTRF; fastest direct solver, floor u*kappa^2",
        ),
        _adapt_normal_equations,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="sketch_and_solve",
            batched_rhs=True,
            needs_sketch=True,
            stability_exponent=1,
            distortion=1.0 + 1.0 / np.sqrt(2.0),
            description="Algorithm 1; cheapest sketch solver, O(1) residual distortion",
        ),
        _adapt_sketch_and_solve,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="qr",
            batched_rhs=True,
            needs_sketch=False,
            stability_exponent=0,
            description="Householder QR on A; gold standard, slowest",
        ),
        _adapt_qr,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="rand_cholqr",
            batched_rhs=True,
            needs_sketch=True,
            stability_exponent=0,
            max_stable_cond=0.1 / UNIT_ROUNDOFF,
            description="Algorithm 5; distortion-free, stable for kappa < 1/u",
        ),
        _adapt_rand_cholqr,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="sketch_precond_lsqr",
            batched_rhs=True,
            needs_sketch=True,
            stability_exponent=1,
            safety=1.0,
            iterative=True,
            description="Blendenpik-style preconditioned LSQR; kappa-independent iterations",
        ),
        _adapt_sketch_precond_lsqr,
    )
)


def solve(
    a: ArrayLike,
    b: ArrayLike,
    spec: Optional[SolveSpec] = None,
    *,
    solver: Optional[str] = None,
    operator: Optional[SketchOperator] = None,
    executor: Optional[GPUExecutor] = None,
    **spec_overrides,
) -> LeastSquaresResult:
    """One entry point over the whole registry.

    With ``solver`` given, dispatches straight to that registered solver;
    otherwise delegates to the planner
    (:func:`repro.linalg.planner.plan_and_execute`) which estimates the
    conditioning, picks the cheapest admissible solver and runs its fallback
    chain.  ``spec_overrides`` (``accuracy_target=...``, ``kind=...``, ...)
    are forwarded to :meth:`SolveSpec.from_problem` when ``spec`` is None.
    """
    if spec is None:
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
        b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        spec = SolveSpec.from_problem(a_np, b_np, **spec_overrides)
    elif spec_overrides:
        spec = replace(spec, **spec_overrides)
    ensure_problem_solvers(spec.problem)
    if solver is not None:
        registered = get_solver(solver)
        if registered.capabilities.problem != spec.problem:
            # A least-squares solver would silently drop the regularization
            # (and a ridge solver would invent one): refuse loudly.
            raise ValueError(
                f"solver '{registered.name}' answers the "
                f"'{registered.capabilities.problem}' problem class, but the "
                f"spec describes a '{spec.problem}' problem"
            )
        return registered.solve(a, b, spec, operator=operator, executor=executor)
    from repro.linalg.planner import plan_and_execute  # local: planner imports registry

    return plan_and_execute(a, b, spec, executor=executor)
