"""Test matrices with prescribed condition numbers and spectra.

Figure 8 of the paper studies how each least-squares solver degrades as the
condition number of ``A`` grows from 1 to 1e20: the normal equations fail
beyond ``kappa ~ u^{-1/2} ~ 1e8`` while the sketch-and-solve and QR solvers
track each other up to ``kappa ~ u^{-1} ~ 1e16``.  Reproducing that figure
requires matrices whose condition number is set exactly, which is what
:func:`matrix_with_condition` provides: ``A = U diag(s) V^T`` with Haar-ish
random orthonormal factors and a chosen singular-value profile.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np


def _random_orthonormal(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Random matrix with orthonormal columns (QR of a Gaussian)."""
    if cols > rows:
        raise ValueError("need rows >= cols for orthonormal columns")
    g = rng.standard_normal((rows, cols))
    q, r = np.linalg.qr(g)
    # Fix the signs so the distribution is Haar (and deterministic given rng).
    q *= np.sign(np.diag(r))
    return q


def singular_value_profile(
    n: int,
    cond: float,
    profile: Literal["geometric", "linear", "cluster"] = "geometric",
) -> np.ndarray:
    """Singular values in ``[1/cond, 1]`` following the requested profile.

    ``geometric`` (default) spaces them geometrically, which is the standard
    hard case for Gram-matrix-based methods; ``linear`` spaces them linearly;
    ``cluster`` puts one small singular value at ``1/cond`` and the rest at 1.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if cond < 1.0:
        raise ValueError("condition number must be >= 1")
    if n == 1:
        return np.array([1.0])
    if profile == "geometric":
        return np.geomspace(1.0, 1.0 / cond, n)
    if profile == "linear":
        return np.linspace(1.0, 1.0 / cond, n)
    if profile == "cluster":
        s = np.ones(n)
        s[-1] = 1.0 / cond
        return s
    raise ValueError(f"unknown profile '{profile}'")


def matrix_with_condition(
    d: int,
    n: int,
    cond: float,
    *,
    profile: Literal["geometric", "linear", "cluster"] = "geometric",
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Dense ``d x n`` matrix with condition number exactly ``cond``.

    The construction is ``A = U diag(s) V^T`` with random orthonormal ``U``
    (``d x n``) and ``V`` (``n x n``) and singular values from
    :func:`singular_value_profile`; by construction ``kappa_2(A) = cond`` up
    to rounding.
    """
    if d < n:
        raise ValueError("matrix_with_condition builds overdetermined (d >= n) matrices")
    rng = np.random.default_rng(seed)
    u = _random_orthonormal(d, n, rng)
    v = _random_orthonormal(n, n, rng)
    s = singular_value_profile(n, cond, profile).astype(dtype)
    return (u * s) @ v.T


def condition_number(a: np.ndarray) -> float:
    """2-norm condition number ``sigma_max / sigma_min`` of a matrix."""
    svals = np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
    smin = svals.min()
    if smin == 0.0:
        return float("inf")
    return float(svals.max() / smin)


def estimate_condition(
    a: np.ndarray,
    *,
    oversampling: float = 2.0,
    seed: Optional[int] = 0,
) -> float:
    """Cheap sketched estimate of ``kappa_2(A)`` for a tall ``d x n`` matrix.

    By the subspace-embedding property (Definition 1.1), every singular value
    of ``S A`` lies within ``(1 +/- eps)`` of the corresponding singular value
    of ``A``, so ``kappa(S A)`` estimates ``kappa(A)`` up to a constant
    factor -- at the cost of one pass over ``A`` plus an SVD of the tiny
    ``k x n`` sketch, instead of an SVD of the full matrix.  This is the
    condition probe :func:`repro.linalg.planner.plan` uses to route a problem
    to the cheapest solver that is still stable for it.

    The sketch here is a host-side CountSketch (one pass, ``O(d n)`` work,
    no simulated-device involvement): planning must stay off the accounted
    clock, exactly like the residual checks in :mod:`repro.linalg.lstsq`.
    Estimates saturate around ``u^{-1} ~ 1e16`` -- beyond that the sketch
    itself is rank-deficient in floating point, which the planner treats as
    "worse than every solver's stability limit" anyway.
    """
    smax, smin = estimate_spectrum_bounds(a, oversampling=oversampling, seed=seed)
    if smin == 0.0:
        return float("inf")
    return smax / smin


def estimate_spectrum_bounds(
    a: np.ndarray,
    *,
    oversampling: float = 2.0,
    seed: Optional[int] = 0,
) -> tuple:
    """Sketched estimates ``(sigma_max, sigma_min)`` of a tall matrix.

    The same one-pass CountSketch probe as :func:`estimate_condition` (the
    singular values of ``S A`` track those of ``A`` within the embedding
    distortion), but returning the spectrum *extremes* rather than their
    ratio.  The planner needs the absolute scale for ridge routing: the
    Tikhonov ``lam`` only regularizes relative to ``sigma_min(A)^2``, so
    deciding whether the lambda-augmented system is benign requires knowing
    where the spectrum sits, not just how wide it is
    (:func:`repro.linalg.registry.ridge_effective_condition`).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1]:
        raise ValueError("estimate_spectrum_bounds expects a tall d x n matrix")
    d, n = a.shape
    # A CountSketch is an embedding at k ~ n^2 rows (Table 1), so the probe
    # uses k = 2 * oversampling * n^2 clipped to d -- the same one-pass /
    # O(d n + n^4)-work budget as the multisketch's first stage.
    k = min(d, max(int(np.ceil(2.0 * oversampling * n * n)), n + 4))
    if k >= d:
        svals = np.linalg.svd(a, compute_uv=False)
        return float(svals.max()), float(svals.min())
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, k, size=d)
    signs = rng.integers(0, 2, size=d).astype(np.float64) * 2.0 - 1.0
    sa = np.zeros((k, n))
    np.add.at(sa, rows, a * signs[:, None])
    svals = np.linalg.svd(sa, compute_uv=False)
    return float(svals.max()), float(svals.min())


def well_conditioned_matrix(
    d: int,
    n: int,
    *,
    cond: float = 100.0,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """The paper's timing-experiment matrix: random with ``kappa(A) = 100``.

    Section 6.3 fixes ``kappa(A) = 1e2`` so the normal equations remain
    stable and the comparison is purely about speed.
    """
    return matrix_with_condition(d, n, cond, seed=seed, dtype=dtype)
