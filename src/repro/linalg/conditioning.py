"""Test matrices with prescribed condition numbers and spectra.

Figure 8 of the paper studies how each least-squares solver degrades as the
condition number of ``A`` grows from 1 to 1e20: the normal equations fail
beyond ``kappa ~ u^{-1/2} ~ 1e8`` while the sketch-and-solve and QR solvers
track each other up to ``kappa ~ u^{-1} ~ 1e16``.  Reproducing that figure
requires matrices whose condition number is set exactly, which is what
:func:`matrix_with_condition` provides: ``A = U diag(s) V^T`` with Haar-ish
random orthonormal factors and a chosen singular-value profile.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np


def _random_orthonormal(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Random matrix with orthonormal columns (QR of a Gaussian)."""
    if cols > rows:
        raise ValueError("need rows >= cols for orthonormal columns")
    g = rng.standard_normal((rows, cols))
    q, r = np.linalg.qr(g)
    # Fix the signs so the distribution is Haar (and deterministic given rng).
    q *= np.sign(np.diag(r))
    return q


def singular_value_profile(
    n: int,
    cond: float,
    profile: Literal["geometric", "linear", "cluster"] = "geometric",
) -> np.ndarray:
    """Singular values in ``[1/cond, 1]`` following the requested profile.

    ``geometric`` (default) spaces them geometrically, which is the standard
    hard case for Gram-matrix-based methods; ``linear`` spaces them linearly;
    ``cluster`` puts one small singular value at ``1/cond`` and the rest at 1.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if cond < 1.0:
        raise ValueError("condition number must be >= 1")
    if n == 1:
        return np.array([1.0])
    if profile == "geometric":
        return np.geomspace(1.0, 1.0 / cond, n)
    if profile == "linear":
        return np.linspace(1.0, 1.0 / cond, n)
    if profile == "cluster":
        s = np.ones(n)
        s[-1] = 1.0 / cond
        return s
    raise ValueError(f"unknown profile '{profile}'")


def matrix_with_condition(
    d: int,
    n: int,
    cond: float,
    *,
    profile: Literal["geometric", "linear", "cluster"] = "geometric",
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Dense ``d x n`` matrix with condition number exactly ``cond``.

    The construction is ``A = U diag(s) V^T`` with random orthonormal ``U``
    (``d x n``) and ``V`` (``n x n``) and singular values from
    :func:`singular_value_profile`; by construction ``kappa_2(A) = cond`` up
    to rounding.
    """
    if d < n:
        raise ValueError("matrix_with_condition builds overdetermined (d >= n) matrices")
    rng = np.random.default_rng(seed)
    u = _random_orthonormal(d, n, rng)
    v = _random_orthonormal(n, n, rng)
    s = singular_value_profile(n, cond, profile).astype(dtype)
    return (u * s) @ v.T


def condition_number(a: np.ndarray) -> float:
    """2-norm condition number ``sigma_max / sigma_min`` of a matrix."""
    svals = np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
    smin = svals.min()
    if smin == 0.0:
        return float("inf")
    return float(svals.max() / smin)


def well_conditioned_matrix(
    d: int,
    n: int,
    *,
    cond: float = 100.0,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """The paper's timing-experiment matrix: random with ``kappa(A) = 100``.

    Section 6.3 fixes ``kappa(A) = 1e2`` so the normal equations remain
    stable and the comparison is purely about speed.
    """
    return matrix_with_condition(d, n, cond, seed=seed, dtype=dtype)
