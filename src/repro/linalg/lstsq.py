"""Least-squares solvers: normal equations, sketch-and-solve, Householder QR.

These are the three directly-compared solvers of Section 6.3 (rand_cholQR is
in :mod:`repro.linalg.rand_cholqr`).  Each solver accepts either host NumPy
arrays or device handles, runs on a simulated GPU executor, and returns a
:class:`LeastSquaresResult` carrying the solution, the achieved relative
residual, and the per-phase simulated time breakdown -- exactly the
decomposition plotted in Figure 5 (Gram matrix / AT*b / Sketch gen / Matrix
sketch / Vector sketch / POTRF / GEQRF / ORMQR / TRSV / TRSM).

Every solver here is also registered behind the uniform
``solve(spec) -> LeastSquaresResult`` interface of
:mod:`repro.linalg.registry` (names ``"normal_equations"``,
``"sketch_and_solve"``, ``"qr"``), which is how the adaptive planner and the
serving layer dispatch to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.timing import TimeBreakdown

ArrayLike = Union[np.ndarray, DeviceArray]


@dataclass
class LeastSquaresResult:
    """Outcome of a least-squares solve.

    Attributes
    ----------
    method:
        Solver name (``"normal_equations"``, ``"sketch_and_solve[...]"``, ...).
    x:
        Solution vector (host copy; ``None`` in analytic mode).
    residual_norm / relative_residual:
        ``||b - A x||_2`` and ``||b - A x||_2 / ||b||_2`` (NaN when analytic).
    breakdown:
        Simulated time breakdown of the solve (excludes problem generation).
    total_seconds:
        Convenience copy of ``breakdown.total()``.
    failed / failure_reason:
        Set when the solver broke down (e.g. Cholesky failure on an
        ill-conditioned Gram matrix), in which case ``x`` is ``None``.  When
        the solve went through the planner's fallback chain
        (:func:`repro.linalg.planner.execute_plan`), the last failure reason
        is preserved here even when ``failed`` is False -- a rescued solve
        still says what broke -- and ``extra["attempted"]`` records the full
        ``"solver1->solver2"`` chain that was tried.
    """

    method: str
    x: Optional[np.ndarray]
    residual_norm: float
    relative_residual: float
    breakdown: TimeBreakdown
    total_seconds: float
    failed: bool = False
    failure_reason: str = ""
    extra: Dict[str, object] = field(default_factory=dict)
    column_residuals: Optional[np.ndarray] = None

    @property
    def attempted_solvers(self) -> tuple:
        """Solver names tried for this result, in order (``(method,)`` when
        the solve never went through a fallback chain)."""
        attempted = self.extra.get("attempted")
        if isinstance(attempted, str) and attempted:
            return tuple(attempted.split("->"))
        return (self.method,)

    def record_attempt_chain(self, attempts, reasons) -> "LeastSquaresResult":
        """Stamp a planner fallback history onto this result (returns self).

        ``attempts`` is the ordered solver-name chain (this result's own
        solver last); ``reasons`` the failure reason of each *unsuccessful*
        attempt.  The chain lands in ``extra["attempted"]`` /
        ``extra["fallbacks"]``, and -- so that failures are never silently
        swallowed -- the last failure reason is kept in ``failure_reason``
        even when this result itself succeeded.
        """
        attempts = tuple(attempts)
        reasons = tuple(r for r in reasons if r)
        self.extra["attempted"] = "->".join(attempts)
        self.extra["fallbacks"] = float(max(len(attempts) - 1, 0))
        if reasons:
            self.extra["fallback_reasons"] = "; ".join(reasons)
            if not self.failure_reason:
                self.failure_reason = reasons[-1]
        return self

    @property
    def nrhs(self) -> int:
        """Number of right-hand sides solved (1 for a vector ``b``)."""
        if self.x is not None and self.x.ndim == 2:
            return self.x.shape[1]
        return int(self.extra.get("nrhs", 1))

    def phase_seconds(self) -> Dict[str, float]:
        """Seconds per phase label (the Figure-5 bar segments)."""
        return self.breakdown.by_phase()


def relative_residual(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> float:
    """``||b - A x||_2 / ||b||_2`` computed on the host in float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    nb = np.linalg.norm(b)
    if nb == 0.0:
        return float(np.linalg.norm(a @ x))
    return float(np.linalg.norm(b - a @ x) / nb)


def _to_device(executor: GPUExecutor, arr: ArrayLike, label: str, order: str = "C") -> DeviceArray:
    if isinstance(arr, DeviceArray):
        return arr
    return executor.to_device(np.asarray(arr), order=order, label=label)


def _residuals(
    executor: GPUExecutor, a: DeviceArray, b: DeviceArray, x: DeviceArray
) -> tuple:
    """Host-side residual computation (not charged to the solver's clock).

    Returns ``(residual_norm, relative_residual, x_host, column_residuals)``.
    For a block of right-hand sides the scalar norms are Frobenius norms (the
    aggregate over the batch) and ``column_residuals`` holds the per-column
    relative residuals; for a vector ``b`` it is ``None``.  The residual
    matrix is formed once and reused for both.
    """
    if not (executor.numeric and a.is_numeric and b.is_numeric and x.is_numeric):
        return float("nan"), float("nan"), None, None
    x_host = x.to_host()
    resid = b.data - a.data @ x_host
    res = float(np.linalg.norm(resid))
    nb = float(np.linalg.norm(b.data))
    rel = res / nb if nb > 0 else res
    columns = None
    if b.data.ndim == 2:
        col_res = np.linalg.norm(resid, axis=0)
        col_nb = np.linalg.norm(b.data, axis=0)
        columns = np.where(col_nb > 0, col_res / np.where(col_nb > 0, col_nb, 1.0), col_res)
    return res, rel, x_host, columns


# ---------------------------------------------------------------------------
# Normal equations
# ---------------------------------------------------------------------------
def normal_equations(
    a: ArrayLike,
    b: ArrayLike,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Solve ``min_x ||b - A x||_2`` via the normal equations.

    Pipeline (Section 6.1): Gram matrix ``G = A^T A`` with GEMM, right-hand
    side ``y = A^T b`` with GEMV, Cholesky ``G = R^T R`` (POTRF), then two
    triangular solves ``x = R^{-1} (R^{-T} y)``.

    This is the fastest deterministic direct solver but squares the condition
    number: it fails (Cholesky breakdown or garbage solution) once
    ``kappa(A)`` exceeds about ``u^{-1/2} ~ 1e8``; Figure 8 shows this.  The
    planner (:mod:`repro.linalg.planner`) therefore only routes requests here
    when the estimated conditioning is benign, with rand_cholQR / LSQR as the
    registered fallback chain.

    ``b`` may be a ``d x m`` block of right-hand sides: the Gram matrix and
    POTRF are paid once, ``A^T B`` becomes a GEMM and the triangular solves
    become TRSMs, matching the fused contract of the other registry solvers.
    """
    if executor is None:
        executor = GPUExecutor(numeric=True, track_memory=False)
    a_dev = _to_device(executor, a, "A", order="F")
    b_dev = _to_device(executor, b, "b")
    blas, solver = executor.blas, executor.solver
    multi_rhs = b_dev.ndim == 2

    mark = executor.mark()
    failed, reason = False, ""
    x_dev: Optional[DeviceArray] = None
    try:
        gram = blas.gram(a_dev, phase="Gram matrix")
        if multi_rhs:
            atb = blas.gemm(a_dev, b_dev, trans_a=True, phase="AT*b", label="ATB")
            r = solver.potrf(gram, phase="POTRF")
            y = solver.trsm_left(r, atb, transpose=True, phase="TRSV", label="forward_solve")
            x_dev = solver.trsm_left(r, y, transpose=False, phase="TRSV", label="solution")
        else:
            atb = blas.gemv(a_dev, b_dev, trans_a=True, phase="AT*b", label="ATb")
            r = solver.potrf(gram, phase="POTRF")
            y = solver.trsv(r, atb, transpose=True, phase="TRSV", label="forward_solve")
            x_dev = solver.trsv(r, y, transpose=False, phase="TRSV", label="solution")
    except np.linalg.LinAlgError as exc:
        failed, reason = True, f"Cholesky factorization failed: {exc}"

    breakdown = executor.breakdown_since(mark)
    if failed or x_dev is None:
        return LeastSquaresResult(
            method="normal_equations",
            x=None,
            residual_norm=float("inf"),
            relative_residual=float("inf"),
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            failed=True,
            failure_reason=reason,
        )
    res, rel, x_host, columns = _residuals(executor, a_dev, b_dev, x_dev)
    return LeastSquaresResult(
        method="normal_equations",
        x=x_host,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"nrhs": float(b_dev.shape[1])} if multi_rhs else {},
        column_residuals=columns,
    )


# ---------------------------------------------------------------------------
# Sketch-and-solve (Algorithm 1)
# ---------------------------------------------------------------------------
def sketch_and_solve(
    a: ArrayLike,
    b: ArrayLike,
    sketch: SketchOperator,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Algorithm 1: sketch-and-solve approximate least squares.

    ``Y = S A`` and ``z = S b`` are formed with the given sketch operator,
    then the reduced problem ``min_x ||z - Y x||_2`` is solved with a QR-based
    solve (GEQRF + ORMQR + TRSV), exactly as in the paper's implementation
    (GELS was avoided because it was significantly slower).

    ``b`` may also be a ``d x m`` block of right-hand sides, in which case the
    whole batch is solved against one sketch of ``A``: ``Z = S B`` is a single
    matrix sketch, ORMQR applies the reflectors to the whole block and a TRSM
    replaces the per-vector TRSVs.  This fused path is what the serving
    layer's micro-batcher calls -- the expensive ``S A`` and GEQRF work is
    paid once for the batch instead of once per request.

    The returned residual is measured against the *original* problem, so the
    O(1) distortion factor of the sketch shows up directly in
    ``relative_residual``.  That distortion is declared on the solver's
    registry entry (:mod:`repro.linalg.registry`, name
    ``"sketch_and_solve"``), which is how the planner knows to exclude this
    solver when a request cannot tolerate a suboptimal residual.
    """
    if executor is None:
        executor = sketch.executor
    if executor is not sketch.executor:
        raise ValueError("the sketch operator must live on the same executor as the solve")
    a_dev = _to_device(executor, a, "A", order="C")
    b_dev = _to_device(executor, b, "b")
    solver = executor.solver
    multi_rhs = b_dev.ndim == 2

    mark = executor.mark()
    sketch.generate()
    y = sketch.apply(a_dev, phase="Matrix sketch")
    if multi_rhs:
        z = sketch.apply(b_dev, phase="Vector sketch")
    else:
        z = sketch.apply_vector(b_dev, phase="Vector sketch")
    factors = solver.geqrf(y, phase="GEQRF")
    qtz = solver.ormqr(factors, z, phase="ORMQR")
    if multi_rhs:
        x_dev = solver.trsm_left(factors.r, qtz, phase="TRSV", label="solution")
    else:
        x_dev = solver.trsv(factors.r, qtz, phase="TRSV", label="solution")

    breakdown = executor.breakdown_since(mark)
    res, rel, x_host, columns = _residuals(executor, a_dev, b_dev, x_dev)
    return LeastSquaresResult(
        method=f"sketch_and_solve[{sketch.family}]",
        x=x_host,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"sketch_dim": float(sketch.k), "nrhs": float(z.shape[1]) if multi_rhs else 1.0},
        column_residuals=columns,
    )


# ---------------------------------------------------------------------------
# Householder QR reference
# ---------------------------------------------------------------------------
def qr_solve(
    a: ArrayLike,
    b: ArrayLike,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Reference Householder-QR least-squares solve on the original matrix.

    Numerically the gold standard (stable for ``kappa(A) < u^{-1}`` with no
    distortion), but far slower than every other method at the paper's sizes,
    which is why Figure 5 omits it; Figures 6-8 include its accuracy.  In the
    solver registry (:mod:`repro.linalg.registry`) it is the last link of
    every fallback chain: the solver of record when everything cheaper is
    outside its stability envelope.

    ``b`` may be a ``d x m`` block of right-hand sides (one GEQRF, block
    ORMQR, one TRSM).
    """
    if executor is None:
        executor = GPUExecutor(numeric=True, track_memory=False)
    a_dev = _to_device(executor, a, "A", order="F")
    b_dev = _to_device(executor, b, "b")
    multi_rhs = b_dev.ndim == 2

    mark = executor.mark()
    x_dev = executor.solver.householder_qr_solve(a_dev, b_dev)
    breakdown = executor.breakdown_since(mark)
    res, rel, x_host, columns = _residuals(executor, a_dev, b_dev, x_dev)
    return LeastSquaresResult(
        method="qr",
        x=x_host,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"nrhs": float(b_dev.shape[1])} if multi_rhs else {},
        column_residuals=columns,
    )
