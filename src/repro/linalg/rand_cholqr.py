"""Randomized Cholesky QR (Algorithm 4) and its least-squares solver (Algorithm 5).

rand_cholQR first sketches ``A`` down to ``Y = S A``, takes the R factor of
``Y``'s economy QR, and uses it to precondition ``A``; the preconditioned
matrix is nearly orthonormal, so a single Cholesky-QR pass on it is stable.
The factorization is accurate provided ``kappa(A) < u^{-1}`` ([Higgins et al.
2024], [Balabanov 2022]).

Algorithm 5 solves a least-squares problem from the same ingredients without
ever forming ``Q`` explicitly: only one TRSM is needed, and the method is
mathematically equivalent to the "preconditioned normal equations" of
[Ipsen 2025].  Relative to sketch-and-solve it has *no* distortion; relative
to the normal equations it is stable for ill-conditioned problems; the price
is that it touches the full ``d x n`` matrix several times, making it the
slowest of the three randomized options in Figure 5.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.linalg.lstsq import LeastSquaresResult, _residuals, _to_device

ArrayLike = Union[np.ndarray, DeviceArray]


def rand_cholqr(
    a: ArrayLike,
    sketch: SketchOperator,
    *,
    executor: Optional[GPUExecutor] = None,
) -> Tuple[DeviceArray, DeviceArray]:
    """Algorithm 4: randomized Cholesky QR factorization ``A = Q R``.

    Steps (phase labels in parentheses match Figure 5's legend):

    1. ``Y = S A``                      (Sketch gen / Matrix sketch)
    2. ``[~, R0] = qr(Y, 0)``           (GEQRF)
    3. ``A0 = A R0^{-1}``               (TRSM)
    4. ``G = A0^T A0``                  (Gram matrix)
    5. ``R1 = chol(G)``                 (POTRF)
    6. ``Q = A0 R1^{-1}``, ``R = R1 R0`` (TRSM / R update)

    Returns device handles ``(Q, R)``.
    """
    if executor is None:
        executor = sketch.executor
    if executor is not sketch.executor:
        raise ValueError("the sketch operator must live on the same executor as the factorization")
    a_dev = _to_device(executor, a, "A", order="C")
    blas, solver = executor.blas, executor.solver

    sketch.generate()
    y = sketch.apply(a_dev, phase="Matrix sketch")
    factors = solver.geqrf(y, phase="GEQRF")
    a0 = solver.trsm(a_dev, factors.r, phase="TRSM", label="A_preconditioned")
    gram = blas.gram(a0, phase="Gram matrix")
    r1 = solver.potrf(gram, phase="POTRF")
    q = solver.trsm(a0, r1, phase="TRSM", label="Q")
    r = blas.gemm(r1, factors.r, phase="R update", label="R")
    return q, r


def rand_cholqr_lstsq(
    a: ArrayLike,
    b: ArrayLike,
    sketch: SketchOperator,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Algorithm 5: rand_cholQR least-squares solve (one TRSM only).

    Steps:

    1. ``Y = S A``                       (Matrix sketch)
    2. ``[~, R0] = qr(Y, 0)``            (GEQRF)
    3. ``A0 = A R0^{-1}``                (TRSM)
    4. ``G = A0^T A0``, ``z = A0^T b``   (Gram matrix / AT*b)
    5. ``R1 = chol(G)``                  (POTRF)
    6. ``R = R1 R0``                     (R update)
    7. ``y = R^{-T} z'`` and ``x = R^{-1} y`` via two TRSVs, where
       ``z' = R0^T z`` restores the right-hand side of the original
       (unpreconditioned) normal equations.

    Concretely we solve the preconditioned normal equations
    ``(A0^T A0) w = A0^T b`` for ``w`` with the Cholesky factor ``R1`` and
    then recover ``x = R0^{-1} w``, which is algebraically identical and
    keeps every triangular solve ``n x n``.

    ``b`` may also be a ``d x m`` block of right-hand sides: the expensive
    steps (sketch, GEQRF, the big TRSM over ``A``, the Gram matrix, POTRF)
    are paid once, ``Z = A0^T B`` becomes a GEMM and the triangular solves
    become TRSMs over the whole block -- the fused path the serving layer
    uses for distortion-free micro-batched solves.

    The solution has *no* sketching distortion; stability holds for
    ``kappa(A) < u^{-1}``.  Registered as ``"rand_cholqr"`` in
    :mod:`repro.linalg.registry`; the planner uses it as the workhorse for
    ill-conditioned traffic (distortion-free, flat accuracy floor) and as
    the first fallback after a normal-equations POTRF breakdown.
    """
    if executor is None:
        executor = sketch.executor
    if executor is not sketch.executor:
        raise ValueError("the sketch operator must live on the same executor as the solve")
    a_dev = _to_device(executor, a, "A", order="C")
    b_dev = _to_device(executor, b, "b")
    blas, solver = executor.blas, executor.solver
    multi_rhs = b_dev.ndim == 2

    mark = executor.mark()
    failed, reason = False, ""
    x_dev: Optional[DeviceArray] = None
    try:
        sketch.generate()
        y = sketch.apply(a_dev, phase="Matrix sketch")
        factors = solver.geqrf(y, phase="GEQRF")
        a0 = solver.trsm(a_dev, factors.r, phase="TRSM", label="A_preconditioned")
        gram = blas.gram(a0, phase="Gram matrix")
        r1 = solver.potrf(gram, phase="POTRF")
        if multi_rhs:
            z = blas.gemm(a0, b_dev, trans_a=True, phase="AT*b", label="A0TB")
            # Solve (R1^T R1) W = Z, then X = R0^{-1} W, blockwise.
            w1 = solver.trsm_left(r1, z, transpose=True, phase="TRSV", label="forward_solve")
            w = solver.trsm_left(r1, w1, transpose=False, phase="TRSV", label="preconditioned_solution")
            x_dev = solver.trsm_left(factors.r, w, transpose=False, phase="TRSV", label="solution")
        else:
            z = blas.gemv(a0, b_dev, trans_a=True, phase="AT*b", label="A0Tb")
            # Solve (R1^T R1) w = z, then x = R0^{-1} w.
            w1 = solver.trsv(r1, z, transpose=True, phase="TRSV", label="forward_solve")
            w = solver.trsv(r1, w1, transpose=False, phase="TRSV", label="preconditioned_solution")
            x_dev = solver.trsv(factors.r, w, transpose=False, phase="TRSV", label="solution")
    except np.linalg.LinAlgError as exc:
        failed, reason = True, f"rand_cholQR breakdown: {exc}"

    breakdown = executor.breakdown_since(mark)
    if failed or x_dev is None:
        return LeastSquaresResult(
            method=f"rand_cholqr[{sketch.family}]",
            x=None,
            residual_norm=float("inf"),
            relative_residual=float("inf"),
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            failed=True,
            failure_reason=reason,
        )
    res, rel, x_host, columns = _residuals(executor, a_dev, b_dev, x_dev)
    return LeastSquaresResult(
        method=f"rand_cholqr[{sketch.family}]",
        x=x_host,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"sketch_dim": float(sketch.k), "nrhs": float(b_dev.shape[1]) if multi_rhs else 1.0},
        column_residuals=columns,
    )
