"""Adaptive solve planning: route each problem to the cheapest safe solver.

The registry (:mod:`repro.linalg.registry`) says what each solver *can* do;
this module decides what each request *should* use:

1. probe the spectrum with one cheap sketched estimate
   (:func:`repro.linalg.conditioning.estimate_condition` /
   :func:`~repro.linalg.conditioning.estimate_spectrum_bounds` -- one pass
   over ``A`` plus a tiny SVD, off the simulated clock like every other
   planning step);
2. keep the solvers of the spec's *problem class* (plain least squares, or
   ridge when ``spec.regularization > 0``) whose declared stability floor
   and distortion meet the spec's accuracy target at that conditioning --
   for ridge, at the lambda-shifted *effective* conditioning;
3. rank them by expected simulated seconds
   (:meth:`~repro.linalg.registry.RegisteredSolver.estimate_seconds`: a
   memoised analytic dry-run on the device model, so the ranking input is
   exactly what each solver would be charged;
   :func:`repro.theory.complexity.solver_complexity` is the corresponding
   closed-form Table-1 reference) and pick per policy;
4. execute the resulting :class:`SolvePlan`, walking its fallback chain when
   a solver breaks down (POTRF failure on an ill-conditioned Gram matrix,
   rand_cholQR breakdown, ...) instead of returning ``failed=True``.

Policies
--------
``"fixed"``
    Use exactly the requested solver, no probing, no fallback -- the
    pre-registry behaviour, and the baseline the routing benchmark compares
    against.
``"cheapest_accurate"``
    Cheapest admissible solver at the estimated conditioning; remaining
    admissible solvers form the fallback chain in increasing cost order.
``"adaptive"``
    Like ``cheapest_accurate`` but latency-budget aware: among solvers that
    fit ``spec.latency_budget`` it prefers the *most robust* (lowest
    accuracy floor), degrading to cheapest-admissible when nothing fits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray
from repro.gpu.device import DeviceSpec, H100_SXM5
from repro.gpu.executor import GPUExecutor
from repro.linalg.conditioning import estimate_condition, estimate_spectrum_bounds
from repro.linalg.lstsq import LeastSquaresResult
from repro.linalg.registry import (
    SolveSpec,
    available_solvers,
    canonical_solver_name,
    ensure_problem_solvers,
    get_solver,
)

ArrayLike = Union[np.ndarray, DeviceArray]

#: Recognised planning policies (also normalised by the serving layer).
POLICIES = ("fixed", "adaptive", "cheapest_accurate")

#: Chain order per problem class, used to break cost ties and to append
#: last-resort solvers: most robust last (the exact-QR family is the solver
#: of record when everything else fails).
_ROBUSTNESS_ORDER = {
    "least_squares": (
        "normal_equations",
        "sketch_and_solve",
        "rand_cholqr",
        "sketch_precond_lsqr",
        "qr",
    ),
    "ridge": (
        "ridge_normal_equations",
        "ridge_precond_lsqr",
        "ridge_qr",
    ),
}

#: Solvers appended to every fallback chain of a problem class (in order),
#: regardless of admissibility: a fallback runs because a breakdown just
#: disproved the conditioning estimate, so the chain must end in solvers
#: that survive any conditioning.
_LAST_RESORT = {
    "least_squares": ("rand_cholqr", "sketch_precond_lsqr", "qr"),
    "ridge": ("ridge_precond_lsqr", "ridge_qr"),
}


def normalize_policy(policy: str) -> str:
    """Canonical policy name, or ``ValueError`` for unknown policies."""
    p = policy.lower()
    if p in POLICIES:
        return p
    raise ValueError(f"policy must be one of {POLICIES}, got '{policy}'")


@dataclass(frozen=True)
class SolvePlan:
    """The planner's decision for one request.

    Attributes
    ----------
    solver:
        Canonical name of the solver to run first.
    chain:
        Full execution order: ``chain[0] == solver``, the rest are fallbacks
        tried in order when a solver reports ``failed``.
    kind / embedding_dim:
        Sketch family and output dimension for the sketch-based links.
    cond_estimate:
        The conditioning estimate the decision was based on.
    policy:
        Policy that produced this plan.
    costs:
        Estimated simulated seconds per considered solver (planner's own
        ranking input; useful for telemetry and tests).
    reason:
        One-line human-readable justification.
    """

    solver: str
    chain: Tuple[str, ...]
    kind: str
    embedding_dim: int
    cond_estimate: float
    policy: str
    costs: Dict[str, float]
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.chain or self.chain[0] != self.solver:
            raise ValueError("plan chain must start with the chosen solver")


def _probe_spectrum(a: Optional[ArrayLike], spec: SolveSpec) -> Tuple[float, Optional[float]]:
    """``(kappa, smax)`` for planning: the spec's estimates, else one sketched probe.

    ``smax`` is only needed to place the ridge lambda on the singular-value
    scale (:meth:`~repro.linalg.registry.SolveSpec.effective_condition`);
    it comes from the same sketched SVD as the condition estimate, so ridge
    planning costs no extra passes over ``A``.  ``None`` means unknown
    (shape-only planning), which leaves the effective conditioning at the
    unit scale.
    """
    if a is None:
        a_np = None
    else:
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
    if spec.cond_estimate is not None:
        smax = spec.smax_estimate
        if smax is None and spec.regularization > 0.0 and a_np is not None:
            # A ridge floor evaluated with the default unit smax can be off
            # by orders of magnitude; with the matrix in hand, one probe
            # fills the scale even when the caller supplied kappa.
            smax, _ = estimate_spectrum_bounds(
                a_np, oversampling=spec.oversampling, seed=spec.seed
            )
        return float(spec.cond_estimate), smax
    if a_np is None:  # no matrix / analytic-mode handle: nothing to probe
        return 1.0, spec.smax_estimate
    if spec.regularization > 0.0:
        smax, smin = estimate_spectrum_bounds(
            a_np, oversampling=spec.oversampling, seed=spec.seed
        )
        cond = float("inf") if smin == 0.0 else smax / smin
        return cond, smax
    return (
        estimate_condition(a_np, oversampling=spec.oversampling, seed=spec.seed),
        spec.smax_estimate,
    )


def plan(
    a: Optional[ArrayLike] = None,
    spec: Optional[SolveSpec] = None,
    *,
    policy: str = "cheapest_accurate",
    solver: Optional[str] = None,
    device: DeviceSpec = H100_SXM5,
    cost_source=None,
    **spec_overrides,
) -> SolvePlan:
    """Build a :class:`SolvePlan` for one problem.

    Parameters
    ----------
    a:
        The coefficient matrix (host or device).  Optional when ``spec``
        already carries a ``cond_estimate`` or under the ``"fixed"`` policy.
    spec:
        The request; built via :meth:`SolveSpec.from_problem` from ``a`` and
        ``spec_overrides`` when omitted.
    policy:
        One of :data:`POLICIES`.
    solver:
        Required for ``"fixed"``; otherwise an optional preference that
        seeds the ranking (the planner may still fall back from it).
    device:
        Roofline used to convert flop estimates into seconds.
    cost_source:
        Optional ``(name, spec, device, analytic_seconds) -> seconds``
        hook that replaces the analytic candidate cost in the ranking --
        the closed-loop path hands in
        :meth:`repro.obs.calibrate.CalibratedEstimator.as_cost_source` so
        adaptive/cheapest-accurate policies rank by *measured* reality.
        Admissibility (accuracy floors) is never delegated: the hook only
        reshapes costs, so a miscalibrated factor can reorder the chain
        but cannot route to a solver that misses the accuracy target.
    """
    policy = normalize_policy(policy)

    def _cost(name: str, spec_) -> float:
        analytic = get_solver(name).estimate_seconds(spec_, device)
        if cost_source is None:
            return analytic
        return float(cost_source(name, spec_, device, analytic))

    if spec is None:
        if a is None:
            raise ValueError("plan() needs a matrix or an explicit SolveSpec")
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
        spec = SolveSpec.from_problem(a_np, **spec_overrides)
    elif spec_overrides:
        spec = replace(spec, **spec_overrides)
    ensure_problem_solvers(spec.problem)

    if policy == "fixed":
        if solver is None:
            raise ValueError("the 'fixed' policy needs an explicit solver")
        name = canonical_solver_name(solver)
        if get_solver(name).capabilities.problem != spec.problem:
            raise ValueError(
                f"fixed routing to '{name}' "
                f"({get_solver(name).capabilities.problem}) cannot serve a "
                f"'{spec.problem}' spec: it would answer the wrong question"
            )
        return SolvePlan(
            solver=name,
            chain=(name,),
            kind=spec.kind,
            embedding_dim=spec.embedding_dim,
            cond_estimate=spec.cond_estimate if spec.cond_estimate is not None else float("nan"),
            policy=policy,
            costs={name: _cost(name, spec)},
            reason=f"fixed routing to {name}",
        )

    cond, smax = _probe_spectrum(a, spec)
    spec = replace(spec, cond_estimate=cond, smax_estimate=smax)
    # All floor comparisons happen at the conditioning the solver actually
    # faces: kappa(A) for least squares, the lambda-shifted effective
    # kappa of the augmented system for ridge.
    cond_eff = spec.effective_condition(cond)
    order = _ROBUSTNESS_ORDER[spec.problem]

    candidates = {}
    for name in available_solvers():
        registered = get_solver(name)
        caps = registered.capabilities
        if caps.problem != spec.problem:
            continue  # a solver for a different question is never a candidate
        candidates[name] = {
            "caps": caps,
            "cost": _cost(name, spec),
            "admissible": caps.admissible(spec, cond),
        }
    admissible = [n for n, c in candidates.items() if c["admissible"]]
    costs = {n: c["cost"] for n, c in candidates.items()}

    if not admissible:
        # Nothing meets the target (e.g. kappa beyond every floor): serve
        # best-effort with the most robust solvers rather than refusing.
        chain = tuple(
            n for n in order if n in candidates and candidates[n]["caps"].distortion == 1.0
        )[::-1]
        chain = chain or tuple(candidates)
        return SolvePlan(
            solver=chain[0],
            chain=chain,
            kind=spec.kind,
            embedding_dim=spec.embedding_dim,
            cond_estimate=cond,
            policy=policy,
            costs=costs,
            reason=(
                f"no solver meets target {spec.accuracy_target:.1e} at "
                f"effective kappa~{cond_eff:.1e}; serving best-effort, most robust first"
            ),
        )

    by_cost = sorted(admissible, key=lambda n: (costs[n], order.index(n)))
    chosen = by_cost[0]
    reason = f"cheapest admissible at effective kappa~{cond_eff:.1e}"
    if solver is not None:
        preferred = canonical_solver_name(solver)
        if preferred in admissible:
            chosen = preferred
            reason = f"requested solver admissible at effective kappa~{cond_eff:.1e}"

    if policy == "adaptive" and spec.latency_budget is not None:
        within = [n for n in admissible if costs[n] <= spec.latency_budget]
        if within:
            # Most robust (lowest floor, no distortion) that fits the budget.
            chosen = min(
                within,
                key=lambda n: (
                    candidates[n]["caps"].accuracy_floor(cond_eff),
                    candidates[n]["caps"].distortion,
                    costs[n],
                ),
            )
            reason = f"most robust within {spec.latency_budget:.2e}s budget"
        else:
            chosen = by_cost[0]
            reason = "nothing fits the latency budget; degraded to cheapest admissible"

    # Fallback chain: remaining *distortion-free* admissible solvers by
    # cost, then the problem class's last-resort robust solvers (exact QR
    # last).  A fallback runs because a breakdown just disproved the
    # conditioning estimate, so solvers whose admissibility leaned on that
    # estimate's optimism (the distortion-bearing sketch-and-solve chief
    # among them) are skipped -- matching the POTRF failure -> rand_cholQR
    # -> LSQR chain of the issue.
    chain = [chosen] + [
        n
        for n in by_cost
        if n != chosen and candidates[n]["caps"].distortion == 1.0
    ]
    for name in _LAST_RESORT[spec.problem]:
        if name in candidates and name not in chain:
            chain.append(name)
    return SolvePlan(
        solver=chosen,
        chain=tuple(chain),
        kind=spec.kind,
        embedding_dim=spec.embedding_dim,
        cond_estimate=cond,
        policy=policy,
        costs=costs,
        reason=reason,
    )


def execute_plan(
    plan_: SolvePlan,
    a: ArrayLike,
    b: ArrayLike,
    spec: Optional[SolveSpec] = None,
    *,
    executor: Optional[GPUExecutor] = None,
    operators: Optional[Dict[str, SketchOperator]] = None,
    operator_provider=None,
    span_log: Optional[List[Dict[str, object]]] = None,
) -> LeastSquaresResult:
    """Run a plan, walking the fallback chain on solver breakdown.

    ``operators`` maps solver names to pre-built sketch operators (the
    serving layer passes its cached ones); ``operator_provider`` is a
    callable ``(solver_name) -> SketchOperator`` consulted next, and solvers
    without either build their own from the spec.  Every attempted solver
    and every failure reason is recorded on the returned result via
    :meth:`~repro.linalg.lstsq.LeastSquaresResult.record_attempt_chain`, so
    a rescued solve still reports what broke and a failed solve carries the
    last reason instead of swallowing it.

    ``span_log``, when given a list, receives one dict per attempted chain
    link -- ``{"solver", "start", "end", "failed", "reason", "hop"}`` with
    start/end read off the executor's simulated clock (zeros without an
    executor) -- which the serving layer turns into per-attempt trace spans
    without the planner knowing about tracers.
    """
    if spec is None:
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
        b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        spec = SolveSpec.from_problem(a_np, b_np, kind=plan_.kind)
    attempts = []
    reasons = []
    last_result: Optional[LeastSquaresResult] = None

    def _log_attempt(name: str, start: float, failed: bool, reason: Optional[str]) -> None:
        if span_log is None:
            return
        span_log.append(
            {
                "solver": name,
                "start": start,
                "end": executor.elapsed if executor is not None else 0.0,
                "failed": failed,
                "reason": reason,
                "hop": len(attempts) - 1,
            }
        )

    for name in plan_.chain:
        solver = get_solver(name)
        operator = None
        if solver.capabilities.needs_sketch:
            if operators and name in operators:
                operator = operators[name]
            elif operator_provider is not None:
                operator = operator_provider(name)
        attempts.append(name)
        attempt_start = executor.elapsed if executor is not None else 0.0
        try:
            result = solver.solve(a, b, spec, operator=operator, executor=executor)
        except np.linalg.LinAlgError as exc:  # defensive: adapters usually catch
            reasons.append(f"{name}: {exc}")
            _log_attempt(name, attempt_start, True, str(exc))
            continue
        if not result.failed:
            _log_attempt(name, attempt_start, False, None)
            return result.record_attempt_chain(attempts, reasons)
        reasons.append(f"{name}: {result.failure_reason}" if result.failure_reason else name)
        _log_attempt(name, attempt_start, True, result.failure_reason)
        last_result = result
    if last_result is None:  # pragma: no cover - chain is never empty
        raise RuntimeError("solve plan had no executable links")
    return last_result.record_attempt_chain(attempts, reasons)


def plan_and_execute(
    a: ArrayLike,
    b: ArrayLike,
    spec: Optional[SolveSpec] = None,
    *,
    policy: str = "cheapest_accurate",
    solver: Optional[str] = None,
    executor: Optional[GPUExecutor] = None,
    device: DeviceSpec = H100_SXM5,
    **spec_overrides,
) -> LeastSquaresResult:
    """Convenience: :func:`plan` then :func:`execute_plan` in one call."""
    if spec is None:
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
        b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        spec = SolveSpec.from_problem(a_np, b_np, **spec_overrides)
    elif spec_overrides:
        spec = replace(spec, **spec_overrides)
    plan_ = plan(a, spec, policy=policy, solver=solver, device=device)
    return execute_plan(plan_, a, b, spec, executor=executor)
