"""Sketch-preconditioned iterative least squares (Blendenpik / LSRN style).

Section 6 of the paper notes that when the sketch-and-solve distortion is
unacceptable one can still use sketching to accelerate an *exact* solve,
either directly (rand_cholQR, Algorithm 5) or through "an iterative method
such as Blendenpik or LSRN" [Avron et al. 2010; Meng et al. 2014].  This
module implements that second route so the repository covers the full design
space the paper discusses:

1. sketch ``A`` (any operator from :mod:`repro.core`, the multisketch being
   the cheapest),
2. take the R factor of the sketched matrix's economy QR,
3. run LSQR on the right-preconditioned system ``min ||b - (A R^{-1}) y||``,
   whose condition number is O(1) by the subspace-embedding property, and
4. recover ``x = R^{-1} y``.

The iteration count is therefore independent of ``kappa(A)``; each iteration
costs two passes over ``A`` (one multiply by ``A R^{-1}``, one by its
transpose), which the simulated cost model charges as GEMV-class kernels.

Accuracy note: this is a plain LSQR recurrence without reorthogonalisation or
iterative refinement, so the attainable relative residual has a floor that
scales like ``u * kappa(A)`` -- still orders of magnitude beyond where the
normal equations break down, but short of the fully refined Blendenpik of
[Avron et al. 2010].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.linalg as sla

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest
from repro.linalg.lstsq import LeastSquaresResult, _to_device

ArrayLike = Union[np.ndarray, DeviceArray]


@dataclass
class IterativeSolveInfo:
    """Convergence record of the preconditioned LSQR iteration."""

    iterations: int
    converged: bool
    residual_history: list

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")


def _charge_matvec(executor: GPUExecutor, d: int, n: int, phase: str) -> None:
    """Charge one pass over A (a d x n GEMV) to the simulated clock."""
    itemsize = 8
    executor.launch(
        KernelRequest(
            name="lsqr_matvec",
            kclass=KernelClass.STREAM,
            bytes_read=float(d) * n * itemsize,
            bytes_written=float(max(d, n)) * itemsize,
            flops=2.0 * d * n,
            dtype_size=itemsize,
            phase=phase,
        )
    )


def sketch_preconditioned_lsqr(
    a: ArrayLike,
    b: ArrayLike,
    sketch: SketchOperator,
    *,
    executor: Optional[GPUExecutor] = None,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> LeastSquaresResult:
    """Blendenpik-style least squares: sketch, factor, precondition, iterate.

    Parameters
    ----------
    a, b:
        The overdetermined problem ``min_x ||b - A x||_2``.
    sketch:
        Any sketch operator with ``k >= n`` rows (the multisketch with
        ``k2 = 2n`` is the natural choice).
    tol:
        Relative tolerance on the preconditioned normal-equation residual
        ``||(A R^{-1})^T r||`` used as the stopping criterion.
    max_iterations:
        Iteration cap; with a subspace-embedding preconditioner LSQR
        converges in a few tens of iterations regardless of ``kappa(A)``.

    Returns
    -------
    LeastSquaresResult
        With the converged solution; ``extra`` carries the iteration count
        under ``"iterations"`` and convergence flag under ``"converged"``.
    """
    if executor is None:
        executor = sketch.executor
    if executor is not sketch.executor:
        raise ValueError("the sketch operator must live on the same executor as the solve")
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")

    a_dev = _to_device(executor, a, "A", order="C")
    b_dev = _to_device(executor, b, "b")
    d, n = a_dev.shape
    solver = executor.solver

    mark = executor.mark()

    # 1-2: sketch and factor (same ingredients as rand_cholQR's first steps).
    sketch.generate()
    y = sketch.apply(a_dev, phase="Matrix sketch")
    factors = solver.geqrf(y, phase="GEQRF")

    # 3: preconditioned LSQR in host arithmetic (each pass over A charged).
    if not (executor.numeric and a_dev.is_numeric and b_dev.is_numeric):
        # Analytic mode: charge a representative number of iterations.
        representative_iters = 30
        for _ in range(representative_iters):
            _charge_matvec(executor, d, n, "LSQR")
            _charge_matvec(executor, d, n, "LSQR")
        breakdown = executor.breakdown_since(mark)
        return LeastSquaresResult(
            method=f"blendenpik[{sketch.family}]",
            x=None,
            residual_norm=float("nan"),
            relative_residual=float("nan"),
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            extra={"iterations": float(representative_iters), "converged": 1.0},
        )

    a_np = a_dev.data
    b_np = b_dev.data
    r_np = factors.r.require_data()

    def apply_pre(v: np.ndarray) -> np.ndarray:
        """Compute (A R^{-1}) v."""
        _charge_matvec(executor, d, n, "LSQR")
        return a_np @ sla.solve_triangular(r_np, v, lower=False)

    def apply_pre_t(u: np.ndarray) -> np.ndarray:
        """Compute (A R^{-1})^T u."""
        _charge_matvec(executor, d, n, "LSQR")
        return sla.solve_triangular(r_np, a_np.T @ u, lower=False, trans="T")

    # Golub-Kahan bidiagonalisation (standard LSQR recurrences).
    history = []
    u = b_np.copy()
    beta = float(np.linalg.norm(u))
    if beta > 0:
        u /= beta
    v = apply_pre_t(u)
    alpha = float(np.linalg.norm(v))
    if alpha > 0:
        v /= alpha
    w = v.copy()
    y_sol = np.zeros(n)
    phi_bar, rho_bar = beta, alpha
    converged = False
    norm_atb = alpha * beta if alpha * beta > 0 else 1.0

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        u = apply_pre(v) - alpha * u
        beta = float(np.linalg.norm(u))
        if beta > 0:
            u /= beta
        v = apply_pre_t(u) - beta * v
        alpha = float(np.linalg.norm(v))
        if alpha > 0:
            v /= alpha

        rho = float(np.hypot(rho_bar, beta))
        c, s = rho_bar / rho, beta / rho
        theta = s * alpha
        rho_bar = -c * alpha
        phi = c * phi_bar
        phi_bar = s * phi_bar

        y_sol += (phi / rho) * w
        w = v - (theta / rho) * w

        # ||(AR^{-1})^T r|| = phi_bar * alpha * |c|; normalise by the initial value.
        grad_norm = abs(phi_bar * alpha * c)
        history.append(grad_norm / norm_atb)
        if history[-1] <= tol:
            converged = True
            break

    # 4: undo the preconditioner.
    x_np = sla.solve_triangular(r_np, y_sol, lower=False)
    breakdown = executor.breakdown_since(mark)

    res = float(np.linalg.norm(b_np - a_np @ x_np))
    nb = float(np.linalg.norm(b_np))
    rel = res / nb if nb > 0 else res
    return LeastSquaresResult(
        method=f"blendenpik[{sketch.family}]",
        x=x_np,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"iterations": float(iterations), "converged": float(converged)},
    )
