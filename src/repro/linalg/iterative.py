"""Sketch-preconditioned iterative least squares (Blendenpik / LSRN style).

Section 6 of the paper notes that when the sketch-and-solve distortion is
unacceptable one can still use sketching to accelerate an *exact* solve,
either directly (rand_cholQR, Algorithm 5) or through "an iterative method
such as Blendenpik or LSRN" [Avron et al. 2010; Meng et al. 2014].  This
module implements that second route so the repository covers the full design
space the paper discusses:

1. sketch ``A`` (any operator from :mod:`repro.core`, the multisketch being
   the cheapest),
2. take the R factor of the sketched matrix's economy QR,
3. run LSQR on the right-preconditioned system ``min ||b - (A R^{-1}) y||``,
   whose condition number is O(1) by the subspace-embedding property, and
4. recover ``x = R^{-1} y``.

The iteration count is therefore independent of ``kappa(A)``; each iteration
costs two passes over ``A`` (one multiply by ``A R^{-1}``, one by its
transpose), which the simulated cost model charges as GEMV-class kernels.

Accuracy note: this is a plain LSQR recurrence without reorthogonalisation or
iterative refinement, so the attainable relative residual has a floor that
scales like ``u * kappa(A)`` -- still orders of magnitude beyond where the
normal equations break down, but short of the fully refined Blendenpik of
[Avron et al. 2010].  That floor is exactly what the solver declares on its
registry entry (:mod:`repro.linalg.registry`, name ``"sketch_precond_lsqr"``),
making it the planner's last sketch-based fallback before Householder QR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.linalg as sla

from repro.core.base import SketchOperator
from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest
from repro.linalg.lstsq import LeastSquaresResult, _to_device

ArrayLike = Union[np.ndarray, DeviceArray]


@dataclass
class IterativeSolveInfo:
    """Convergence record of the preconditioned LSQR iteration."""

    iterations: int
    converged: bool
    residual_history: list

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")


def _charge_matvec(executor: GPUExecutor, d: int, n: int, phase: str, nrhs: int = 1) -> None:
    """Charge one pass over A (a d x n GEMV, or a GEMM for a block of RHS).

    The fused multi-RHS path reads the ``d x n`` matrix *once* per pass no
    matter how many right-hand sides ride along -- that single-read
    amortisation is where the serving layer's batched iterative solves get
    their speedup, exactly as in the direct solvers' TRSM paths.
    """
    itemsize = 8
    executor.launch(
        KernelRequest(
            name="lsqr_matvec" if nrhs == 1 else "lsqr_matmat",
            kclass=KernelClass.STREAM if nrhs == 1 else KernelClass.GEMM,
            bytes_read=(float(d) * n + float(min(d, n)) * nrhs) * itemsize,
            bytes_written=float(max(d, n)) * nrhs * itemsize,
            flops=2.0 * d * n * nrhs,
            dtype_size=itemsize,
            phase=phase,
        )
    )


def _lsqr_block(
    executor: GPUExecutor,
    a_np: np.ndarray,
    b_np: np.ndarray,
    r_np: np.ndarray,
    *,
    tol: float,
    max_iterations: int,
) -> tuple:
    """Fused multi-RHS preconditioned LSQR (Golub-Kahan per column, vectorised).

    Each column of ``B`` follows exactly the recurrence of the single-vector
    path -- the bidiagonalisation scalars become per-column vectors -- but
    every pass over ``A`` is a single GEMM shared by all still-active
    columns.  A column that meets the tolerance is *frozen* (its iterate
    stops updating), so the returned solutions match ``m`` independent
    single-vector solves column for column while late-converging columns
    keep iterating.

    Returns ``(X, iterations, converged)`` with per-column iteration counts
    and convergence flags.
    """
    d, n = a_np.shape
    m = b_np.shape[1]

    def apply_pre(v: np.ndarray) -> np.ndarray:
        _charge_matvec(executor, d, n, "LSQR", nrhs=v.shape[1])
        return a_np @ sla.solve_triangular(r_np, v, lower=False)

    def apply_pre_t(u: np.ndarray) -> np.ndarray:
        _charge_matvec(executor, d, n, "LSQR", nrhs=u.shape[1])
        return sla.solve_triangular(r_np, a_np.T @ u, lower=False, trans="T")

    def normalise(block: np.ndarray) -> tuple:
        norms = np.linalg.norm(block, axis=0)
        return block / np.where(norms > 0, norms, 1.0), norms

    u, beta = normalise(b_np.copy())
    v, alpha = normalise(apply_pre_t(u))
    w = v.copy()
    y_sol = np.zeros((n, m))
    phi_bar, rho_bar = beta.copy(), alpha.copy()
    norm_atb = np.where(alpha * beta > 0, alpha * beta, 1.0)

    # A column with (A R^{-1})^T b = 0 (e.g. an all-zero right-hand side) is
    # already at its minimiser y = 0; iterating it would divide 0/0 in the
    # Givens rotation, so it starts converged instead.
    active = alpha * beta > 0
    iterations = np.zeros(m, dtype=np.int64)
    converged = ~active.copy()

    for it in range(1, max_iterations + 1):
        if not active.any():
            break
        idx = np.flatnonzero(active)
        ua, beta_a = normalise(apply_pre(v[:, idx]) - alpha[idx] * u[:, idx])
        va, alpha_a = normalise(apply_pre_t(ua) - beta_a * v[:, idx])

        rho = np.hypot(rho_bar[idx], beta_a)
        rho = np.where(rho > 0, rho, 1.0)  # exactly-converged column: c=s=0
        c, s = rho_bar[idx] / rho, beta_a / rho
        theta = s * alpha_a
        rho_bar[idx] = -c * alpha_a
        phi = c * phi_bar[idx]
        phi_bar[idx] = s * phi_bar[idx]

        wa = w[:, idx]
        y_sol[:, idx] += (phi / rho) * wa
        w[:, idx] = va - (theta / rho) * wa
        u[:, idx], v[:, idx] = ua, va
        alpha[idx], beta[idx] = alpha_a, beta_a
        iterations[idx] = it

        done = np.abs(phi_bar[idx] * alpha_a * c) / norm_atb[idx] <= tol
        if done.any():
            converged[idx[done]] = True
            active[idx[done]] = False

    x = sla.solve_triangular(r_np, y_sol, lower=False)
    return x, iterations, converged


def sketch_preconditioned_lsqr(
    a: ArrayLike,
    b: ArrayLike,
    sketch: SketchOperator,
    *,
    executor: Optional[GPUExecutor] = None,
    tol: float = 1e-10,
    max_iterations: int = 100,
) -> LeastSquaresResult:
    """Blendenpik-style least squares: sketch, factor, precondition, iterate.

    Parameters
    ----------
    a, b:
        The overdetermined problem ``min_x ||b - A x||_2``.  ``b`` may also
        be a ``d x m`` block of right-hand sides: the sketch and the GEQRF
        are paid once, each LSQR pass over ``A`` becomes a single GEMM
        shared by every still-active column, and per-column convergence is
        tracked independently -- the fused path the serving layer's
        micro-batcher uses for iterative solves (the same contract as the
        direct solvers' multi-RHS paths; see
        :func:`repro.linalg.lstsq.sketch_and_solve`).
    sketch:
        Any sketch operator with ``k >= n`` rows (the multisketch with
        ``k2 = 2n`` is the natural choice).
    tol:
        Relative tolerance on the preconditioned normal-equation residual
        ``||(A R^{-1})^T r||`` used as the stopping criterion.
    max_iterations:
        Iteration cap; with a subspace-embedding preconditioner LSQR
        converges in a few tens of iterations regardless of ``kappa(A)``.

    Returns
    -------
    LeastSquaresResult
        With the converged solution; ``extra`` carries the iteration count
        under ``"iterations"`` and convergence flag under ``"converged"``.
    """
    if executor is None:
        executor = sketch.executor
    if executor is not sketch.executor:
        raise ValueError("the sketch operator must live on the same executor as the solve")
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")

    a_dev = _to_device(executor, a, "A", order="C")
    b_dev = _to_device(executor, b, "b")
    d, n = a_dev.shape
    multi_rhs = b_dev.ndim == 2
    nrhs = b_dev.shape[1] if multi_rhs else 1
    solver = executor.solver

    mark = executor.mark()

    # 1-2: sketch and factor (same ingredients as rand_cholQR's first steps).
    sketch.generate()
    y = sketch.apply(a_dev, phase="Matrix sketch")
    factors = solver.geqrf(y, phase="GEQRF")

    # 3: preconditioned LSQR in host arithmetic (each pass over A charged).
    if not (executor.numeric and a_dev.is_numeric and b_dev.is_numeric):
        # Analytic mode: charge a representative number of iterations.
        representative_iters = 30
        for _ in range(representative_iters):
            _charge_matvec(executor, d, n, "LSQR", nrhs=nrhs)
            _charge_matvec(executor, d, n, "LSQR", nrhs=nrhs)
        breakdown = executor.breakdown_since(mark)
        return LeastSquaresResult(
            method=f"blendenpik[{sketch.family}]",
            x=None,
            residual_norm=float("nan"),
            relative_residual=float("nan"),
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            extra={
                "iterations": float(representative_iters),
                "converged": 1.0,
                "nrhs": float(nrhs),
            },
        )

    a_np = a_dev.data
    b_np = b_dev.data
    r_np = factors.r.require_data()

    if multi_rhs:
        x_np, per_col_iters, per_col_conv = _lsqr_block(
            executor, a_np, b_np, r_np, tol=tol, max_iterations=max_iterations
        )
        breakdown = executor.breakdown_since(mark)
        resid = b_np - a_np @ x_np
        res = float(np.linalg.norm(resid))
        nb = float(np.linalg.norm(b_np))
        col_res = np.linalg.norm(resid, axis=0)
        col_nb = np.linalg.norm(b_np, axis=0)
        columns = np.where(col_nb > 0, col_res / np.where(col_nb > 0, col_nb, 1.0), col_res)
        return LeastSquaresResult(
            method=f"blendenpik[{sketch.family}]",
            x=x_np,
            residual_norm=res,
            relative_residual=res / nb if nb > 0 else res,
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            extra={
                "iterations": float(per_col_iters.max(initial=0)),
                "converged": float(bool(per_col_conv.all())),
                "nrhs": float(nrhs),
            },
            column_residuals=columns,
        )

    def apply_pre(v: np.ndarray) -> np.ndarray:
        """Compute (A R^{-1}) v."""
        _charge_matvec(executor, d, n, "LSQR")
        return a_np @ sla.solve_triangular(r_np, v, lower=False)

    def apply_pre_t(u: np.ndarray) -> np.ndarray:
        """Compute (A R^{-1})^T u."""
        _charge_matvec(executor, d, n, "LSQR")
        return sla.solve_triangular(r_np, a_np.T @ u, lower=False, trans="T")

    # Golub-Kahan bidiagonalisation (standard LSQR recurrences).
    history = []
    u = b_np.copy()
    beta = float(np.linalg.norm(u))
    if beta > 0:
        u /= beta
    v = apply_pre_t(u)
    alpha = float(np.linalg.norm(v))
    if alpha > 0:
        v /= alpha
    w = v.copy()
    y_sol = np.zeros(n)
    phi_bar, rho_bar = beta, alpha
    converged = False
    norm_atb = alpha * beta if alpha * beta > 0 else 1.0

    iterations = 0
    if alpha * beta == 0.0:
        # (A R^{-1})^T b = 0: y = 0 is already the minimiser (e.g. b = 0);
        # iterating would divide 0/0 in the first Givens rotation.
        converged = True
        max_iterations = 0
    for iterations in range(1, max_iterations + 1):
        u = apply_pre(v) - alpha * u
        beta = float(np.linalg.norm(u))
        if beta > 0:
            u /= beta
        v = apply_pre_t(u) - beta * v
        alpha = float(np.linalg.norm(v))
        if alpha > 0:
            v /= alpha

        rho = float(np.hypot(rho_bar, beta))
        c, s = rho_bar / rho, beta / rho
        theta = s * alpha
        rho_bar = -c * alpha
        phi = c * phi_bar
        phi_bar = s * phi_bar

        y_sol += (phi / rho) * w
        w = v - (theta / rho) * w

        # ||(AR^{-1})^T r|| = phi_bar * alpha * |c|; normalise by the initial value.
        grad_norm = abs(phi_bar * alpha * c)
        history.append(grad_norm / norm_atb)
        if history[-1] <= tol:
            converged = True
            break

    # 4: undo the preconditioner.
    x_np = sla.solve_triangular(r_np, y_sol, lower=False)
    breakdown = executor.breakdown_since(mark)

    res = float(np.linalg.norm(b_np - a_np @ x_np))
    nb = float(np.linalg.norm(b_np))
    rel = res / nb if nb > 0 else res
    return LeastSquaresResult(
        method=f"blendenpik[{sketch.family}]",
        x=x_np,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra={"iterations": float(iterations), "converged": float(converged)},
    )


#: Short alias used by the solver registry (:mod:`repro.linalg.registry`),
#: where the solver is registered as ``"sketch_precond_lsqr"``.
sketch_precond_lsqr = sketch_preconditioned_lsqr
