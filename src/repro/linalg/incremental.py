"""Incremental refresh of sketched solver factors across repeated solves.

A one-shot solve builds its sketch operator, uses it, and lets it go; an
*online* solver re-solves the same-shaped window over and over, and
rebuilding the operator each time re-pays "Sketch gen" (the dense Gaussian
second stage of a multisketch, the SRHT sign/sample vectors, CSR assembly)
for state that is a pure function of ``(kind, d, n, k, seed, dtype)``.

:class:`OperatorRefresher` is the fix at the linalg layer: a tiny
version-free cache that hands :func:`repro.linalg.planner.execute_plan` an
``operator_provider`` whose operators persist across re-solves on one
executor.  A refresh happens exactly when the requested factor identity
changes (different solver family, window shape, embedding dimension or
seed); otherwise the cached operator -- generated state and all -- is
reused, so consecutive re-solves of a streaming window charge the sketch
application but never the generation again.

This is the streaming counterpart of the serving layer's
:class:`~repro.serving.cache.OperatorCache`: same key contract
(:meth:`repro.core.base.SketchOperator.cache_key`), but scoped to one
engine and one executor instead of a sharded pool.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.base import SketchOperator
from repro.gpu.executor import GPUExecutor
from repro.linalg.registry import SolveSpec, get_solver

__all__ = ["OperatorRefresher"]


class OperatorRefresher:
    """Per-engine cache of the sketch operators repeated solves need.

    Parameters
    ----------
    executor:
        The executor every cached operator is bound to (the streaming
        engine's shard executor).  Operators built here charge their
        generation to this executor exactly once.
    """

    def __init__(self, executor: GPUExecutor) -> None:
        self._executor = executor
        self._operators: Dict[Tuple, SketchOperator] = {}
        self.refreshes = 0
        self.reuses = 0

    def __len__(self) -> int:
        return len(self._operators)

    def _key(self, solver_name: str, spec: SolveSpec) -> Tuple:
        return (
            solver_name,
            spec.kind,
            spec.d,
            spec.n,
            spec.embedding_dim,
            spec.seed,
        )

    def operator_for(self, solver_name: str, spec: SolveSpec) -> Optional[SketchOperator]:
        """The (cached or freshly built) operator ``solver_name`` needs for ``spec``.

        Returns ``None`` for solvers that declare no sketch (QR, normal
        equations), so the result can be passed straight through a plan's
        fallback chain.
        """
        registered = get_solver(solver_name)
        if not registered.capabilities.needs_sketch:
            return None
        key = self._key(registered.name, spec)
        operator = self._operators.get(key)
        if operator is not None:
            self.reuses += 1
            return operator
        operator = registered.build_operator(spec, executor=self._executor)
        operator.generate()
        self._operators[key] = operator
        self.refreshes += 1
        return operator

    def provider(self, spec: SolveSpec):
        """An ``operator_provider`` for :func:`repro.linalg.planner.execute_plan`."""
        return lambda solver_name: self.operator_for(solver_name, spec)

    def invalidate(self) -> None:
        """Drop every cached operator (e.g. after a window-geometry change)."""
        self._operators.clear()
