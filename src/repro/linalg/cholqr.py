"""Cholesky-QR building blocks.

``cholesky_qr`` computes the QR factorization of a tall matrix through its
Gram matrix (``G = A^T A``, ``R = chol(G)``, ``Q = A R^{-1}``).  It is fast on
GPUs (everything is GEMM-shaped) but squares the condition number, so it is
only reliable for ``kappa(A) < u^{-1/2}``.  The randomized variant in
:mod:`repro.linalg.rand_cholqr` (the paper's Algorithm 4) first whitens ``A``
with a sketched QR so that the subsequent Cholesky-QR operates on a
well-conditioned matrix, restoring stability up to ``kappa(A) < u^{-1}``.
``cholesky_qr2`` (Cholesky QR applied twice) is provided as a further
comparison point used in the randomized-QR literature.
"""

from __future__ import annotations

from typing import Tuple

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.solver import CholeskyFailedError


def cholesky_qr(
    a: DeviceArray,
    executor: GPUExecutor,
    *,
    phase_prefix: str = "",
) -> Tuple[DeviceArray, DeviceArray]:
    """Cholesky-QR factorization ``A = Q R``.

    Returns device handles ``(Q, R)`` where ``R`` is upper triangular.

    Raises
    ------
    CholeskyFailedError
        If the Gram matrix is numerically indefinite, which happens once
        ``kappa(A)`` exceeds roughly ``u^{-1/2}``.
    """
    blas, solver = executor.blas, executor.solver
    gram = blas.gram(a, phase=f"{phase_prefix}Gram matrix")
    r = solver.potrf(gram, phase=f"{phase_prefix}POTRF")
    q = solver.trsm(a, r, phase=f"{phase_prefix}TRSM", label="cholqr_Q")
    return q, r


def cholesky_qr2(
    a: DeviceArray,
    executor: GPUExecutor,
    *,
    phase_prefix: str = "",
) -> Tuple[DeviceArray, DeviceArray]:
    """Cholesky QR applied twice (CholQR2) for improved orthogonality.

    The second pass repairs the loss of orthogonality of the first; the
    combined ``R`` factor is the product of the two triangular factors.
    """
    q1, r1 = cholesky_qr(a, executor, phase_prefix=phase_prefix)
    q2, r2 = cholesky_qr(q1, executor, phase_prefix=phase_prefix)
    blas = executor.blas
    r = blas.gemm(r2, r1, phase=f"{phase_prefix}R update", label="cholqr2_R")
    return q2, r
