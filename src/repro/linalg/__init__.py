"""Least-squares solvers and randomized QR factorizations.

Implements every solver the paper's Section 6.3 compares:

* :func:`~repro.linalg.lstsq.normal_equations` -- Gram matrix + Cholesky, the
  fastest deterministic direct solver, stable only for ``kappa(A) < u^{-1/2}``.
* :func:`~repro.linalg.lstsq.sketch_and_solve` -- Algorithm 1 with any sketch
  operator (Gaussian, CountSketch, SRHT, or multisketch).
* :func:`~repro.linalg.lstsq.qr_solve` -- Householder-QR reference solver.
* :func:`~repro.linalg.rand_cholqr.rand_cholqr` -- Algorithm 4 (randomized
  Cholesky QR factorization).
* :func:`~repro.linalg.rand_cholqr.rand_cholqr_lstsq` -- Algorithm 5 (the
  rand_cholQR / preconditioned-normal-equations least-squares solver).

plus the problem generators with prescribed condition numbers used by
Figure 8 (:mod:`repro.linalg.conditioning`).
"""

from repro.linalg.lstsq import (
    LeastSquaresResult,
    normal_equations,
    sketch_and_solve,
    qr_solve,
    relative_residual,
)
from repro.linalg.cholqr import cholesky_qr, cholesky_qr2
from repro.linalg.rand_cholqr import rand_cholqr, rand_cholqr_lstsq
from repro.linalg.conditioning import matrix_with_condition, condition_number
from repro.linalg.iterative import sketch_preconditioned_lsqr, IterativeSolveInfo

__all__ = [
    "LeastSquaresResult",
    "normal_equations",
    "sketch_and_solve",
    "qr_solve",
    "relative_residual",
    "cholesky_qr",
    "cholesky_qr2",
    "rand_cholqr",
    "rand_cholqr_lstsq",
    "matrix_with_condition",
    "condition_number",
    "sketch_preconditioned_lsqr",
    "IterativeSolveInfo",
]
