"""Least-squares solvers and randomized QR factorizations.

Implements every solver the paper's Section 6.3 compares:

* :func:`~repro.linalg.lstsq.normal_equations` -- Gram matrix + Cholesky, the
  fastest deterministic direct solver, stable only for ``kappa(A) < u^{-1/2}``.
* :func:`~repro.linalg.lstsq.sketch_and_solve` -- Algorithm 1 with any sketch
  operator (Gaussian, CountSketch, SRHT, or multisketch).
* :func:`~repro.linalg.lstsq.qr_solve` -- Householder-QR reference solver.
* :func:`~repro.linalg.rand_cholqr.rand_cholqr` -- Algorithm 4 (randomized
  Cholesky QR factorization).
* :func:`~repro.linalg.rand_cholqr.rand_cholqr_lstsq` -- Algorithm 5 (the
  rand_cholQR / preconditioned-normal-equations least-squares solver).

plus the problem generators with prescribed condition numbers used by
Figure 8 (:mod:`repro.linalg.conditioning`).

All five solvers are also registered behind one uniform interface in
:mod:`repro.linalg.registry` (``SolveSpec`` / ``SolverCapabilities`` /
``solve``), and :mod:`repro.linalg.planner` routes a problem to the cheapest
solver whose declared stability floor meets the request's accuracy target,
executing fallback chains (e.g. normal-equations POTRF failure ->
rand_cholQR -> preconditioned LSQR) instead of returning ``failed=True``.

The registry is multi-problem: a ``SolveSpec`` with ``regularization > 0``
routes to the ridge solvers of :mod:`repro.problems.ridge` (registered
under the ``"ridge"`` problem class, with stability floors evaluated at
the lambda-shifted effective conditioning), through exactly the same
planner and fallback machinery.
"""

from repro.linalg.lstsq import (
    LeastSquaresResult,
    normal_equations,
    sketch_and_solve,
    qr_solve,
    relative_residual,
)
from repro.linalg.cholqr import cholesky_qr, cholesky_qr2
from repro.linalg.rand_cholqr import rand_cholqr, rand_cholqr_lstsq
from repro.linalg.conditioning import (
    matrix_with_condition,
    condition_number,
    estimate_condition,
)
from repro.linalg.incremental import OperatorRefresher
from repro.linalg.iterative import (
    sketch_preconditioned_lsqr,
    sketch_precond_lsqr,
    IterativeSolveInfo,
)
from repro.linalg.registry import (
    ProblemClass,
    RegisteredSolver,
    SolveSpec,
    SolverCapabilities,
    available_solvers,
    canonical_solver_name,
    get_problem_class,
    get_solver,
    problem_classes,
    register_problem_class,
    register_solver,
    resolve_embedding_dim,
    solve,
    solver_capabilities,
)
from repro.linalg.planner import (
    POLICIES,
    SolvePlan,
    execute_plan,
    normalize_policy,
    plan,
    plan_and_execute,
)

__all__ = [
    "LeastSquaresResult",
    "normal_equations",
    "sketch_and_solve",
    "qr_solve",
    "relative_residual",
    "cholesky_qr",
    "cholesky_qr2",
    "rand_cholqr",
    "rand_cholqr_lstsq",
    "matrix_with_condition",
    "condition_number",
    "estimate_condition",
    "OperatorRefresher",
    "sketch_preconditioned_lsqr",
    "sketch_precond_lsqr",
    "IterativeSolveInfo",
    "ProblemClass",
    "RegisteredSolver",
    "SolveSpec",
    "SolverCapabilities",
    "available_solvers",
    "canonical_solver_name",
    "get_problem_class",
    "problem_classes",
    "register_problem_class",
    "get_solver",
    "register_solver",
    "resolve_embedding_dim",
    "solve",
    "solver_capabilities",
    "POLICIES",
    "SolvePlan",
    "execute_plan",
    "normalize_policy",
    "plan",
    "plan_and_execute",
]
