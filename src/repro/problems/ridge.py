"""Ridge (Tikhonov-regularized) regression through the solver registry.

The paper's solvers answer ``min_x ||b - A x||_2``; this module extends the
same pipeline to

``min_x ||b - A x||_2^2 + lam ||x||_2^2``

by observing that ridge is plain least squares on the *augmented* system
``[A; sqrt(lam) I] x = [b; 0]``.  Three solvers register themselves under
the ``"ridge"`` problem class (:class:`~repro.linalg.registry.SolverCapabilities.problem`):

``ridge_normal_equations``
    The augmented-matrix normal equations, computed without materialising
    the augmentation: the Gram matrix of ``[A; sqrt(lam) I]`` is
    ``A^T A + lam I``, so the solver is one Gram GEMM, ``n`` diagonal adds,
    a POTRF and two triangular solves.  Fastest, with the familiar
    ``u * kappa_eff^2`` floor -- but ``kappa_eff`` is the *effective*
    conditioning of the augmented system
    (:func:`repro.linalg.registry.ridge_effective_condition`), so a healthy
    ``lam`` rescues matrices the plain normal equations choke on, while a
    tiny ``lam`` on an ill-conditioned ``A`` still breaks POTRF and falls
    through the planner's chain.
``ridge_precond_lsqr``
    Sketch-preconditioned LSQR on the regularized system: the augmented
    matrix is sketched (any subspace-embedding family), its R factor
    preconditions the augmented LSQR iteration, and the iteration count is
    ``kappa``-independent by the embedding property.  Floor ``u * kappa_eff``.
``ridge_qr``
    Householder QR on the explicit augmented matrix: the ridge solver of
    record, last link of every ridge fallback chain.

:func:`solve_ridge` is the one-call entry point (spec -> planner -> fallback
chain); :func:`dense_ridge_reference` is the host-side direct solve the
benchmarks compare residuals against.

Residual convention: every result's ``relative_residual`` is measured on the
augmented system, ``sqrt(||b - A x||^2 + lam ||x||^2) / ||b||`` -- the ridge
objective itself -- so residual ratios between solvers (and against the
dense reference) compare the quantity ridge actually minimises.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest
from repro.linalg.iterative import sketch_preconditioned_lsqr
from repro.linalg.lstsq import LeastSquaresResult, qr_solve
from repro.linalg.registry import (
    RegisteredSolver,
    SolveSpec,
    SolverCapabilities,
    UNIT_ROUNDOFF,
    get_solver,
    register_alias,
    register_solver,
)

ArrayLike = Union[np.ndarray, DeviceArray]

#: Canonical names of the ridge problem class's registered solvers.
RIDGE_SOLVERS = ("ridge_normal_equations", "ridge_precond_lsqr", "ridge_qr")


def dense_ridge_reference(a: np.ndarray, b: np.ndarray, lam: float) -> np.ndarray:
    """Direct dense ridge solve on the host (the accuracy reference).

    Householder QR (via ``lstsq``) on the explicit augmented system --
    numerically the most trustworthy formulation, used by the benchmarks as
    the residual yardstick for the registered solvers.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_aug, b_aug = augment_ridge_system(a, b, lam)
    x, *_ = np.linalg.lstsq(a_aug, b_aug, rcond=None)
    return x


def augment_ridge_system(
    a: np.ndarray, b: Optional[np.ndarray], lam: float
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Host-side augmentation: ``([A; sqrt(lam) I], [b; 0])``."""
    a = np.asarray(a, dtype=np.float64)
    if lam < 0.0:
        raise ValueError("regularization lam must be non-negative")
    n = a.shape[1]
    a_aug = np.vstack([a, np.sqrt(lam) * np.eye(n, dtype=a.dtype)])
    if b is None:
        return a_aug, None
    b = np.asarray(b, dtype=np.float64)
    pad = np.zeros((n, b.shape[1]) if b.ndim == 2 else n, dtype=b.dtype)
    return a_aug, np.concatenate([b, pad], axis=0)


def ridge_residuals(
    a: np.ndarray, b: np.ndarray, x: Optional[np.ndarray], lam: float
) -> Tuple[float, float, Optional[np.ndarray]]:
    """``(residual_norm, relative_residual, column_residuals)`` of the ridge objective.

    The norm is ``sqrt(||b - A x||^2 + lam ||x||^2)`` (Frobenius over a
    block of right-hand sides), relative to ``||b||`` -- identical to the
    plain relative residual of the augmented system, since ``[b; 0]`` has
    the norm of ``b``.
    """
    if x is None:
        return float("inf"), float("inf"), None
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    resid = b - a @ x
    res_sq = np.sum(resid**2, axis=0) + lam * np.sum(x**2, axis=0)
    nb = np.linalg.norm(b)
    total = float(np.sqrt(np.sum(res_sq)))
    rel = total / nb if nb > 0 else total
    columns = None
    if b.ndim == 2:
        col_nb = np.linalg.norm(b, axis=0)
        col_res = np.sqrt(res_sq)
        columns = np.where(col_nb > 0, col_res / np.where(col_nb > 0, col_nb, 1.0), col_res)
    return total, rel, columns


# ---------------------------------------------------------------------------
# Solver implementations
# ---------------------------------------------------------------------------
def _charge_augment(executor: GPUExecutor, d: int, n: int, nrhs: int) -> None:
    """Charge the one-pass copy that materialises ``[A; sqrt(lam) I]``."""
    itemsize = 8
    executor.launch(
        KernelRequest(
            name="ridge_augment",
            kclass=KernelClass.STREAM,
            bytes_read=(float(d) * n + float(d) * nrhs) * itemsize,
            bytes_written=(float(d + n) * n + float(d + n) * nrhs) * itemsize,
            flops=0.0,
            dtype_size=itemsize,
            phase="Augment",
        )
    )


def _device_augmented(
    a: DeviceArray, b: DeviceArray, executor: GPUExecutor
) -> Tuple[DeviceArray, DeviceArray]:
    """Analytic-mode augmentation: shape-only handles for the dry-run."""
    d, n = a.shape
    nrhs = b.shape[1] if b.ndim == 2 else 1
    a_aug = executor.empty((d + n, n), label="A_ridge_aug")
    b_aug = executor.empty((d + n, nrhs) if b.ndim == 2 else (d + n,), label="b_ridge_aug")
    return a_aug, b_aug


def ridge_normal_equations(
    a: ArrayLike,
    b: ArrayLike,
    lam: float,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Ridge via the augmented-matrix normal equations ``(A^T A + lam I) x = A^T b``.

    The augmentation is never materialised: its Gram matrix is the plain
    Gram plus a diagonal shift, so the pipeline is GEMM + ``n`` diagonal
    adds + POTRF + two triangular solves -- the same shape as
    :func:`repro.linalg.lstsq.normal_equations`, and the same breakdown
    mode when the *effective* conditioning squares past ``u^{-1}``
    (POTRF failure, caught and reported for the planner's fallback chain).
    """
    if lam < 0.0:
        raise ValueError("regularization lam must be non-negative")
    if executor is None:
        if isinstance(a, DeviceArray):
            executor = a._executor
        else:
            executor = GPUExecutor(numeric=True, track_memory=False)
    a_dev = a if isinstance(a, DeviceArray) else executor.to_device(np.asarray(a), order="F", label="A")
    b_dev = b if isinstance(b, DeviceArray) else executor.to_device(np.asarray(b), label="b")
    blas, solver = executor.blas, executor.solver
    multi_rhs = b_dev.ndim == 2
    n = a_dev.shape[1]

    mark = executor.mark()
    failed, reason = False, ""
    x_dev: Optional[DeviceArray] = None
    try:
        gram = blas.gram(a_dev, phase="Gram matrix")
        if executor.numeric and gram.is_numeric and lam > 0.0:
            gram.data[np.arange(n), np.arange(n)] += lam
        # n diagonal adds: negligible arithmetic, but charged so the
        # simulated clock never under-reports the regularized path.
        executor.launch(
            KernelRequest(
                name="ridge_diag_shift",
                kclass=KernelClass.STREAM,
                bytes_read=float(n) * 8,
                bytes_written=float(n) * 8,
                flops=float(n),
                dtype_size=8,
                phase="Gram matrix",
            )
        )
        if multi_rhs:
            atb = blas.gemm(a_dev, b_dev, trans_a=True, phase="AT*b", label="ATB")
            r = solver.potrf(gram, phase="POTRF")
            y = solver.trsm_left(r, atb, transpose=True, phase="TRSV", label="forward_solve")
            x_dev = solver.trsm_left(r, y, transpose=False, phase="TRSV", label="solution")
        else:
            atb = blas.gemv(a_dev, b_dev, trans_a=True, phase="AT*b", label="ATb")
            r = solver.potrf(gram, phase="POTRF")
            y = solver.trsv(r, atb, transpose=True, phase="TRSV", label="forward_solve")
            x_dev = solver.trsv(r, y, transpose=False, phase="TRSV", label="solution")
    except np.linalg.LinAlgError as exc:
        failed, reason = True, f"Cholesky factorization failed: {exc}"

    breakdown = executor.breakdown_since(mark)
    if failed or x_dev is None:
        return LeastSquaresResult(
            method="ridge_normal_equations",
            x=None,
            residual_norm=float("inf"),
            relative_residual=float("inf"),
            breakdown=breakdown,
            total_seconds=breakdown.total(),
            failed=True,
            failure_reason=reason,
            extra={"regularization": float(lam)},
        )
    if executor.numeric and a_dev.is_numeric and b_dev.is_numeric and x_dev.is_numeric:
        x_host = x_dev.to_host()
        res, rel, columns = ridge_residuals(a_dev.data, b_dev.data, x_host, lam)
    else:
        x_host, res, rel, columns = None, float("nan"), float("nan"), None
    extra = {"regularization": float(lam)}
    if multi_rhs:
        extra["nrhs"] = float(b_dev.shape[1])
    return LeastSquaresResult(
        method="ridge_normal_equations",
        x=x_host,
        residual_norm=res,
        relative_residual=rel,
        breakdown=breakdown,
        total_seconds=breakdown.total(),
        extra=extra,
        column_residuals=columns,
    )


def _augmented_solve(
    name: str,
    inner,
    a: ArrayLike,
    b: ArrayLike,
    lam: float,
    executor: Optional[GPUExecutor],
) -> LeastSquaresResult:
    """Run an exact least-squares solver on the materialised augmented system.

    ``inner(a_aug, b_aug) -> LeastSquaresResult`` does the actual solve; the
    augmentation copy is charged to the executor's clock, the method name is
    re-stamped to the ridge registry name, and the reported residual is the
    ridge objective (identical to the augmented relative residual -- see
    :func:`ridge_residuals`).
    """
    if lam < 0.0:
        raise ValueError("regularization lam must be non-negative")
    if isinstance(a, DeviceArray) and not a.is_numeric:
        ex = executor if executor is not None else a._executor
        a_aug, b_aug = _device_augmented(a, b, ex)
        _charge_augment(ex, a.shape[0], a.shape[1], b.shape[1] if b.ndim == 2 else 1)
        result = inner(a_aug, b_aug)
    else:
        a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
        b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
        a_aug, b_aug = augment_ridge_system(a_np, b_np, lam)
        if executor is not None:
            _charge_augment(
                executor, a_np.shape[0], a_np.shape[1], b_np.shape[1] if b_np.ndim == 2 else 1
            )
        result = inner(a_aug, b_aug)
    result.method = name
    result.extra["regularization"] = float(lam)
    return result


def ridge_qr(
    a: ArrayLike,
    b: ArrayLike,
    lam: float,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Householder QR on the explicit augmented system (the ridge solver of record)."""
    return _augmented_solve(
        "ridge_qr",
        lambda a_aug, b_aug: qr_solve(a_aug, b_aug, executor=executor),
        a,
        b,
        lam,
        executor,
    )


def ridge_precond_lsqr(
    a: ArrayLike,
    b: ArrayLike,
    lam: float,
    sketch,
    *,
    executor: Optional[GPUExecutor] = None,
) -> LeastSquaresResult:
    """Sketch-preconditioned LSQR on the regularized (augmented) system.

    ``sketch`` must be a subspace-embedding operator over ``d + n`` input
    rows (the augmented height); its R factor preconditions the augmented
    iteration, so the iteration count stays ``kappa``-independent while the
    attainable floor scales with the *effective* ridge conditioning.
    """
    if executor is None:
        executor = sketch.executor
    return _augmented_solve(
        "ridge_precond_lsqr",
        lambda a_aug, b_aug: sketch_preconditioned_lsqr(a_aug, b_aug, sketch, executor=executor),
        a,
        b,
        lam,
        executor,
    )


# ---------------------------------------------------------------------------
# Registry adapters
# ---------------------------------------------------------------------------
def _ridge_operator(solver_name: str, a, spec: SolveSpec, operator, executor):
    """The augmented-height sketch operator a ridge adapter will use.

    A caller-supplied operator is honoured only when its input dimension
    matches the augmented system (``d + n`` rows) and it is a subspace
    embedding; anything else (e.g. a plain-problem operator cached under
    the unaugmented height) is replaced by a fresh build so the solve is
    never silently wrong.
    """
    solver = get_solver(solver_name)
    if operator is not None:
        caps = operator.capabilities()
        if operator.d == spec.d + spec.n and caps["subspace_embedding"]:
            return operator
    if executor is None and isinstance(a, DeviceArray):
        executor = a._executor
    return solver.build_operator(spec, executor=executor)


def _adapt_ridge_normal_equations(a, b, spec, *, operator=None, executor=None):
    return ridge_normal_equations(a, b, spec.regularization, executor=executor)


def _adapt_ridge_qr(a, b, spec, *, operator=None, executor=None):
    return ridge_qr(a, b, spec.regularization, executor=executor)


def _adapt_ridge_precond_lsqr(a, b, spec, *, operator=None, executor=None):
    op = _ridge_operator("ridge_precond_lsqr", a, spec, operator, executor)
    return ridge_precond_lsqr(
        a, b, spec.regularization, op, executor=executor if executor is not None else op.executor
    )


register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="ridge_normal_equations",
            batched_rhs=True,
            needs_sketch=False,
            stability_exponent=2,
            max_stable_cond=1.0 / np.sqrt(UNIT_ROUNDOFF),
            problem="ridge",
            description=(
                "Gram + lam I + POTRF on the augmented system; fastest ridge "
                "solver, floor u*kappa_eff^2"
            ),
        ),
        _adapt_ridge_normal_equations,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="ridge_precond_lsqr",
            batched_rhs=True,
            needs_sketch=True,
            stability_exponent=1,
            safety=1.0,
            iterative=True,
            problem="ridge",
            description=(
                "Blendenpik-style LSQR on [A; sqrt(lam) I]; kappa-independent "
                "iterations, floor u*kappa_eff"
            ),
        ),
        _adapt_ridge_precond_lsqr,
    )
)
register_solver(
    RegisteredSolver(
        SolverCapabilities(
            name="ridge_qr",
            batched_rhs=True,
            needs_sketch=False,
            stability_exponent=0,
            problem="ridge",
            description="Householder QR on the augmented system; ridge solver of record",
        ),
        _adapt_ridge_qr,
    )
)
register_alias("ridge_normal_equations", "ridge_normal", "ridge_cholesky")
register_alias("ridge_precond_lsqr", "ridge_lsqr", "ridge_blendenpik")
register_alias("ridge_qr", "ridge_householder_qr")


# ---------------------------------------------------------------------------
# One-call entry point
# ---------------------------------------------------------------------------
def solve_ridge(
    a: ArrayLike,
    b: ArrayLike,
    lam: float,
    *,
    policy: str = "cheapest_accurate",
    solver: Optional[str] = None,
    executor: Optional[GPUExecutor] = None,
    **spec_overrides,
) -> LeastSquaresResult:
    """Solve ``min_x ||b - A x||^2 + lam ||x||^2`` through the planner.

    Builds a ridge :class:`~repro.linalg.registry.SolveSpec`
    (``regularization=lam``), lets the planner probe the spectrum, pick the
    cheapest ridge solver whose floor meets the accuracy target at the
    *effective* conditioning, and walk the ridge fallback chain on
    breakdown -- exactly the plain-least-squares contract, for the
    regularized problem class.  ``spec_overrides`` (``accuracy_target=...``,
    ``kind=...``, ...) forward into the spec.
    """
    from repro.linalg.planner import plan_and_execute  # local: planner imports registry

    if lam <= 0.0:
        raise ValueError("solve_ridge needs a positive lam; use repro.linalg.solve otherwise")
    a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a)
    b_np = b.data if isinstance(b, DeviceArray) else np.asarray(b)
    spec = SolveSpec.from_problem(a_np, b_np, regularization=float(lam), **spec_overrides)
    return plan_and_execute(a, b, spec, policy=policy, solver=solver, executor=executor)
