"""The ``frequency`` problem class: planning and building frequency sketches.

Where the solver-backed problem classes answer a :class:`SolveSpec` through
the planner's solver ranking, the frequency class answers *query streams*:
the planning question is not "which solver" but "how large a sketch" for a
requested heavy-hitter level ``phi`` and failure probability ``delta``.
:func:`plan_frequency_sketch` inverts the closed-form bounds of
:mod:`repro.theory.frequency` into concrete table dimensions, and
:func:`build_frequency_sketch` materialises the planned engine -- flat for
enumerable domains, hierarchical (dyadic) whenever the domain is an address
space that a flat ``findHH`` scan could never enumerate, or when range
queries are requested.

The class itself is registered in the
:mod:`repro.linalg.registry` catalog (``get_problem_class("frequency")``);
this module is imported on first use by
:func:`repro.linalg.registry.ensure_problem_solvers`, mirroring how the
ridge solvers register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.countsketch import DENSIFY_LIMIT
from repro.core.frequency import FrequencySketch, HierarchicalFrequencySketch
from repro.gpu.executor import GPUExecutor
from repro.theory.frequency import (
    depth_for_failure,
    heavy_hitter_guarantee,
    hierarchical_topk_work,
    hierarchy_levels,
    point_query_epsilon,
    width_for_epsilon,
)

#: Query types the frequency class serves (mirrors the catalog entry).
FREQUENCY_QUERIES = ("point", "heavy_hitters", "norm", "range")


@dataclass(frozen=True)
class FrequencyPlan:
    """A sized frequency-sketch configuration for a requested operating point.

    Attributes
    ----------
    domain:
        Item-universe size the sketch will accept ids from.
    phi:
        Heavy-hitter level: items with ``f_i >= phi ||f||_2`` must be
        recoverable.
    eps:
        Achieved point-query error (``<= phi / 2`` by construction, the
        recoverability condition).
    delta:
        Achieved per-query failure probability.
    width, depth:
        Table dimensions realising ``(eps, delta)``.
    hierarchical:
        Whether the plan builds a dyadic stack (forced for address-space
        domains where a flat heavy-hitter scan would be refused, and
        whenever range queries are requested).
    branch, levels:
        Dyadic branching factor and resulting level count (1 when flat).
    """

    domain: int
    phi: float
    eps: float
    delta: float
    width: int
    depth: int
    hierarchical: bool
    branch: int
    levels: int

    def guarantee(self) -> dict:
        """The eps-phi guarantee this plan offers (theory reference)."""
        return heavy_hitter_guarantee(self.phi, self.width, self.depth)

    def descent_work(self) -> dict:
        """Planned top-k work vs. a flat scan (hierarchical plans only)."""
        return hierarchical_topk_work(self.domain, self.branch, self.phi)


def plan_frequency_sketch(
    domain: int,
    phi: float = 0.05,
    delta: float = 1e-3,
    *,
    branch: int = 16,
    need_ranges: bool = False,
    max_width: Optional[int] = None,
) -> FrequencyPlan:
    """Size a frequency sketch for a ``(phi, delta)`` operating point.

    The width realises the recoverability condition ``eps = phi / 2``
    (``width = ceil(12 / phi^2)``) and the depth realises ``delta`` via the
    median Chernoff bound.  ``max_width`` optionally caps the table (the
    serving layer's memory guard); the achieved ``eps`` is then recomputed
    from the capped width and may lose recoverability, which the returned
    plan's :meth:`FrequencyPlan.guarantee` makes visible rather than hiding.
    """
    if domain <= 0:
        raise ValueError("domain must be positive")
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must lie in (0, 1], got {phi}")
    width = width_for_epsilon(phi / 2.0)
    if max_width is not None and width > max_width:
        width = int(max_width)
    depth = depth_for_failure(delta)
    hierarchical = bool(need_ranges or domain > DENSIFY_LIMIT)
    levels = hierarchy_levels(domain, branch) if hierarchical else 1
    return FrequencyPlan(
        domain=int(domain),
        phi=float(phi),
        eps=point_query_epsilon(width),
        delta=float(delta),
        width=width,
        depth=depth,
        hierarchical=hierarchical,
        branch=int(branch),
        levels=levels,
    )


def build_frequency_sketch(
    plan: FrequencyPlan,
    *,
    executor: Optional[GPUExecutor] = None,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> Union[FrequencySketch, HierarchicalFrequencySketch]:
    """Materialise the engine a :class:`FrequencyPlan` describes."""
    if plan.hierarchical:
        return HierarchicalFrequencySketch(
            plan.domain,
            plan.width,
            plan.depth,
            branch=plan.branch,
            executor=executor,
            seed=seed,
            dtype=dtype,
        )
    return FrequencySketch(
        plan.domain, plan.width, plan.depth, executor=executor, seed=seed, dtype=dtype
    )
