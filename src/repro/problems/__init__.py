"""Problem classes beyond plain least squares, routed through the planner.

The registry/planner pipeline of :mod:`repro.linalg` treats "which solver"
as data; this package treats "which *problem*" the same way:

* :mod:`repro.problems.ridge` -- Tikhonov-regularized regression.  Three
  solvers register under the ``"ridge"`` problem class (augmented-matrix
  normal equations, sketch-preconditioned LSQR on the regularized system,
  Householder QR on the augmented matrix); any
  :class:`~repro.linalg.registry.SolveSpec` with ``regularization > 0``
  routes to them through the ordinary planner, with stability floors
  evaluated at the lambda-shifted effective conditioning.
* :mod:`repro.problems.frequency` -- the frequency-analytics problem class:
  sizing (:func:`~repro.problems.frequency.plan_frequency_sketch` inverts
  the eps-phi bounds of :mod:`repro.theory.frequency`) and construction of
  the flat/hierarchical frequency sketches of :mod:`repro.core.frequency`,
  served through the ``query_heavy_hitters`` / ``query_norm`` /
  ``query_range`` session endpoints.
* :mod:`repro.problems.lowrank` -- sketched low-rank approximation: the
  randomized range finder (Gaussian test matrix + power iteration) and the
  streaming :class:`~repro.problems.lowrank.FrequentDirections`
  accumulator, which also plugs into the streaming engine as a
  window-summary alternative
  (:class:`repro.streaming.state.FrequentDirectionsState`).

Importing this package registers the ridge solvers; callers going through
:func:`repro.linalg.registry.solve`, the planner, or the serving endpoints
never need to import it explicitly (they trigger the registration on the
first ridge spec they see).
"""

from repro.problems.frequency import (
    FREQUENCY_QUERIES,
    FrequencyPlan,
    build_frequency_sketch,
    plan_frequency_sketch,
)
from repro.problems.lowrank import (
    LOWRANK_METHODS,
    FrequentDirections,
    LowRankResult,
    lowrank_approx,
    optimal_rank_error,
    randomized_range_finder,
)
from repro.problems.ridge import (
    RIDGE_SOLVERS,
    augment_ridge_system,
    dense_ridge_reference,
    ridge_normal_equations,
    ridge_precond_lsqr,
    ridge_qr,
    ridge_residuals,
    solve_ridge,
)

__all__ = [
    "FREQUENCY_QUERIES",
    "FrequencyPlan",
    "build_frequency_sketch",
    "plan_frequency_sketch",
    "LOWRANK_METHODS",
    "FrequentDirections",
    "LowRankResult",
    "lowrank_approx",
    "optimal_rank_error",
    "randomized_range_finder",
    "RIDGE_SOLVERS",
    "augment_ridge_system",
    "dense_ridge_reference",
    "ridge_normal_equations",
    "ridge_precond_lsqr",
    "ridge_qr",
    "ridge_residuals",
    "solve_ridge",
]
