"""Sketched low-rank approximation: randomized range finder + Frequent Directions.

Two complementary paths to a rank-``k`` factorization ``A ~ Q B``:

:func:`randomized_range_finder` / :func:`lowrank_approx`
    The batch path (Halko-Martinsson-Tropp): ``Y = A @ Omega`` for a
    Gaussian test matrix ``Omega`` (optionally refined with power
    iterations ``Y <- A (A^T Y)``), ``Q = orth(Y)``, ``B = Q^T A``, then a
    small SVD truncates to exactly ``rank`` columns.  All the heavy kernels
    (GEMMs, economy QRs) run on the simulated device, and the Gaussian test
    matrix is an ordinary cached-operator citizen: the serving layer's
    ``approx_lowrank`` endpoint reuses it across requests exactly like a
    solve operator.

:class:`FrequentDirections`
    The streaming path [Liberty 2013; Ghashami et al. 2016]: a fixed
    ``2 ell x n`` buffer absorbs rows as they arrive; whenever it fills, one
    small SVD shrinks every squared singular value by the ``ell``-th and
    keeps the top ``ell`` rows.  The sketch ``B`` satisfies
    ``0 <= x^T (A^T A - B^T B) x <= ||A - A_k||_F^2 / (ell - k)`` for every
    unit ``x``, which makes projecting onto its top-``k`` right singular
    vectors within ``sqrt(1 + k/(ell-k))`` of the truncated-SVD optimum
    (:func:`repro.theory.complexity.fd_error_bound`).  The accumulator
    composes with the hashed CountSketch machinery of :mod:`repro.core`:
    :meth:`FrequentDirections.from_countsketch` compresses a
    ``StreamingCountSketch`` window accumulator into an ``ell``-row FD
    summary (the sketch's rows are a row-space proxy for the stream's), and
    :class:`repro.streaming.state.FrequentDirectionsState` runs FD as a
    window-summary alternative inside the streaming engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.gaussian import GaussianSketch
from repro.gpu.arrays import DeviceArray
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest

ArrayLike = Union[np.ndarray, DeviceArray]

#: Low-rank methods :func:`lowrank_approx` accepts.
LOWRANK_METHODS = ("rangefinder", "frequent_directions")


@dataclass
class LowRankResult:
    """A rank-``k`` factorization ``A ~ left @ right``.

    ``left`` is ``d x k`` and ``right`` is ``k x n``; for the range-finder
    path ``left`` has orthonormal columns (``Q U_k``) and ``right`` is
    ``diag(s_k) V_k^T``, for the Frequent Directions path ``left`` is the
    projection ``A V_k`` and ``right`` is ``V_k^T``.  ``relative_error`` is
    ``||A - left @ right||_F / ||A||_F`` measured on the host (NaN in
    analytic mode); ``total_seconds`` is the simulated device time.
    """

    method: str
    rank: int
    left: Optional[np.ndarray]
    right: Optional[np.ndarray]
    relative_error: float
    total_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    def reconstruct(self) -> np.ndarray:
        """The rank-``k`` approximation ``left @ right`` (numeric mode only)."""
        if self.left is None or self.right is None:
            raise RuntimeError("no numeric factors (analytic-mode result)")
        return self.left @ self.right


def optimal_rank_error(a: np.ndarray, rank: int) -> float:
    """``||A - A_k||_F / ||A||_F``: the truncated-SVD optimum every method chases."""
    svals = np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
    total = float(np.linalg.norm(svals))
    if total == 0.0:
        return 0.0
    return float(np.linalg.norm(svals[rank:]) / total)


def _relative_error(a: np.ndarray, left: np.ndarray, right: np.ndarray) -> float:
    na = np.linalg.norm(a)
    if na == 0.0:
        return 0.0
    return float(np.linalg.norm(a - left @ right) / na)


def _orth(executor: GPUExecutor, y: DeviceArray, label: str) -> DeviceArray:
    """Orthonormalise the columns of ``y`` (economy QR; charged as GEQRF)."""
    factors = executor.solver.geqrf(y, phase="GEQRF", label=label)
    if factors.q is not None:
        return factors.q
    # Analytic mode: the GEQRF cost is charged; a shape-only handle stands
    # in for Q so the remaining GEMMs charge the right dimensions.
    return executor.empty(y.shape, label=f"{label}_Q")


def randomized_range_finder(
    a: ArrayLike,
    rank: int,
    *,
    oversample: int = 8,
    power_iters: int = 0,
    executor: Optional[GPUExecutor] = None,
    operator: Optional[GaussianSketch] = None,
    seed: Optional[int] = 0,
) -> Tuple[DeviceArray, GaussianSketch]:
    """Orthonormal basis ``Q`` for the dominant range of ``A``.

    ``Q = orth(A @ Omega)`` with ``Omega`` an ``n x (rank + oversample)``
    Gaussian test matrix, refined by ``power_iters`` rounds of
    ``Q <- orth(A (A^T Q))`` (each round sharpens the spectrum's decay by
    one power, the standard fix for slowly decaying tails).

    ``operator`` lets a caller (the serving layer's operator cache) supply
    the test matrix as a :class:`~repro.core.gaussian.GaussianSketch` over
    ``n`` inputs with ``rank + oversample`` outputs -- its ``k x n`` device
    matrix *is* ``Omega^T``, so ``A @ Omega`` is one GEMM against the
    cached state.  Returns ``(Q, operator)`` so the caller can pin the
    operator for reuse.
    """
    if executor is None:
        executor = (
            operator.executor
            if operator is not None
            else GPUExecutor(numeric=True, seed=seed, track_memory=False)
        )
    a_dev = a if isinstance(a, DeviceArray) else executor.to_device(np.asarray(a), label="A")
    d, n = a_dev.shape
    if not 0 < rank <= min(d, n):
        raise ValueError("rank must lie in [1, min(d, n)]")
    r = min(rank + max(int(oversample), 0), n)
    if operator is None:
        operator = GaussianSketch(n, r, executor=executor, seed=seed)
        operator.generate()
    else:
        if operator.d != n or operator.k != r:
            raise ValueError(
                f"range-finder operator must map {n} -> {r}, got {operator.d} -> {operator.k}"
            )
        operator.generate()
    blas = executor.blas
    # Y = A @ Omega = A @ (S^T): one GEMM against the operator's k x n state.
    y = blas.gemm(a_dev, operator.matrix, trans_b=True, phase="Matrix sketch", label="range_Y")
    for it in range(int(power_iters)):
        q = _orth(executor, y, label=f"power{it}")
        z = blas.gemm(a_dev, q, trans_a=True, phase="Power iteration", label="range_Z")
        y = blas.gemm(a_dev, z, phase="Power iteration", label="range_Y")
    return _orth(executor, y, label="range_Q"), operator


def lowrank_approx(
    a: ArrayLike,
    rank: int,
    *,
    method: str = "rangefinder",
    oversample: int = 8,
    power_iters: int = 0,
    ell: Optional[int] = None,
    batch: int = 2048,
    executor: Optional[GPUExecutor] = None,
    operator: Optional[GaussianSketch] = None,
    seed: Optional[int] = 0,
) -> LowRankResult:
    """Rank-``k`` approximation of ``A`` by the requested method.

    ``method="rangefinder"`` runs :func:`randomized_range_finder`, forms
    ``B = Q^T A`` and truncates to exactly ``rank`` with one small SVD;
    ``method="frequent_directions"`` streams the rows of ``A`` through a
    :class:`FrequentDirections` accumulator of size ``ell`` (default
    ``2 * rank``) in ``batch``-row chunks -- the same code path a true
    row stream uses, so its accuracy on a materialised matrix is exactly
    what the streaming engine achieves on the fly.
    """
    method_l = method.lower()
    if method_l in ("fd", "frequent-directions"):
        method_l = "frequent_directions"
    if method_l not in LOWRANK_METHODS:
        raise ValueError(f"method must be one of {LOWRANK_METHODS}, got '{method}'")
    if executor is None and operator is not None:
        executor = operator.executor
    if executor is None:
        executor = GPUExecutor(numeric=True, seed=seed, track_memory=False)

    if method_l == "frequent_directions":
        return _fd_approx(a, rank, ell=ell, batch=batch, executor=executor)

    a_dev = a if isinstance(a, DeviceArray) else executor.to_device(np.asarray(a), label="A")
    d, n = a_dev.shape
    mark = executor.mark()
    q, operator = randomized_range_finder(
        a_dev,
        rank,
        oversample=oversample,
        power_iters=power_iters,
        executor=executor,
        operator=operator,
        seed=seed,
    )
    r = q.shape[1]
    b = executor.blas.gemm(q, a_dev, trans_a=True, phase="Project", label="range_B")
    # Truncate the r x n panel to exactly `rank` with one small SVD (host
    # numerics, device-charged: the panel is r x n with r ~ rank).
    executor.launch(
        KernelRequest(
            name="lowrank_truncate_svd",
            kclass=KernelClass.FACTOR,
            bytes_read=float(r) * n * 8,
            bytes_written=float(r) * (n + d) * 8,
            flops=10.0 * r * r * n + 2.0 * d * r * rank,
            dtype_size=8,
            phase="Truncate",
        )
    )
    seconds = executor.elapsed_since(mark)
    left = right = None
    rel = float("nan")
    if executor.numeric and q.is_numeric and b.is_numeric and a_dev.is_numeric:
        u, s, vt = np.linalg.svd(b.data, full_matrices=False)
        left = q.data @ u[:, :rank]
        right = s[:rank, None] * vt[:rank]
        rel = _relative_error(a_dev.data, left, right)
    return LowRankResult(
        method="rangefinder",
        rank=rank,
        left=left,
        right=right,
        relative_error=rel,
        total_seconds=seconds,
        extra={
            "oversample": float(r - rank),
            "power_iters": float(power_iters),
            "passes_over_a": 2.0 + 2.0 * power_iters,
        },
    )


def _fd_approx(
    a: ArrayLike, rank: int, *, ell: Optional[int], batch: int, executor: GPUExecutor
) -> LowRankResult:
    """Frequent Directions over the rows of a materialised matrix."""
    a_np = a.data if isinstance(a, DeviceArray) else np.asarray(a, dtype=np.float64)
    if a_np is None:
        raise ValueError("frequent_directions needs numeric rows to stream")
    if batch <= 0:
        raise ValueError("batch must be positive")
    d, n = a_np.shape
    if not 0 < rank <= min(d, n):
        raise ValueError("rank must lie in [1, min(d, n)]")
    el = 2 * rank if ell is None else int(ell)
    mark = executor.mark()
    fd = FrequentDirections(n, el, executor=executor)
    for start in range(0, d, int(batch)):
        fd.update(a_np[start : start + batch])
    v, _s = fd.lowrank(rank)
    # Project the stream onto the sketch's top right singular vectors:
    # left = A V_k (one d x n GEMM against the n x k basis).
    executor.launch(
        KernelRequest(
            name="fd_project",
            kclass=KernelClass.GEMM,
            bytes_read=(float(d) * n + float(n) * rank) * 8,
            bytes_written=float(d) * rank * 8,
            flops=2.0 * d * n * rank,
            dtype_size=8,
            phase="Project",
        )
    )
    seconds = executor.elapsed_since(mark)
    left = a_np @ v
    right = v.T
    return LowRankResult(
        method="frequent_directions",
        rank=rank,
        left=left,
        right=right,
        relative_error=_relative_error(a_np, left, right),
        total_seconds=seconds,
        extra={
            "ell": float(el),
            "rows_seen": float(fd.rows_seen),
            "shrinks": float(fd.shrink_count),
            "state_floats": float(2 * el * n),
        },
    )


class FrequentDirections:
    """Streaming Frequent Directions sketch of a row stream.

    Maintains a fixed ``2 ell x n`` buffer: arriving rows fill the free
    half; when the buffer is full one SVD ``B = U diag(s) V^T`` shrinks the
    spectrum (``s_i' = sqrt(max(s_i^2 - s_ell^2, 0))``) and keeps the top
    ``ell`` rows ``diag(s') V^T``.  Deterministic (no random state), linear
    in a mergeable sense (:meth:`merge` absorbs another sketch's rows), and
    ``O(n ell)`` amortised work per row regardless of the stream length --
    the accounting in :func:`repro.theory.complexity.lowrank_complexity`.

    When ``executor`` is given, the append pass and each shrink SVD are
    charged to its simulated clock; without one the accumulator is a pure
    host-side object (handy inside tests and host-side planners).
    """

    def __init__(
        self,
        n: int,
        ell: int,
        *,
        executor: Optional[GPUExecutor] = None,
        dtype=np.float64,
    ) -> None:
        if n <= 0 or ell <= 0:
            raise ValueError("n and ell must be positive")
        self.n = int(n)
        self.ell = int(ell)
        self._executor = executor
        self._dtype = np.dtype(dtype)
        self._buffer = np.zeros((2 * self.ell, self.n), dtype=self._dtype)
        self._used = 0
        self.rows_seen = 0
        self.shrink_count = 0

    # ------------------------------------------------------------------
    def update(self, rows: np.ndarray) -> None:
        """Absorb a batch of rows (any batch size, including empty)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=self._dtype))
        if rows.size == 0:
            return
        if rows.shape[1] != self.n:
            raise ValueError(f"expected rows with {self.n} columns, got {rows.shape}")
        batch = rows.shape[0]
        self.rows_seen += batch
        if self._executor is not None:
            self._executor.launch(
                KernelRequest(
                    name="fd_append",
                    kclass=KernelClass.STREAM,
                    bytes_read=float(batch) * self.n * self._dtype.itemsize,
                    bytes_written=float(batch) * self.n * self._dtype.itemsize,
                    flops=0.0,
                    dtype_size=self._dtype.itemsize,
                    phase="Matrix sketch",
                )
            )
        offset = 0
        while offset < batch:
            room = self._buffer.shape[0] - self._used
            if room == 0:
                self._shrink()
                continue
            take = min(room, batch - offset)
            self._buffer[self._used : self._used + take] = rows[offset : offset + take]
            self._used += take
            offset += take

    def _shrink(self) -> None:
        """One SVD pass: shrink by the ``ell``-th squared singular value."""
        u, s, vt = np.linalg.svd(self._buffer[: self._used], full_matrices=False)
        del u
        if s.shape[0] > self.ell:
            delta = s[self.ell - 1] ** 2
            s = np.sqrt(np.clip(s**2 - delta, 0.0, None))
        keep = min(self.ell, s.shape[0])
        self._buffer[:keep] = s[:keep, None] * vt[:keep]
        self._buffer[keep:] = 0.0
        self._used = keep
        self.shrink_count += 1
        if self._executor is not None:
            rows = self._buffer.shape[0]
            self._executor.launch(
                KernelRequest(
                    name="fd_shrink_svd",
                    kclass=KernelClass.FACTOR,
                    bytes_read=float(rows) * self.n * self._dtype.itemsize,
                    bytes_written=float(self.ell) * self.n * self._dtype.itemsize,
                    flops=10.0 * rows * self.n * min(rows, self.n),
                    dtype_size=self._dtype.itemsize,
                    phase="Shrink",
                )
            )

    # ------------------------------------------------------------------
    def sketch(self) -> np.ndarray:
        """The current summary ``B`` (at most ``2 ell`` rows, copy)."""
        return self._buffer[: self._used].copy()

    def compress(self) -> np.ndarray:
        """Force a shrink and return the canonical ``<= ell``-row summary."""
        if self._used > self.ell:
            self._shrink()
        return self.sketch()

    def merge(self, other: "FrequentDirections") -> None:
        """Absorb another FD sketch (FD is mergeable: sketch of the union)."""
        if other.n != self.n:
            raise ValueError("can only merge sketches over the same column count")
        rows_before = self.rows_seen
        self.update(other.sketch())
        # Merging replays summary rows, not stream rows: count the stream.
        self.rows_seen = rows_before + other.rows_seen

    def lowrank(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``rank`` right singular vectors and values of the summary.

        Returns ``(V, s)`` with ``V`` of shape ``(n, rank)``; projecting
        ``A`` onto ``V`` gives the rank-``rank`` approximation whose error
        is within :func:`repro.theory.complexity.fd_error_bound` of the
        truncated-SVD optimum.
        """
        if not 0 < rank <= self.n:
            raise ValueError("rank must lie in [1, n]")
        if self._used == 0:
            raise RuntimeError("empty sketch: stream rows before asking for a basis")
        _u, s, vt = np.linalg.svd(self._buffer[: self._used], full_matrices=False)
        rank = min(rank, s.shape[0])
        return vt[:rank].T.copy(), s[:rank].copy()

    def covariance_error(self, a: np.ndarray) -> float:
        """``||A^T A - B^T B||_2`` -- the quantity FD's guarantee bounds."""
        a = np.asarray(a, dtype=np.float64)
        b = self._buffer[: self._used]
        return float(np.linalg.norm(a.T @ a - b.T @ b, ord=2))

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Durable state: the used buffer rows plus the stream counters.

        FD is deterministic, so this is *all* its state -- a restored
        accumulator continues the stream bit-identically.
        """
        return {
            "n": self.n,
            "ell": self.ell,
            "used": self._used,
            "rows_seen": self.rows_seen,
            "shrink_count": self.shrink_count,
            "buffer": self._buffer[: self._used].copy(),
        }

    def load_state(self, state: dict) -> None:
        """Restore from a :meth:`state_dict` snapshot (shape-checked)."""
        if int(state["n"]) != self.n or int(state["ell"]) != self.ell:
            raise ValueError(
                f"FD shape mismatch: snapshot is (n={state['n']}, ell={state['ell']}), "
                f"this accumulator is (n={self.n}, ell={self.ell})"
            )
        used = int(state["used"])
        buffer = np.asarray(state["buffer"], dtype=self._dtype)
        if buffer.shape != (used, self.n):
            raise ValueError(
                f"FD snapshot buffer shape {buffer.shape} does not match used={used}, n={self.n}"
            )
        self._buffer[:] = 0.0
        self._buffer[:used] = buffer
        self._used = used
        self.rows_seen = int(state["rows_seen"])
        self.shrink_count = int(state["shrink_count"])

    # ------------------------------------------------------------------
    @classmethod
    def from_countsketch(
        cls,
        sketch,
        ell: int,
        *,
        executor: Optional[GPUExecutor] = None,
    ) -> "FrequentDirections":
        """Compress a live ``StreamingCountSketch`` pass into an FD summary.

        The hashed CountSketch accumulator ``S A`` (``k x n``) preserves the
        stream's row space up to the embedding distortion, so feeding its
        rows through FD yields an ``ell``-row summary of a window that was
        itself never materialised -- CountSketch does the single-pass
        ingest, FD does the fixed-size spectral compression.  Used by
        :class:`repro.streaming.state.FrequentDirectionsState` and the
        serving layer's window summaries.
        """
        snapshot = sketch.snapshot()
        if snapshot is None:
            raise ValueError("analytic-mode CountSketch has no numeric rows to compress")
        fd = cls(snapshot.shape[1], ell, executor=executor or sketch.executor)
        fd.update(snapshot)
        return fd
