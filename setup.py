"""Package metadata and installation entry points.

The build system (PEP 517) is declared in pyproject.toml; the metadata stays
here so `pip install -e . --no-use-pep517` / `python setup.py develop` keep
working in offline environments that lack the wheel builder.
"""
from setuptools import find_packages, setup

setup(
    name="repro-countsketch",
    version="1.7.0",
    description=(
        "Reproduction of 'A High Performance GPU CountSketch Implementation "
        "and Its Application to Multisketching and Least Squares Problems' "
        "(SC 2025), with a batched/cached/sharded serving layer"
    ),
    long_description=(
        "High-performance CountSketch, multisketching and randomized "
        "least-squares solvers on a simulated-GPU roofline substrate, plus a "
        "request-serving layer (micro-batching, operator caching, shard "
        "scheduling, latency telemetry). See README.md for a quickstart."
    ),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.server:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Mathematics",
    ],
)
