"""Setup shim so editable installs work without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` / `python setup.py develop` in offline
environments that lack the wheel builder.
"""
from setuptools import setup

setup()
