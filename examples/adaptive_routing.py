"""Adaptive solver routing: one solve pipeline from repro.linalg to serving.

Demonstrates the registry + planner refactor:

1. the planner probes a problem's conditioning and routes it to the
   cheapest registered solver whose stability floor meets the accuracy
   target;
2. a hard-conditioned problem that breaks the normal equations is rescued
   by the fallback chain instead of returning ``failed=True``;
3. a :class:`~repro.serving.server.SketchServer` with
   ``policy="cheapest_accurate"`` does the same per micro-batch, with
   per-solver latency histograms in its stats.

Run with ``PYTHONPATH=src python examples/adaptive_routing.py``.
"""

import numpy as np

from repro.linalg import plan, solve
from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.planner import SolvePlan, execute_plan
from repro.serving import SketchServer

# Compute-bound sizes: at small shapes every solver is launch-overhead-bound
# on the simulated device and QR (fewest kernels) wins everything, which
# makes for a boring routing demo.
D, N = 1 << 16, 64


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. planning: easy vs hard conditioning --------------------------
    easy = matrix_with_condition(D, N, 1e2, seed=1) * np.sqrt(float(D) * N)
    hard = matrix_with_condition(D, N, 1e12, seed=2)
    for label, a in (("easy (kappa=1e2)", easy), ("hard (kappa=1e12)", hard)):
        p = plan(a, accuracy_target=1e-8)
        print(f"{label}: planner chose {p.solver!r} "
              f"(kappa~{p.cond_estimate:.1e}, chain={'->'.join(p.chain)})")

    # --- 2. fallback chain: forced POTRF breakdown -----------------------
    b = hard @ np.ones(N)
    forced = SolvePlan(
        solver="normal_equations",
        chain=("normal_equations", "rand_cholqr", "sketch_precond_lsqr"),
        kind="multisketch", embedding_dim=2 * N, cond_estimate=1e12,
        policy="cheapest_accurate", costs={},
    )
    result = execute_plan(forced, hard, b)
    print(f"\nforced chain: attempted {result.extra['attempted']}, "
          f"residual {result.relative_residual:.2e} "
          f"(rescued after: {result.failure_reason.split(':')[0]})")

    # --- 3. the same decision, one call ----------------------------------
    result = solve(hard, b, accuracy_target=1e-10)
    print(f"solve(): {result.method} -> residual {result.relative_residual:.2e}")

    # --- 4. serving with a routing policy --------------------------------
    server = SketchServer(policy="cheapest_accurate", shards=2, max_batch=8,
                          accuracy_target=1e-6, seed=0)
    for _ in range(8):
        server.submit(easy, easy @ np.ones(N) + 0.01 * rng.standard_normal(D))
    for _ in range(8):
        server.submit(hard, hard @ np.ones(N))
    responses = server.flush()
    routed = sorted({r.executed_solver for r in responses})
    worst = max(r.relative_residual for r in responses)
    stats = server.stats()
    print(f"\nserved 16 requests via {routed}; worst residual {worst:.2e}, "
          f"failed {stats['failed_requests']:.0f}, "
          f"fallback batches {stats['fallback_batches']:.0f}")
    for solver in server.telemetry.solvers_seen():
        print(f"  {solver}: n={stats[f'solver_{solver}_requests']:.0f}, "
              f"p99={stats[f'solver_{solver}_p99_seconds'] * 1e6:.1f}us")


if __name__ == "__main__":
    main()
